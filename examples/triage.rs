//! A security engineer's triage workflow, end to end:
//!
//! 1. run the static pipeline and pick a finding,
//! 2. emit the Javapoet-style verification case (the APK source an
//!    analyst would build — Code-Snippet 2),
//! 3. reproduce the leak on the simulated device,
//! 4. read the `dumpsys` view and the runtime's reference-table dump —
//!    the artifacts that went into the paper's bug reports to Google.
//!
//! Run with `cargo run --example triage`.

use jgre_core::analysis::{
    generate_test_case, IpcMethodExtractor, JgrEntryExtractor, VulnerableIpcDetector,
};
use jgre_core::corpus::{spec::AospSpec, CodeModel};
use jgre_core::framework::{CallOptions, System, SystemConfig};

fn main() {
    // 1. Static analysis.
    let spec = AospSpec::android_6_0_1();
    let model = CodeModel::synthesize(&spec);
    let ipc = IpcMethodExtractor::new(&model).extract();
    let entries = JgrEntryExtractor::new(&model).extract();
    let output = VulnerableIpcDetector::new(&model, &entries).detect(&ipc);
    let finding = output
        .risky
        .iter()
        .find(|r| r.ipc.service == "wifi" && r.ipc.method == "acquireWifiLock")
        .expect("the wifi lock is risky");
    println!(
        "finding: {}.{} (binder params: {}, via Handler edge: {})\n",
        finding.ipc.service,
        finding.ipc.method,
        finding.via_binder_params,
        finding.via_handler_edge
    );

    // 2. The generated verification app.
    let case = generate_test_case(finding, &spec);
    println!("--- generated test case ({}) ---", case.target);
    if case.permissions.is_empty() {
        println!("// manifest: no permissions required");
    }
    for p in &case.permissions {
        println!("// manifest: <uses-permission android:name=\"{p}\"/>");
    }
    println!("{}", case.java_source);

    // 3. Reproduce on the device (reduced capacity for a fast demo).
    let mut system = System::boot_with(SystemConfig {
        jgr_capacity: Some(3_000),
        ..SystemConfig::default()
    });
    let mal = system.install_app(
        "com.poc.wifilock",
        [jgre_core::corpus::spec::Permission::WakeLock],
    );
    for _ in 0..800 {
        system
            .call_service(mal, "wifi", "acquireWifiLock", CallOptions::default())
            .expect("wifi registered");
    }
    let ss = system.system_server_pid();
    system.gc_process(ss);

    // 4. The triage artifacts.
    println!("--- dumpsys wifi ---");
    print!("{}", system.dumpsys("wifi").expect("wifi registered"));
    println!("\n--- global reference table dump (system_server) ---");
    // The runtime-side dump is reachable through the trace in production;
    // here we re-derive it from the public counters for the demo.
    println!(
        "table size: {} of {} (survives GC: the listener list pins every proxy)",
        system.system_server_jgr_count(),
        3_000
    );
    assert_eq!(system.retained_entries("wifi", "acquireWifiLock"), 800);
}
