//! Quickstart: exhaust `system_server`'s JGR table with the wifi-lock
//! exploit (the paper's Code-Snippet 2), watch the device soft-reboot,
//! then install the JGRE Defender and watch the same attack get stopped.
//!
//! Run with `cargo run --example quickstart`. Uses a reduced table
//! capacity so the demo finishes instantly; pass `--paper` for the real
//! 51200-entry table.

use jgre_core::defense::{DefenderConfig, JgreDefender};
use jgre_core::framework::{CallOptions, System, SystemConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let (capacity, config) = if paper {
        (jgre_core::art::MAX_GLOBAL_REFS, SystemConfig::default())
    } else {
        (
            4_000,
            SystemConfig {
                jgr_capacity: Some(4_000),
                ..SystemConfig::default()
            },
        )
    };

    // ---- Part 1: the attack, undefended -------------------------------
    println!("== JGRE attack on an undefended device (cap = {capacity}) ==");
    let mut system = System::boot_with(config.clone());
    // The malicious app declares WAKE_LOCK (a normal permission, granted
    // silently at install).
    let mal = system.install_app(
        "com.evil.app",
        [jgre_core::corpus::spec::Permission::WakeLock],
    );
    let mut calls = 0u64;
    loop {
        // IWifiManager.acquireWifiLock, straight at the Binder interface —
        // WifiManager's MAX_ACTIVE_LOCKS never runs.
        let outcome = system
            .call_service(mal, "wifi", "acquireWifiLock", CallOptions::default())
            .expect("wifi service is registered");
        calls += 1;
        if calls.is_multiple_of(capacity as u64 / 4) {
            println!(
                "  {:>7} calls, system_server JGR = {}",
                calls, outcome.host_jgr_count
            );
        }
        if outcome.host_aborted {
            println!("  {calls:>7} calls: global reference table overflow — system_server aborted");
            break;
        }
    }
    println!(
        "  device soft-rebooted {} time(s) after {:.1}s of attack\n",
        system.soft_reboots(),
        system.now().as_secs_f64()
    );

    // ---- Part 2: the same attack, defended ----------------------------
    println!("== the same attack against the JGRE Defender ==");
    let mut system = System::boot_with(config);
    let defender_config = if paper {
        DefenderConfig::default()
    } else {
        DefenderConfig {
            record_threshold: 300,
            trigger_threshold: 1_000,
            normal_level: 250,
            ..DefenderConfig::default()
        }
    };
    let defender =
        JgreDefender::install(&mut system, defender_config).expect("defender config is valid");
    let mal = system.install_app(
        "com.evil.app",
        [jgre_core::corpus::spec::Permission::WakeLock],
    );
    let mut calls = 0u64;
    loop {
        let outcome = system
            .call_service(mal, "wifi", "acquireWifiLock", CallOptions::default())
            .expect("wifi service is registered");
        calls += 1;
        assert!(!outcome.host_aborted, "the defense must fire first");
        if let Some(detection) = defender.poll(&mut system) {
            println!(
                "  alarm after {calls} calls; Algorithm 1 ranked and killed {:?}",
                detection.killed
            );
            println!(
                "  response delay {} ({} correlation round(s)); victim JGR back to {}",
                detection.response_delay,
                detection.rounds,
                detection.victim_jgr_after.expect("victim survived")
            );
            break;
        }
    }
    assert_eq!(system.soft_reboots(), 0);
    println!("  no reboot: the device survived.");
}
