//! The `enqueueToast` protection-bypass of §IV-C.2 (Code-Snippet 3):
//! `NotificationManagerService` caps toasts per package — unless the
//! caller *claims* to be the `"android"` package, which the service
//! trusts. The same demo shows a *sound* per-process limit
//! (`display.registerCallback`) resisting both attempts, and a helper
//! protection (Table II) falling to a direct Binder call.
//!
//! Run with `cargo run --example toast_spoof`.

use jgre_core::framework::{CallOptions, CallStatus, FrameworkError, System, SystemConfig};

fn main() {
    let mut system = System::boot_with(SystemConfig {
        jgr_capacity: Some(8_000),
        ..SystemConfig::default()
    });
    let app = system.install_app("com.evil.toaster", []);

    // 1. Honest flood: the per-package cap holds at 50.
    let mut completed = 0;
    for _ in 0..100 {
        let o = system
            .call_service(app, "notification", "enqueueToast", CallOptions::default())
            .expect("notification service is registered");
        if o.status == CallStatus::Completed {
            completed += 1;
        }
    }
    println!("honest enqueueToast: {completed}/100 accepted (cap = 50) — protection looks fine");

    // 2. The spoof: pass pkg = "android" and the cap never applies.
    let spoof = CallOptions {
        spoof_system_package: true,
        ..CallOptions::default()
    };
    let mut spoofed = 0;
    for _ in 0..200 {
        let o = system
            .call_service(app, "notification", "enqueueToast", spoof.clone())
            .expect("notification service is registered");
        if o.status == CallStatus::Completed {
            spoofed += 1;
        }
    }
    println!(
        "spoofed enqueueToast: {spoofed}/200 accepted — {} toast records retained, JGR table at {}",
        system.retained_entries("notification", "enqueueToast"),
        system.system_server_jgr_count()
    );

    // 3. A sound per-process limit shrugs both attempts off.
    for options in [CallOptions::default(), spoof] {
        let mut ok = 0;
        for _ in 0..20 {
            if system
                .call_service(app, "display", "registerCallback", options.clone())
                .expect("display service is registered")
                .status
                .is_completed()
            {
                ok += 1;
            }
        }
        println!(
            "display.registerCallback ({}): {ok}/20 accepted",
            if options.spoof_system_package {
                "spoofed"
            } else {
                "honest"
            }
        );
    }

    // 4. And the Table II pattern: the helper class says no, Binder says yes.
    let benign = system.install_app(
        "com.wellbehaved",
        [jgre_core::corpus::spec::Permission::WakeLock],
    );
    let mut via_helper = 0;
    loop {
        match system.call_service(benign, "wifi", "acquireWifiLock", CallOptions::benign()) {
            Ok(_) => via_helper += 1,
            Err(FrameworkError::HelperLimitExceeded { helper, limit }) => {
                println!("{helper} refused after {via_helper} locks (MAX_ACTIVE_LOCKS = {limit})");
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    for _ in 0..150 {
        system
            .call_service(benign, "wifi", "acquireWifiLock", CallOptions::default())
            .expect("direct Binder path has no client-side check");
    }
    println!(
        "direct Binder path: {} wifi locks retained — the helper was decoration",
        system.retained_entries("wifi", "acquireWifiLock")
    );
}
