//! Runs the paper's four-step analysis methodology end to end against the
//! synthetic AOSP 6.0.1 corpus and prints the §IV results: the headline
//! counts and Tables I, IV and V.
//!
//! Run with `cargo run --example analysis_pipeline`.

use jgre_core::analysis::{Pipeline, VerifierConfig};
use jgre_core::corpus::{spec::AospSpec, CodeModel};
use jgre_core::framework::System;
use jgre_core::{experiments, ExperimentScale};

fn main() {
    // Step-by-step, with stage commentary (the experiments API wraps the
    // same pipeline; this example shows the seams).
    let spec = AospSpec::android_6_0_1();
    let model = CodeModel::synthesize(&spec);
    println!(
        "corpus: {} classes, {} Java methods, {} native functions, {} JNI registrations",
        model.classes.len(),
        model.methods.len(),
        model.native_functions.len(),
        model.jni_registrations.len()
    );

    let pipeline = Pipeline::new(model);
    let static_report = pipeline.run_static();
    println!(
        "static stages: {} services / {} IPC methods / {} native paths ({} init-only) / {} risky",
        static_report.services_total,
        static_report.ipc_methods_total,
        static_report.native_paths.total_paths,
        static_report.native_paths.init_only_paths,
        static_report.risky_total,
    );
    for (reason, count) in &static_report.sift_counts {
        println!("  sifted {count:>5} candidates: {reason:?}");
    }

    let mut device = System::boot(2_017);
    let report = pipeline.run_full(&mut device, VerifierConfig::default());
    println!("\n{}", report.summary());

    // The rendered tables.
    let scale = ExperimentScale::quick();
    println!("\n{}", experiments::analysis_headline(scale).render());
    println!("{}", experiments::table1(scale).render());
    println!("{}", experiments::table4(scale).render());
    println!("{}", experiments::table5(scale).render());
}
