//! The Figure 9 scenario: four colluding malicious apps each grind a
//! different vulnerable interface while a deliberately chatty benign app
//! fires innocent IPC with 0–100 ms gaps. The JGRE Defender's Algorithm 1
//! must rank all four attackers above the benign app at every Δ, then
//! kill them one by one until `system_server`'s table drains.
//!
//! Run with `cargo run --example defender_colluding`.

use jgre_core::attack::{run_interleaved, Actor, ActorKind, AttackVector};
use jgre_core::corpus::spec::AospSpec;
use jgre_core::defense::{DefenderConfig, JgreDefender};
use jgre_core::framework::{System, SystemConfig};
use jgre_core::sim::SimDuration;

fn main() {
    let mut system = System::boot_with(SystemConfig {
        seed: 2_017,
        jgr_capacity: Some(6_000),
        ..SystemConfig::default()
    });
    let defender = JgreDefender::install(
        &mut system,
        DefenderConfig {
            record_threshold: 400,
            trigger_threshold: 1_200,
            normal_level: 300,
            ..DefenderConfig::default()
        },
    )
    .expect("defender config is valid");

    let spec = AospSpec::android_6_0_1();
    let targets = [
        ("accessibility", "addClient"),
        ("mount", "registerListener"),
        ("textservices", "getSpellCheckerService"),
        ("input_method", "addClient"),
    ];
    let mut actors = Vec::new();
    let mut attackers = Vec::new();
    for (i, (svc, method)) in targets.iter().enumerate() {
        let vector = AttackVector::service_vectors(&spec)
            .into_iter()
            .find(|v| &v.service == svc && &v.method == method)
            .expect("all four targets are in Table I");
        let uid = system.install_app(format!("com.collude{i}"), vector.permissions.clone());
        println!("attacker {uid} -> {svc}.{method}");
        attackers.push(uid);
        actors.push(Actor {
            uid,
            kind: ActorKind::Attacker(vector),
        });
    }
    let benign = system.install_app("com.benign.chatty", []);
    println!("benign   {benign} -> innocent calls every 0-100 ms\n");
    actors.push(Actor {
        uid: benign,
        kind: ActorKind::ChattyBenign {
            max_gap: SimDuration::from_millis(100),
        },
    });

    // Interleave everyone until the alarm trips, then look at the scores
    // for the three Δ values of Figure 9.
    loop {
        run_interleaved(
            &mut system,
            actors.clone(),
            SimDuration::from_millis(500),
            2_017,
            true,
        );
        if !defender.monitor().alarmed_pids().is_empty() {
            break;
        }
    }
    let victim = system.system_server_pid();
    for delta_us in [79u64, 1_900, 3_583] {
        let report = defender
            .score_only(&system, victim, SimDuration::from_micros(delta_us))
            .expect("alarm means a recording exists");
        println!("Δ = {delta_us}µs — suspicious IPC call counts:");
        for s in report.scores.iter().take(5) {
            println!(
                "  {}: {:>6}  ({})",
                s.uid,
                s.score,
                if attackers.contains(&s.uid) {
                    "malicious"
                } else {
                    "benign"
                }
            );
        }
    }

    // Recovery: the defender kills by rank until the table is normal.
    let detection = defender.poll(&mut system).expect("alarm raised");
    println!(
        "\nkilled in order: {:?} (benign app survived: {})",
        detection.killed,
        !detection.killed.contains(&benign)
    );
    assert!(detection.killed.iter().all(|uid| attackers.contains(uid)));
    assert_eq!(system.soft_reboots(), 0);
    println!(
        "system_server JGR after recovery: {}",
        system.system_server_jgr_count()
    );
}
