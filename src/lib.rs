//! Umbrella crate for the JGRE reproduction; re-exports the public API.
pub use jgre_analysis as analysis;
pub use jgre_art as art;
pub use jgre_attack as attack;
pub use jgre_binder as binder;
pub use jgre_core as core;
pub use jgre_corpus as corpus;
pub use jgre_defense as defense;
pub use jgre_framework as framework;
pub use jgre_sim as sim;
