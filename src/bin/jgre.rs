//! `jgre` — command-line front-end for the reproduction.
//!
//! ```console
//! $ jgre headline                 # §IV counts (quick scale)
//! $ jgre --paper fig3             # Figure 3 at the real 51200 capacity
//! $ jgre table2 --json            # Table II as JSON
//! $ jgre all --paper              # every artifact, like `cargo bench`
//! ```

use std::process::ExitCode;

use jgre_core::{experiments, ExperimentScale};

const USAGE: &str = "\
jgre — reproduce 'JGRE: JNI Global Reference Exhaustion in Android' (DSN 2017)

USAGE: jgre [--paper] [--json] [--seed N] [--cache-dir DIR] [--threads N] <command>

COMMANDS:
  headline     §IV analysis counts (104/54/32/22, 147/67 paths, ...)
  table1       Table I  — 44 unprotected vulnerable interfaces
  table2       Table II — helper-class protections, bypassed live
  table3       Table III — per-process limits and the toast spoof
  table4       Table IV — vulnerable prebuilt apps
  table5       Table V  — vulnerable Play-store apps
  fig3         Figure 3 — exhaustion curves for all 54 interfaces
  fig4         Figure 4 — benign baseline (JGR band, process count)
  fig5         Figure 5 — execution-time growth under attack
  fig6         Figure 6 — execution-time CDF (1000 calls/interface)
  fig8         Figure 8 — attacker vs benign suspicious-call counts
  fig9         Figure 9 — four colluders, Δ sweep
  fig10        Figure 10 — defense IPC overhead vs payload
  response     §V-D.1 — detection delays for all 57 interfaces
  defend       §V-C  — drive all 57 attacks against the defender
  all          run everything above in order
  lint         dataflow leak analysis as SARIF 2.1.0, each finding backed
               by a checkable IPC-entry-to-IRT::Add witness path
               (--json prints the raw lint report instead)
  chaos        robustness matrix — seeded fault injection (drop/duplicate/
               delay/reorder IPC records, truncate/corrupt the JGR journal,
               clock jitter, failed/respawning kills, defender crashes)
               against the crash-consistent defender; exits nonzero on any
               recovery-invariant violation
  fleet        fleet campaign — N independent defended devices sharded
               across worker threads; device i streams its RNG from
               (seed, i), so the summary is byte-identical for every
               --threads value (devices/sec footer goes to stderr)
  fuzz         coverage-guided Parcel fuzzer — mutate transaction codes
               and parcel payloads (wrong arity, type confusion, stale
               binders, oversized blobs, truncation) against the raw
               dispatch of every registered service; GC-verified leak
               findings are delta-debug minimized and cross-checked
               against the static lint (differential section); the JSON
               report is byte-identical for every --threads value
               (execs/sec + findings/sec footer goes to stderr)
  serve        streaming defender — synthesize a framed telemetry stream
               (--events-per-sec, --duration, --seed) and score it online
               with the incremental sliding-window correlator; stdout and
               --out are byte-identical per seed for every --threads value
               (wall-clock events/sec footer goes to stderr)

OPTIONS:
  --paper      paper scale: 51200-entry tables, 4000/12000 thresholds
               (default: quick 1/16 scale)
  --scale S    quick | paper — same presets as --paper, spelled out
  --json       print the raw JSON instead of the rendered table
  --seed N     override the experiment seed (default 2017)
  --cache-dir DIR
               (lint) persist per-SCC summaries under DIR; an unchanged
               corpus re-lints from the cache, an edit recomputes only
               the affected call-graph cone
  --threads N  (lint, fleet) worker threads — the lint's per-wave SCC
               fan-out, the fleet's device shards
               (default 1; results are identical for every N)
  --devices N  (fleet) devices to simulate (default 1000)
  --attack SEL (fleet) catalog selector: a zero-based index, a
               service.method label, or 'all' to sweep the 57-vector
               catalog with device i driving vector i mod 57 (default)
               (serve) tap the selected vector on a simulated device and
               use its measured IPC→JGR delay as the stream's attack
               timing (default: the synthetic 500µs profile)
  --iters N    (fuzz) transaction budget across the whole surface,
               split per service proportionally to method count
               (default 320000 — enough for a full probe sweep plus a
               mutation tail; small budgets truncate the sweep)
  --attack-surface SEL
               (fuzz) all | sdk | hidden — which slice of the IPC
               surface to sweep: everything, only permission-gated or
               protection-wrapped methods, or only unmediated ones
               (default all)
  --events-per-sec R
               (serve) sustained call arrival rate (default 10000)
  --duration S (serve) virtual stream length in seconds, fractions ok
               (default 1.0)
  --path-insensitive
               (lint) disable the per-branch predicate reading: no
               JGRE004 error-path findings, no proven-bounded drops —
               reproduces the boolean-guard-era score
  --fault K    (chaos) restrict the matrix to one fault kind: ipc-drop,
               ipc-duplicate, ipc-delay, ipc-reorder, jgr-truncate,
               jgr-corrupt, clock-jitter, kill-fail, kill-respawn,
               defender-crash
               (default: all; fault-free baselines always run)
  --out PATH   (chaos, fleet, fuzz) write the result as JSON to PATH and
               the rendered table next to it as PATH with a .txt
               extension
  --list-cells (chaos) print the cell ids the matrix would run, one per
               line, without running anything (honors --fault)
";

struct Options {
    scale: ExperimentScale,
    json: bool,
    analysis: jgre_analysis::AnalysisOptions,
    fault: Option<jgre_core::sim::FaultKind>,
    out: Option<std::path::PathBuf>,
    list_cells: bool,
    threads: Option<usize>,
    devices: u64,
    attack: Option<String>,
    events_per_sec: u64,
    duration_secs: f64,
    iters: u64,
    attack_surface: jgre_fuzz::AttackSurface,
}

fn emit<T: serde::Serialize>(options: &Options, data: &T, rendered: String) {
    if options.json {
        println!(
            "{}",
            serde_json::to_string_pretty(data).expect("experiment structs serialise")
        );
    } else {
        println!("{rendered}");
    }
}

fn run(command: &str, options: &Options) -> Result<(), String> {
    let scale = options.scale;
    match command {
        "headline" => {
            let r = experiments::analysis_headline(scale);
            emit(options, &r, r.render());
        }
        "table1" => {
            let r = experiments::table1(scale);
            emit(options, &r, r.render());
        }
        "table2" => {
            let r = experiments::table2(scale);
            emit(options, &r, r.render());
        }
        "table3" => {
            let r = experiments::table3(scale);
            emit(options, &r, r.render());
        }
        "table4" => {
            let r = experiments::table4(scale);
            emit(options, &r, r.render());
        }
        "table5" => {
            let r = experiments::table5(scale);
            emit(options, &r, r.render());
        }
        "fig3" => {
            let r = experiments::fig3(scale);
            emit(options, &r, r.render());
        }
        "fig4" => {
            let (apps, secs) = if scale.jgr_capacity == jgre_core::art::MAX_GLOBAL_REFS {
                (300, 120)
            } else {
                (60, 20)
            };
            let r = experiments::fig4(scale, apps, secs);
            emit(options, &r, r.render());
        }
        "fig5" => {
            let r = experiments::fig5(scale);
            emit(options, &r, r.render());
        }
        "fig6" => {
            let calls = if scale.jgr_capacity == jgre_core::art::MAX_GLOBAL_REFS {
                1_000
            } else {
                200
            };
            let r = experiments::fig6(scale, calls);
            emit(options, &r, r.render());
        }
        "fig8" => {
            let r = experiments::fig8(scale, 10, usize::MAX);
            emit(options, &r, r.render());
        }
        "fig9" => {
            let r = experiments::fig9(scale);
            emit(options, &r, r.render());
        }
        "fig10" => {
            let r = experiments::fig10(scale, 500);
            emit(options, &r, r.render());
        }
        "response" => {
            let r = experiments::response_delay(scale);
            emit(options, &r, r.render());
        }
        "defend" => {
            let r = experiments::defense_effectiveness(scale);
            emit(options, &r, r.render());
        }
        "lint" => {
            let spec = jgre_corpus::AospSpec::android_6_0_1();
            let model = jgre_corpus::CodeModel::synthesize(&spec);
            let report = jgre_analysis::LintReport::generate_with(&model, &spec, &options.analysis);
            let rendered = if options.json {
                serde_json::to_string_pretty(&report).expect("lint report serialises")
            } else {
                serde_json::to_string_pretty(&report.to_sarif(&model)).expect("SARIF serialises")
            };
            println!("{rendered}");
            // The solver/cache footer goes to stderr so stdout stays
            // pure JSON for downstream SARIF consumers.
            eprintln!(
                "summaries: {} (hits {}, misses {})",
                report.stats.methods, report.stats.cache_hits, report.stats.cache_misses
            );
            // Machine-greppable score line for the CI accuracy gate.
            eprintln!(
                "accuracy: tp={} fp={} fn={}",
                report.accuracy.true_positives,
                report.accuracy.false_positives,
                report.accuracy.false_negatives
            );
        }
        "chaos" => {
            if options.list_cells {
                for id in experiments::chaos_cell_ids(options.fault) {
                    println!("{id}");
                }
                return Ok(());
            }
            let matrix = experiments::chaos_matrix(scale, options.fault);
            let json = serde_json::to_string_pretty(&matrix).expect("chaos matrix serialises");
            let rendered = matrix.render();
            if let Some(path) = &options.out {
                // Same bytes as the bench harness's write_artifact, so the
                // CLI and the bench regenerate identical golden files.
                std::fs::write(path, &json)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                let txt = path.with_extension("txt");
                std::fs::write(&txt, &rendered)
                    .map_err(|e| format!("writing {}: {e}", txt.display()))?;
            }
            emit(options, &matrix, rendered);
            if matrix.violations > 0 {
                return Err(format!(
                    "chaos matrix: {} recovery-invariant violation(s)",
                    matrix.violations
                ));
            }
        }
        "fleet" => {
            let attack = match options.attack.as_deref() {
                None | Some("all") => None,
                Some(selector) => {
                    let spec = jgre_corpus::AospSpec::android_6_0_1();
                    match jgre_core::attack::AttackVector::resolve(&spec, selector) {
                        Some((index, _)) => Some(index),
                        None => {
                            return Err(format!(
                                "unknown attack selector: {selector} (use a catalog index, \
                                 a service.method label, or 'all')"
                            ))
                        }
                    }
                }
            };
            let config = jgre_core::fleet::FleetConfig {
                devices: options.devices,
                threads: options.threads.unwrap_or(1),
                scale,
                campaign_seed: scale.seed,
                attack,
                max_calls: None,
            };
            let started = std::time::Instant::now();
            let summary = jgre_core::run_campaign(&config);
            let elapsed = started.elapsed();
            let json = serde_json::to_string_pretty(&summary).expect("fleet summary serialises");
            let rendered = summary.render();
            if let Some(path) = &options.out {
                // The JSON is fully deterministic (no wall-clock fields),
                // so two runs with the same seed write identical bytes —
                // the CI smoke job diffs them.
                std::fs::write(path, &json)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                let txt = path.with_extension("txt");
                std::fs::write(&txt, &rendered)
                    .map_err(|e| format!("writing {}: {e}", txt.display()))?;
            }
            emit(options, &summary, rendered);
            // Throughput is wall-clock and thread-dependent, so it goes to
            // stderr only; stdout and --out stay byte-reproducible.
            let secs = elapsed.as_secs_f64();
            let rate = if secs > 0.0 {
                summary.devices as f64 / secs
            } else {
                0.0
            };
            eprintln!(
                "fleet: {} devices in {:.2}s — {:.0} devices/sec on {} thread(s)",
                summary.devices, secs, rate, config.threads
            );
        }
        "fuzz" => {
            let config = jgre_fuzz::FuzzConfig {
                seed: scale.seed,
                iters: options.iters,
                threads: options.threads.unwrap_or(1),
                attack_surface: options.attack_surface,
                scale,
                services: None,
            };
            let started = std::time::Instant::now();
            let report = jgre_fuzz::run_fuzz(&config);
            let fuzz_elapsed = started.elapsed();
            // Differential stage: cross-check the dynamic findings
            // against the static lint, replaying lint-only predictions.
            let spec = jgre_corpus::AospSpec::android_6_0_1();
            let model = jgre_corpus::CodeModel::synthesize(&spec);
            let lint = jgre_analysis::LintReport::generate_with(&model, &spec, &options.analysis);
            let diff = jgre_fuzz::differential(&report, &lint.diagnostics, scale, config.seed);
            let artifact = jgre_fuzz::FuzzArtifact {
                fuzz: report,
                differential: diff,
            };
            let json = artifact.to_json();
            let rendered = artifact.render();
            if let Some(path) = &options.out {
                // The report excludes threads and wall-clock, so two runs
                // with the same seed write identical bytes — the CI smoke
                // job diffs them.
                std::fs::write(path, &json)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                let txt = path.with_extension("txt");
                std::fs::write(&txt, &rendered)
                    .map_err(|e| format!("writing {}: {e}", txt.display()))?;
            }
            emit(options, &artifact, rendered);
            // Throughput is wall-clock and machine-dependent: stderr only.
            let secs = fuzz_elapsed.as_secs_f64();
            let total_execs = artifact.fuzz.execs + artifact.fuzz.minimize_execs;
            let (exec_rate, finding_rate) = if secs > 0.0 {
                (
                    total_execs as f64 / secs,
                    artifact.fuzz.findings.len() as f64 / secs,
                )
            } else {
                (0.0, 0.0)
            };
            eprintln!(
                "fuzz: {} execs in {:.2}s — {:.0} execs/sec, {:.2} findings/sec on {} thread(s)",
                total_execs, secs, exec_rate, finding_rate, config.threads
            );
        }
        "serve" => {
            let mut source = jgre_core::sim::source::SourceConfig {
                seed: scale.seed,
                events_per_sec: options.events_per_sec,
                duration: jgre_core::sim::SimDuration::from_micros(
                    (options.duration_secs * 1e6) as u64,
                ),
                ..jgre_core::sim::source::SourceConfig::default()
            };
            match options.attack.as_deref() {
                None | Some("all") => {}
                Some(selector) => {
                    let spec = jgre_corpus::AospSpec::android_6_0_1();
                    let Some((_, vector)) =
                        jgre_core::attack::AttackVector::resolve(&spec, selector)
                    else {
                        return Err(format!(
                            "unknown attack selector: {selector} (use a catalog index or a \
                             service.method label)"
                        ));
                    };
                    // Tap the vector on a simulated device and drive the
                    // synthetic stream with its measured timing signature.
                    let tap = jgre_core::tap_attack_events(scale, &vector, 40);
                    match tap.characteristic_delay() {
                        Some(delay) => source.attack_delay = delay,
                        None => {
                            return Err(format!(
                                "attack {selector} produced no IPC→JGR pairs to profile"
                            ))
                        }
                    }
                }
            }
            let config = jgre_core::defense::stream::ServeConfig {
                source,
                threads: options.threads.unwrap_or(1) as u32,
                ..jgre_core::defense::stream::ServeConfig::default()
            };
            let started = std::time::Instant::now();
            let report = jgre_core::defense::stream::run_serve(&config)
                .map_err(|e| format!("serve: {e}"))?;
            let elapsed = started.elapsed();
            let json = report.to_json();
            let rendered = report.render();
            if let Some(path) = &options.out {
                // The report excludes threads/chunking and wall-clock, so
                // two runs with the same seed write identical bytes — the
                // CI smoke job diffs them.
                std::fs::write(path, &json)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                let txt = path.with_extension("txt");
                std::fs::write(&txt, &rendered)
                    .map_err(|e| format!("writing {}: {e}", txt.display()))?;
            }
            emit(options, &report, rendered);
            // Throughput is wall-clock and machine-dependent: stderr only.
            let secs = elapsed.as_secs_f64();
            let rate = if secs > 0.0 {
                report.ingest.offered as f64 / secs
            } else {
                0.0
            };
            eprintln!(
                "serve: {} events in {:.2}s — {:.0} events/sec on {} thread(s)",
                report.ingest.offered, secs, rate, config.threads
            );
        }
        "all" => {
            for cmd in [
                "headline", "table1", "table2", "table3", "table4", "table5", "fig3", "fig4",
                "fig5", "fig6", "fig8", "fig9", "fig10", "response", "defend",
            ] {
                eprintln!("== {cmd} ==");
                run(cmd, options)?;
            }
        }
        other => return Err(format!("unknown command: {other}\n\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::quick();
    let mut json = false;
    let mut analysis = jgre_analysis::AnalysisOptions::default();
    let mut fault = None;
    let mut out = None;
    let mut list_cells = false;
    let mut threads = None;
    let mut devices = 1_000u64;
    let mut attack = None;
    let mut events_per_sec = 10_000u64;
    let mut duration_secs = 1.0f64;
    let mut iters = 320_000u64;
    let mut attack_surface = jgre_fuzz::AttackSurface::All;
    let mut command = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => scale = ExperimentScale::paper(),
            "--scale" => match iter.next().map(String::as_str) {
                // with_seed keeps an earlier --seed override in force
                // regardless of flag order.
                Some("quick") => scale = ExperimentScale::quick().with_seed(scale.seed),
                Some("paper") => scale = ExperimentScale::paper().with_seed(scale.seed),
                _ => {
                    eprintln!("--scale needs 'quick' or 'paper'\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--devices" => match iter.next().map(|s| s.parse::<u64>()) {
                Some(Ok(n)) => devices = n,
                _ => {
                    eprintln!("--devices needs a number\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--attack" => match iter.next() {
                Some(selector) => attack = Some(selector.clone()),
                None => {
                    eprintln!("--attack needs a selector (or 'all')\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--events-per-sec" => match iter.next().map(|s| s.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => events_per_sec = n,
                _ => {
                    eprintln!("--events-per-sec needs a positive number\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--duration" => match iter.next().map(|s| s.parse::<f64>()) {
                Some(Ok(s)) if s > 0.0 => duration_secs = s,
                _ => {
                    eprintln!("--duration needs a positive number of seconds\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--iters" => match iter.next().map(|s| s.parse::<u64>()) {
                Some(Ok(n)) => iters = n,
                _ => {
                    eprintln!("--iters needs a number\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--attack-surface" => {
                match iter.next().and_then(|s| jgre_fuzz::AttackSurface::parse(s)) {
                    Some(surface) => attack_surface = surface,
                    None => {
                        eprintln!("--attack-surface needs 'all', 'sdk', or 'hidden'\n\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => json = true,
            "--seed" => match iter.next().map(|s| s.parse::<u64>()) {
                Some(Ok(seed)) => scale = scale.with_seed(seed),
                _ => {
                    eprintln!("--seed needs a number\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--cache-dir" => match iter.next() {
                Some(dir) => analysis.cache_dir = Some(dir.into()),
                None => {
                    eprintln!("--cache-dir needs a directory\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--path-insensitive" => analysis.path_sensitive = false,
            "--threads" => match iter.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => {
                    analysis.threads = Some(n);
                    threads = Some(n);
                }
                _ => {
                    eprintln!("--threads needs a positive number\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--fault" => match iter.next().map(String::as_str) {
                Some("all") => fault = None,
                Some(name) => match jgre_core::sim::FaultKind::parse(name) {
                    Some(kind) => fault = Some(kind),
                    None => {
                        eprintln!("unknown fault kind: {name}\n\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--fault needs a kind (or 'all')\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--list-cells" => list_cells = true,
            "--out" => match iter.next() {
                Some(path) => out = Some(path.into()),
                None => {
                    eprintln!("--out needs a path\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            cmd if command.is_none() && !cmd.starts_with('-') => {
                command = Some(cmd.to_owned());
            }
            other => {
                eprintln!("unexpected argument: {other}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(command) = command else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match run(
        &command,
        &Options {
            scale,
            json,
            analysis,
            fault,
            out,
            list_cells,
            threads,
            devices,
            attack,
            events_per_sec,
            duration_secs,
            iters,
            attack_surface,
        },
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
