//! Minimal, offline, API-compatible subset of `serde`.
//!
//! The real `serde` crate is unavailable in this build environment (no
//! registry access), so the workspace vendors a tiny replacement that
//! supports exactly the surface the jgre crates use: `#[derive(Serialize,
//! Deserialize)]` on non-generic structs and enums whose fields are built
//! from std types. Instead of serde's visitor architecture, serialization
//! goes through an intermediate [`Value`] tree; `serde_json` renders and
//! parses that tree using the same JSON encoding conventions as real
//! serde + serde_json (externally tagged enums, `null` for `None`,
//! arrays for tuples and sequences, objects for maps and named structs).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Intermediate self-describing data tree used by this serde subset.
///
/// Object fields are kept in insertion order (a `Vec`, not a map) so that
/// struct serialization preserves declaration order like real serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number without sign or fraction).
    UInt(u64),
    /// Signed integer (negative JSON number).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, fields in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Return the elements if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Return the string contents if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Return the value as an unsigned integer if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Return the value as a signed integer if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Return the value as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Return the boolean if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Indexing an object value by field name; absent fields yield `Null`
/// (mirrors `serde_json::Value`'s `Index<&str>` behaviour).
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Indexing an array value by position; out-of-range yields `Null`.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::UInt(n) => i128::from(*n) == *other as i128,
                    Value::Int(n) => i128::from(*n) == *other as i128,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Error produced during serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Create a type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::msg(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the intermediate value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value.as_u64() {
                    Some(n) => <$t>::try_from(n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    None => Err(Error::expected("unsigned integer", value)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_u64() {
            Some(n) => usize::try_from(n).map_err(|_| Error::msg("integer out of range for usize")),
            None => Err(Error::expected("unsigned integer", value)),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value.as_i64() {
                    Some(n) => <$t>::try_from(n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    None => Err(Error::expected("integer", value)),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        let v = *self as i64;
        if v >= 0 {
            Value::UInt(v as u64)
        } else {
            Value::Int(v)
        }
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_i64() {
            Some(n) => isize::try_from(n).map_err(|_| Error::msg("integer out of range for isize")),
            None => Err(Error::expected("integer", value)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("boolean", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected a single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

/// How map keys are encoded as JSON object keys. Mirrors serde_json: a
/// string key is used verbatim, an integer key is rendered in decimal.
pub trait MapKey: Sized {
    /// Render the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_map_key_num {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse::<$t>()
                    .map_err(|_| Error::msg(concat!("invalid map key for ", stringify!($t))))
            }
        }
    )*};
}

impl_map_key_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected a {expected}-element array, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("array", other)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Runtime support used by the code generated in `serde_derive`. Not a
/// stable API; matches real serde's convention of a hidden helper module.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Extract and deserialize a named struct field. Missing fields fall
    /// back to deserializing from `Null` so `Option` fields may be absent.
    pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
        match value {
            Value::Object(fields) => match fields.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => {
                    T::from_value(fv).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
                }
                None => T::from_value(&Value::Null)
                    .map_err(|_| Error::msg(format!("missing field `{name}`"))),
            },
            other => Err(Error::expected("object", other)),
        }
    }

    /// Extract and deserialize a positional tuple field.
    pub fn element<T: Deserialize>(value: &Value, idx: usize) -> Result<T, Error> {
        match value {
            Value::Array(items) => match items.get(idx) {
                Some(item) => {
                    T::from_value(item).map_err(|e| Error::msg(format!("element {idx}: {e}")))
                }
                None => Err(Error::msg(format!("missing tuple element {idx}"))),
            },
            other => Err(Error::expected("array", other)),
        }
    }

    /// Split an externally tagged enum value into `(variant_name, payload)`.
    /// A bare string is a unit variant; a single-key object carries the
    /// variant payload.
    pub fn variant(value: &Value) -> Result<(&str, Option<&Value>), Error> {
        match value {
            Value::Str(name) => Ok((name, None)),
            Value::Object(fields) if fields.len() == 1 => Ok((&fields[0].0, Some(&fields[0].1))),
            other => Err(Error::expected("enum (string or single-key object)", other)),
        }
    }
}
