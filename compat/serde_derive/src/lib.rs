//! Derive macros for the vendored `serde` subset.
//!
//! Parses `struct` / `enum` definitions directly from the raw token
//! stream (no `syn` / `quote` available offline) and emits string-built
//! implementations of the value-tree `Serialize` / `Deserialize` traits.
//! Supported shapes: non-generic structs (unit, tuple, named) and enums
//! whose variants are unit, tuple, or struct-like. `#[serde(...)]`
//! attributes are not supported and none exist in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the value-tree `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the value-tree `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde compat derive does not support generic types (on `{name}`)");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None => Kind::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(other) => panic!("unexpected token after struct name: {other}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("expected enum body for `{name}`"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };
    Item { name, kind }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

/// Parse `name: Type, ...` from a brace-delimited field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(name);
        // Skip to past the `:` then consume the type until a top-level comma.
        i += 2;
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth_is_zero(&tokens[..i]))
            {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    fields
}

/// True when `<` / `>` punctuation in the prefix is balanced — i.e. a
/// comma at this position is a field separator, not inside `Vec<(A, B)>`.
/// Parenthesised/bracketed groups are opaque `TokenTree::Group`s, so only
/// angle brackets need tracking.
fn angle_depth_is_zero(prefix: &[TokenTree]) -> bool {
    let mut depth = 0i32;
    for tok in prefix {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
    }
    depth == 0
}

/// Count fields in a paren-delimited tuple field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    for i in 0..tokens.len() {
        if matches!(&tokens[i], TokenTree::Punct(p)
            if p.as_char() == ',' && angle_depth_is_zero(&tokens[..i]))
        {
            // Ignore a trailing comma.
            if i + 1 < tokens.len() {
                count += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("Self::{vname} => ::serde::Value::Str({vname:?}.to_string()),")
                        }
                        Shape::Tuple(1) => format!(
                            "Self::{vname}(__f0) => ::serde::Value::Object(vec![\
                             ({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "Self::{vname}({}) => ::serde::Value::Object(vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "match __value {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 other => Err(::serde::Error::expected(\"null\", other)),\n\
             }}"
        ),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::element(__value, {i})?"))
                .collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__value, {f:?})?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!("{vname:?} => Ok(Self::{vname}),"),
                        Shape::Tuple(1) => format!(
                            "{vname:?} => {{\n\
                                 let __p = __payload.ok_or_else(|| ::serde::Error::msg(\
                                 format!(\"variant `{{}}` expects a payload\", {vname:?})))?;\n\
                                 Ok(Self::{vname}(::serde::Deserialize::from_value(__p)?))\n\
                             }}"
                        ),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::__private::element(__p, {i})?"))
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let __p = __payload.ok_or_else(|| ::serde::Error::msg(\
                                     format!(\"variant `{{}}` expects a payload\", {vname:?})))?;\n\
                                     Ok(Self::{vname}({}))\n\
                                 }}",
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__private::field(__p, {f:?})?"))
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let __p = __payload.ok_or_else(|| ::serde::Error::msg(\
                                     format!(\"variant `{{}}` expects a payload\", {vname:?})))?;\n\
                                     Ok(Self::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __payload) = ::serde::__private::variant(__value)?;\n\
                 match __tag {{\n\
                     {}\n\
                     other => Err(::serde::Error::msg(format!(\
                         \"unknown variant `{{other}}` for `{name}`\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
