//! Minimal, offline, API-compatible subset of `serde_json`.
//!
//! Works over the vendored `serde` crate's [`Value`] tree: serialization
//! renders a `Value` to JSON text, deserialization parses JSON text into
//! a `Value` and then converts with `Deserialize::from_value`. Output
//! conventions match real serde_json (externally tagged enums, compact
//! `{"k":v}` / pretty two-space indent, shortest-roundtrip floats).

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize a value to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse(input)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(input).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into a concrete type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, field)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(field, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Rust's float `Display` is shortest-roundtrip, matching serde_json's
/// `float_roundtrip` behaviour. Non-finite floats render as `null` like
/// real serde_json.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // Ensure a fractional marker so the value re-parses as a float.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}
