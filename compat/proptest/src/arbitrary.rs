//! `any::<T>()` support for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, e.g. `any::<usize>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Default)]
pub struct FullRange<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(PhantomData)
    }
}
