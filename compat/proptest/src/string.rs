//! Tiny regex-shaped string generator backing `&'static str` strategies.
//!
//! Supports the subset the test suites use: literal characters, character
//! classes `[a-z0-9 ]`, and quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
//! (star/plus are capped at 8 repetitions, as generation needs a bound).

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Sample a string matching `pattern`.
///
/// # Panics
///
/// Panics on constructs outside the supported subset (anchors, groups,
/// alternation, negated classes).
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.range_u64(piece.min as u64, piece.max as u64) as usize;
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32) + 1)
                .sum();
            let mut pick = rng.range_u64(0, total - 1);
            for (lo, hi) in ranges {
                let span = u64::from(*hi as u32 - *lo as u32) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32)
                        .expect("class ranges cover valid chars");
                }
                pick -= span;
            }
            unreachable!("pick within total")
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let inner = &chars[i + 1..close];
                assert!(
                    inner.first() != Some(&'^'),
                    "negated classes unsupported in pattern `{pattern}`"
                );
                let mut ranges = Vec::new();
                let mut j = 0;
                while j < inner.len() {
                    if j + 2 < inner.len() && inner[j + 1] == '-' {
                        ranges.push((inner[j], inner[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((inner[j], inner[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                let escaped = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                i += 2;
                match escaped {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Atom::Literal(other),
                }
            }
            '(' | ')' | '|' | '^' | '$' | '.' => {
                panic!(
                    "unsupported regex construct `{}` in pattern `{pattern}`",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in pattern `{pattern}`");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}
