//! Minimal, offline, API-compatible subset of `proptest`.
//!
//! Supports the surface the jgre test suites use: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), integer-range and tuple
//! strategies, `prop_oneof!` (weighted and unweighted), `Just`,
//! `any::<T>()`, `proptest::collection::vec`, `.prop_map`, simple
//! regex-shaped string strategies, and the `prop_assert*` family.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! a failing case panics immediately with the sampled inputs printed, and
//! each test's random stream is derived deterministically from the test
//! name so failures reproduce run-to-run.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod collection;

pub mod string;

/// Everything a proptest-based test file usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` function that samples inputs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __cases_run: u32 = 0;
            let mut __rejects: u32 = 0;
            while __cases_run < __config.cases {
                let mut __inputs_repr = ::std::string::String::new();
                $(
                    let __sampled = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    __inputs_repr.push_str(&::std::format!(
                        "{} = {:?}; ", stringify!($arg), __sampled
                    ));
                    let $arg = __sampled;
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __cases_run += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejects += 1;
                        assert!(
                            __rejects < 256 * __config.cases.max(1),
                            "proptest `{}`: too many rejected cases ({})",
                            stringify!($name),
                            __rejects,
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed on case {}: {}\n  inputs: {}",
                            stringify!($name),
                            __cases_run,
                            __msg,
                            __inputs_repr,
                        );
                    }
                }
            }
        }
    )*};
}

/// Choose between several strategies producing the same value type.
/// Arms may all be weighted (`3 => strat`) or all unweighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a proptest body, failing the case (not
/// panicking directly) so the harness can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), __l,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("{}\n  both: {:?}", ::std::format!($($fmt)+), __l),
            ));
        }
    }};
}

/// Discard the current case (resampled, not counted) when a precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
