//! Test-harness support types: configuration, case outcomes, and the
//! deterministic random source backing every strategy.

use std::fmt;

/// Per-test configuration; only the case count is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// The outcome of one sampled test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case did not meet a precondition and should be resampled.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure outcome.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Build a rejection outcome.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic SplitMix64 stream seeded from the test's name, so every
/// run of a given test samples the same inputs (no persistence files).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi]` (inclusive) over `u64`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = u128::from(hi - lo) + 1;
        lo + (u128::from(self.next_u64()) % span) as u64
    }

    /// Uniform draw from `[lo, hi]` (inclusive) over `i128` arithmetic,
    /// for signed strategies.
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u128;
        lo + (u128::from(self.next_u64()) % span) as i128
    }
}
