//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
