//! The [`Strategy`] trait and the combinators the jgre test suites use.

use crate::string::sample_pattern;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// is just a sampler over a deterministic random stream.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between type-erased strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total > 0,
            "prop_oneof! requires a non-empty, non-zero-weight arm list"
        );
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.range_u64(0, total - 1);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, (self.end - 1) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i128(self.start as i128, (self.end as i128) - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// String-literal strategies: a `&'static str` is interpreted as a small
/// regex-shaped pattern (character classes + `{m,n}` quantifiers).
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}
