//! Minimal, offline, API-compatible subset of `rand` 0.8.
//!
//! Provides exactly the surface the jgre workspace uses: `StdRng` seeded
//! via `SeedableRng::seed_from_u64`, `RngCore::next_u64`, and
//! `Rng::{gen_range, gen_bool}` over integer ranges. The generator is a
//! SplitMix64 stream — statistically fine for simulation workloads and,
//! more importantly here, fully deterministic per seed. The generator is
//! load-bearing for fleet determinism: `crates/sim/tests/
//! stream_independence.rs` pins the exact first draws of campaign stream
//! 0, so changing this algorithm (or `seed_from_u64`'s warm-up discard)
//! is a breaking change to every recorded `FleetSummary`.

/// Core random number generation trait.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespace matching `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator standing in for `rand::rngs::StdRng`.
    ///
    /// Implemented as SplitMix64: each draw advances an odd-gamma counter
    /// and mixes it through two xor-multiply rounds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so that small consecutive seeds do not
            // produce visibly correlated first draws.
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Namespace matching `rand::distributions`.
pub mod distributions {
    /// Namespace matching `rand::distributions::uniform`.
    pub mod uniform {
        use std::ops::{Range, RangeInclusive};

        /// Types that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized {
            /// Sample uniformly from `[lo, hi]` given a 64-bit draw source.
            fn sample_inclusive(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self;

            /// The predecessor of `self`, used to convert half-open ranges
            /// into inclusive bounds.
            fn prev(self) -> Self;
        }

        macro_rules! impl_sample_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_inclusive(
                        lo: Self,
                        hi: Self,
                        draw: &mut dyn FnMut() -> u64,
                    ) -> Self {
                        assert!(lo <= hi, "cannot sample from an empty range");
                        let span = (hi as i128) - (lo as i128) + 1;
                        let offset = (draw() as i128).rem_euclid(span);
                        ((lo as i128) + offset) as $t
                    }

                    fn prev(self) -> Self {
                        self.wrapping_sub(1)
                    }
                }
            )*};
        }

        impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        /// Ranges that can drive a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Sample a value from this range.
            fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T;
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
            fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T {
                assert!(self.start < self.end, "cannot sample from an empty range");
                T::sample_inclusive(self.start, self.end.prev(), draw)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T {
                T::sample_inclusive(*self.start(), *self.end(), draw)
            }
        }
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] like in real `rand`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 uniform mantissa bits, the same resolution real rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
