//! Minimal, offline, API-compatible subset of `criterion`.
//!
//! Implements the measurement surface the jgre bench harness uses:
//! `Criterion::benchmark_group` / `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Statistics are
//! deliberately simple — per-iteration wall time over a handful of
//! samples, median reported on stdout — because the workspace's benches
//! are tracked relatively (same harness before/after a change), not
//! against external criterion baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Target wall time for one measurement sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(2);

/// Hard cap on iterations per sample, for sub-nanosecond routines.
const MAX_ITERS_PER_SAMPLE: u64 = 1_000_000;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts CLI arguments for interface compatibility; filtering and
    /// baseline flags are not implemented.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Print the closing summary (a no-op in this subset).
    pub fn final_summary(self) {}

    /// Set the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().render(), sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, sample_size, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and an optional parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// How `iter_batched` amortizes setup cost; only a hint in this subset
/// (setup is always excluded from the timed region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many per setup.
    SmallInput,
    /// Inputs are large; batch few per setup.
    LargeInput,
    /// Run setup before every iteration.
    PerIteration,
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh input per iteration; `setup` runs
    /// outside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration, also serves as warmup.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = u64::try_from(SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1))
        .unwrap_or(MAX_ITERS_PER_SAMPLE)
        .clamp(1, MAX_ITERS_PER_SAMPLE);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{label:<50} time: [{lo:>10.1} ns {median:>10.1} ns {hi:>10.1} ns]");
}

/// Bundle benchmark functions into a single runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}
