//! The trace layer: with tracing on, a run leaves a forensic record —
//! transactions, JGR traffic, GCs, the abort with its reference-table
//! dump, and the soft reboot — the same breadcrumbs the paper's modified
//! image logs.

use jgre_repro::core::framework::{CallOptions, System, SystemConfig};

fn traced_system() -> System {
    System::boot_with(SystemConfig {
        seed: 5,
        jgr_capacity: Some(400),
        tracing: true,
        ..SystemConfig::default()
    })
}

#[test]
fn attack_leaves_a_complete_trace() {
    let mut system = traced_system();
    let app = system.install_app("com.traced", []);
    loop {
        let o = system
            .call_service(
                app,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .unwrap();
        if o.host_aborted {
            break;
        }
    }
    let trace = system.trace();
    assert!(!trace.of_kind("binder.transact").is_empty());
    assert!(!trace.of_kind("jgr.add").is_empty());
    assert!(!trace.of_kind("proc.spawn").is_empty());
    let aborts = trace.of_kind("art.abort");
    assert_eq!(aborts.len(), 1);
    let abort = &aborts[0];
    assert!(
        abort
            .detail
            .contains("global reference table overflow (max=400)"),
        "{}",
        abort.detail
    );
    // The abort message carries ART's class summary; the attack pinned
    // BpBinder peers through BinderProxy finalizers.
    assert!(
        abort.detail.contains("android::BpBinder"),
        "{}",
        abort.detail
    );
    let reboots = trace.of_kind("system.soft_reboot");
    assert_eq!(reboots.len(), 1);
    assert!(reboots[0].detail.contains("reboot #1"));
    // Events are attributed to the right processes.
    let transact = &trace.of_kind("binder.transact")[0];
    assert!(transact.uid.is_some_and(|u| u.is_app()));
    assert_eq!(transact.detail, "IClipboard.addPrimaryClipChangedListener");
}

#[test]
fn gc_and_kill_are_traced() {
    let mut system = traced_system();
    let app = system.install_app("com.traced", []);
    for _ in 0..5 {
        system
            .call_service(
                app,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .unwrap();
    }
    system.kill_app(app);
    let trace = system.trace();
    assert!(!trace.of_kind("proc.kill").is_empty());
    let gcs = trace.of_kind("art.gc");
    assert!(
        gcs.iter().any(|e| e.detail.contains("globals_released=5")),
        "kill must trigger a GC that releases the app's 5 entries: {:?}",
        gcs.iter().map(|e| &e.detail).collect::<Vec<_>>()
    );
    assert!(!trace.of_kind("jgr.remove").is_empty());
}

#[test]
fn tracing_off_keeps_the_sink_empty() {
    let mut system = System::boot_with(SystemConfig {
        seed: 5,
        jgr_capacity: Some(400),
        tracing: false,
        ..SystemConfig::default()
    });
    let app = system.install_app("com.silent", []);
    system
        .call_service(
            app,
            "clipboard",
            "addPrimaryClipChangedListener",
            CallOptions::default(),
        )
        .unwrap();
    assert!(system.trace().is_empty());
}
