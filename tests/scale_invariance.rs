//! The scaling claim of DESIGN.md/README: shrinking the table capacity
//! (with proportional thresholds) preserves every qualitative result —
//! who exhausts, who is fastest/slowest, what the defense kills.

use jgre_repro::core::attack::{run_exhaustion_attack, AttackVector};
use jgre_repro::core::corpus::spec::AospSpec;
use jgre_repro::core::framework::{System, SystemConfig};
use jgre_repro::core::{experiments, ExperimentScale};

fn scale(capacity: usize) -> ExperimentScale {
    ExperimentScale {
        jgr_capacity: capacity,
        record_threshold: capacity / 13,
        trigger_threshold: capacity / 4,
        normal_level: capacity / 17,
        stock_jgr: capacity / 43,
        seed: 2_017,
    }
}

#[test]
fn exhaustion_extremes_hold_across_scales() {
    let spec = AospSpec::android_6_0_1();
    let audio = AttackVector::service_vectors(&spec)
        .into_iter()
        .find(|v| v.method == "startWatchingRoutes")
        .unwrap();
    let toast = AttackVector::service_vectors(&spec)
        .into_iter()
        .find(|v| v.method == "enqueueToast")
        .unwrap();
    for capacity in [800usize, 2_000, 6_400] {
        let run = |vector: &AttackVector| {
            let mut system = System::boot_with(SystemConfig {
                seed: 2_017,
                jgr_capacity: Some(capacity),
                ..SystemConfig::default()
            });
            let r = run_exhaustion_attack(&mut system, vector, capacity as u64 * 4, 1_000);
            assert!(
                r.aborted,
                "cap {capacity}: {} did not exhaust",
                vector.service
            );
            r.time_to_exhaustion.unwrap()
        };
        let fast = run(&audio);
        let slow = run(&toast);
        assert!(
            fast < slow,
            "cap {capacity}: audio ({fast}) must beat toast ({slow})"
        );
    }
}

#[test]
fn defense_works_at_multiple_scales() {
    for capacity in [1_600usize, 6_400] {
        let s = scale(capacity);
        // A representative sample of vectors (zero-perm, dangerous-perm,
        // spoofed, multi-ref, prebuilt).
        let spec = AospSpec::android_6_0_1();
        let picks = [
            "clipboard",
            "telephony.registry",
            "notification",
            "midi",
            "pico_tts",
        ];
        for pick in picks {
            let vector = AttackVector::all_vectors(&spec)
                .into_iter()
                .find(|v| v.service == pick)
                .unwrap_or_else(|| panic!("{pick} has a vector"));
            let mut system = System::boot_with(s.system_config());
            let defender =
                jgre_repro::core::defense::JgreDefender::install(&mut system, s.defender_config())
                    .expect("defender config is valid");
            let run = experiments::run_defended_attack(
                &mut system,
                &defender,
                &vector,
                capacity as u64 * 4,
            );
            assert!(
                run.victim_survived && run.attacker_killed,
                "cap {capacity}: {} not defended",
                run.interface
            );
        }
    }
}

#[test]
fn analysis_is_scale_independent() {
    // The static pipeline does not depend on runtime capacities at all;
    // the dynamic verifier works at any scale big enough for its probe
    // burst.
    let a = experiments::analysis_headline(scale(2_000));
    let b = experiments::analysis_headline(ExperimentScale::quick());
    assert_eq!(a, b);
}
