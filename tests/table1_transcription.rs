//! Independent transcription of the paper's Table I, row by row, checked
//! against the analysis output. The catalog in `jgre-corpus` encodes the
//! same table; this test re-types it from the paper so an accidental
//! catalog edit cannot silently drift away from the published data.

use jgre_repro::core::{experiments, ExperimentScale};

/// (service, interface, permission-manifest-name-or-empty) — verbatim
/// from Table I of the paper (the duplicated
/// `bindBluetoothProfileService` row is disambiguated with a `2` suffix,
/// as documented in the catalog).
const TABLE_1: &[(&str, &str, &str)] = &[
    (
        "location",
        "addGpsStatusListener",
        "android.permission.ACCESS_FINE_LOCATION",
    ),
    ("sip", "open3", "android.permission.USE_SIP"),
    ("sip", "createSession", "android.permission.USE_SIP"),
    ("midi", "registerListener", ""),
    ("midi", "openDevice", ""),
    ("midi", "openBluetoothDevice", ""),
    ("midi", "registerDeviceServer", ""),
    ("content", "registerContentObserver", ""),
    ("content", "addStatusChangeListener", ""),
    ("mount", "registerListener", ""),
    ("appops", "startWatchingMode", ""),
    ("appops", "getToken", ""),
    ("bluetooth_manager", "registerAdapter", ""),
    (
        "bluetooth_manager",
        "registerStateChangeCallback",
        "android.permission.BLUETOOTH",
    ),
    ("bluetooth_manager", "bindBluetoothProfileService", ""),
    ("bluetooth_manager", "bindBluetoothProfileService2", ""),
    ("audio", "registerRemoteController", ""),
    ("audio", "startWatchingRoutes", ""),
    ("country_detector", "addCountryListener", ""),
    ("power", "acquireWakeLock", "android.permission.WAKE_LOCK"),
    ("input_method", "addClient", ""),
    ("accessibility", "addAccessibilityInteractionConnection", ""),
    ("print", "print", ""),
    ("print", "addPrintJobStateChangeListener", ""),
    ("print", "createPrinterDiscoverySession", ""),
    (
        "package",
        "getPackageSizeInfo",
        "android.permission.GET_PACKAGE_SIZE",
    ),
    (
        "telephony.registry",
        "addOnSubscriptionsChangedListener",
        "android.permission.READ_PHONE_STATE",
    ),
    (
        "telephony.registry",
        "listen",
        "android.permission.READ_PHONE_STATE",
    ),
    (
        "telephony.registry",
        "listenForSubscriber",
        "android.permission.READ_PHONE_STATE",
    ),
    ("media_session", "registerCallbackListener", ""),
    ("media_session", "createSession", ""),
    ("media_router", "registerClientAsUser", ""),
    ("media_projection", "registerCallback", ""),
    ("input", "vibrate", ""),
    ("window", "watchRotation", ""),
    ("wallpaper", "getWallpaper", ""),
    ("fingerprint", "addLockoutResetCallback", ""),
    ("textservices", "getSpellCheckerService", ""),
    (
        "network_management",
        "registerNetworkActivityListener",
        "android.permission.CHANGE_NETWORK_STATE",
    ),
    (
        "connectivity",
        "requestNetwork",
        "android.permission.CHANGE_NETWORK_STATE",
    ),
    (
        "connectivity",
        "listenForNetwork",
        "android.permission.ACCESS_NETWORK_STATE",
    ),
    ("activity", "registerTaskStackListener", ""),
    ("activity", "registerReceiver", ""),
    ("activity", "bindService", ""),
];

#[test]
fn table1_matches_the_paper_verbatim() {
    assert_eq!(TABLE_1.len(), 44, "the paper lists 44 rows");
    let produced = experiments::table1(ExperimentScale::quick());
    assert_eq!(produced.rows.len(), TABLE_1.len());
    for (service, method, permission) in TABLE_1 {
        let row = produced
            .rows
            .iter()
            .find(|r| r.service == *service && r.method == *method)
            .unwrap_or_else(|| panic!("missing Table I row: {service}.{method}"));
        if permission.is_empty() {
            assert!(
                row.permissions.is_empty(),
                "{service}.{method}: expected no permission, got {:?}",
                row.permissions
            );
        } else {
            assert!(
                row.permissions.iter().any(|p| p.contains(permission)),
                "{service}.{method}: expected {permission}, got {:?}",
                row.permissions
            );
        }
    }
}
