//! The `jgre` CLI binary, driven end to end.

use std::process::Command;

fn jgre() -> Command {
    Command::new(env!("CARGO_BIN_EXE_jgre"))
}

#[test]
fn headline_renders_the_counts() {
    let out = jgre().arg("headline").output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("54 in 32 system services"), "{stdout}");
    assert!(stdout.contains("147 total, 67 init-only filtered"), "{stdout}");
}

#[test]
fn json_output_is_machine_readable() {
    let out = jgre().args(["table4", "--json"]).output().expect("binary runs");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON on stdout");
    assert_eq!(parsed["rows"].as_array().map(|r| r.len()), Some(3));
    assert_eq!(parsed["apps_scanned"], 88);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = jgre().arg("nonsense").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command: nonsense"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn help_prints_and_succeeds() {
    let out = jgre().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("COMMANDS"));
}

#[test]
fn seed_flag_is_parsed() {
    let out = jgre()
        .args(["--seed", "nope", "headline"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed needs a number"));
}
