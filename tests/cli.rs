//! The `jgre` CLI binary, driven end to end.

use std::process::Command;

fn jgre() -> Command {
    Command::new(env!("CARGO_BIN_EXE_jgre"))
}

#[test]
fn headline_renders_the_counts() {
    let out = jgre().arg("headline").output().expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("54 in 32 system services"), "{stdout}");
    assert!(
        stdout.contains("147 total, 67 init-only filtered"),
        "{stdout}"
    );
}

#[test]
fn json_output_is_machine_readable() {
    let out = jgre()
        .args(["table4", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON on stdout");
    assert_eq!(parsed["rows"].as_array().map(|r| r.len()), Some(3));
    assert_eq!(parsed["apps_scanned"], 88);
}

#[test]
fn lint_emits_sarif_with_witnessed_findings() {
    let out = jgre().arg("lint").output().expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sarif: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON on stdout");
    assert_eq!(sarif["version"].as_str(), Some("2.1.0"));

    let run = &sarif["runs"].as_array().expect("one run")[0];
    assert_eq!(run["tool"]["driver"]["name"].as_str(), Some("jgre-lint"));
    let rule_ids: Vec<&str> = run["tool"]["driver"]["rules"]
        .as_array()
        .expect("rules array")
        .iter()
        .filter_map(|r| r["id"].as_str())
        .collect();
    assert_eq!(rule_ids, ["JGRE001", "JGRE002", "JGRE003", "JGRE004"]);

    // 63 risky interfaces (60 unbounded + 3 bounded) plus the
    // signature-gated notes.
    let results = run["results"].as_array().expect("results array");
    let count = |id: &str| {
        results
            .iter()
            .filter(|r| r["ruleId"].as_str() == Some(id))
            .count()
    };
    assert_eq!(count("JGRE001"), 60);
    assert_eq!(count("JGRE003"), 3);
    assert!(count("JGRE002") >= 2);

    // Every finding carries at least one code flow ending at the sink.
    for result in results {
        let flows = result["codeFlows"].as_array().expect("codeFlows");
        assert!(!flows.is_empty());
        let steps = flows[0]["threadFlows"].as_array().expect("threadFlows")[0]["locations"]
            .as_array()
            .expect("locations");
        let first = steps[0]["location"]["message"]["text"].as_str().unwrap();
        let last = steps[steps.len() - 1]["location"]["message"]["text"]
            .as_str()
            .unwrap();
        assert!(first.starts_with("IPC entry "), "{first}");
        assert!(last.contains("inserts the JGR"), "{last}");
    }
}

#[test]
fn lint_sarif_snapshot_of_a_representative_finding() {
    // Model synthesis and result ordering are deterministic, so the first
    // finding is a stable snapshot of the whole SARIF shape.
    let out = jgre().arg("lint").output().expect("binary runs");
    let sarif: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let result = &sarif["runs"].as_array().unwrap()[0]["results"]
        .as_array()
        .unwrap()[0];
    assert_eq!(result["ruleId"].as_str(), Some("JGRE001"));
    assert_eq!(result["level"].as_str(), Some("error"));
    assert_eq!(
        result["message"]["text"].as_str(),
        Some(
            "accessibility.addAccessibilityInteractionConnection retains a JNI \
             global reference per call without bound (2 allocation sites)"
        )
    );
    assert_eq!(
        result["locations"].as_array().unwrap()[0]["logicalLocations"]
            .as_array()
            .unwrap()[0]["fullyQualifiedName"]
            .as_str(),
        Some("accessibility.addAccessibilityInteractionConnection")
    );
    let steps: Vec<&str> = result["codeFlows"].as_array().unwrap()[0]["threadFlows"]
        .as_array()
        .unwrap()[0]["locations"]
        .as_array()
        .unwrap()
        .iter()
        .map(|l| l["location"]["message"]["text"].as_str().unwrap())
        .collect();
    assert_eq!(
        steps,
        [
            "IPC entry com.android.server.AccessibilityService.addAccessibilityInteractionConnection",
            "com.android.server.AccessibilityService.addAccessibilityInteractionConnection calls \
             com.android.server.AccessibilityService.addAccessibilityInteractionConnectionInternal",
            "com.android.server.AccessibilityService.addAccessibilityInteractionConnectionInternal \
             calls android.os.RemoteCallbackList.register",
            "android.os.RemoteCallbackList.register calls android.os.Binder.linkToDeath",
            "android.os.Binder.linkToDeath calls android.os.Binder.linkToDeathNative",
            "JNI bridge android.os.Binder.linkToDeathNative -> android_os_BinderProxy_linkToDeath",
            "android_os_BinderProxy_linkToDeath calls JavaDeathRecipient::JavaDeathRecipient",
            "JavaDeathRecipient::JavaDeathRecipient calls art::IndirectReferenceTable::Add",
            "art::IndirectReferenceTable::Add inserts the JGR",
        ]
    );
}

#[test]
fn lint_json_prints_the_raw_report() {
    let out = jgre()
        .args(["lint", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    // The predicate lattice proves the three bounded collections bounded,
    // so they no longer count as false positives.
    assert_eq!(report["accuracy"]["true_positives"], 54);
    assert_eq!(report["accuracy"]["false_positives"], 0);
    assert_eq!(report["accuracy"]["false_negatives"], 0);
    assert!(report["diagnostics"].as_array().is_some());
}

#[test]
fn lint_path_insensitive_reproduces_the_boolean_era_score() {
    let out = jgre()
        .args(["lint", "--path-insensitive", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(report["accuracy"]["true_positives"], 54);
    assert_eq!(report["accuracy"]["false_positives"], 3);
    assert_eq!(report["accuracy"]["false_negatives"], 0);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("accuracy: tp=54 fp=3 fn=0"), "{stderr}");
}

#[test]
fn lint_prints_the_summary_footer_on_stderr() {
    let out = jgre().arg("lint").output().expect("binary runs");
    assert!(out.status.success());
    // The footer must not pollute the SARIF stdout stream.
    serde_json::from_slice::<serde_json::Value>(&out.stdout).expect("stdout is pure JSON");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("summaries: 3732 (hits 0, misses 3732)"),
        "{stderr}"
    );
    // The CI accuracy gate greps this exact line.
    assert!(stderr.contains("accuracy: tp=54 fp=0 fn=0"), "{stderr}");
}

#[test]
fn lint_cache_dir_roundtrips_with_identical_findings() {
    let dir = std::env::temp_dir().join(format!("jgre-cli-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let run = || {
        let out = jgre()
            .args(["lint", "--cache-dir", dir.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            serde_json::from_slice::<serde_json::Value>(&out.stdout).expect("valid JSON"),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (cold, cold_err) = run();
    let (warm, warm_err) = run();
    std::fs::remove_dir_all(&dir).ok();
    assert!(cold_err.contains("misses 3732"), "{cold_err}");
    assert!(warm_err.contains("(hits 3732, misses 0)"), "{warm_err}");
    // Findings are structurally identical; only the invocation's cache
    // counters may differ between the cold and warm run.
    let results = |v: &serde_json::Value| v["runs"].as_array().unwrap()[0]["results"].clone();
    assert_eq!(results(&cold), results(&warm));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = jgre().arg("nonsense").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command: nonsense"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn help_prints_and_succeeds() {
    let out = jgre().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("COMMANDS"));
}

#[test]
fn seed_flag_is_parsed() {
    let out = jgre()
        .args(["--seed", "nope", "headline"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed needs a number"));
}

#[test]
fn chaos_matrix_runs_clean_and_is_seed_deterministic() {
    let run = |extra: &[&str]| {
        let mut cmd = jgre();
        cmd.args(["chaos", "--seed", "0", "--json"]).args(extra);
        let out = cmd.output().expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let a = run(&[]);
    let b = run(&[]);
    assert_eq!(a, b, "same seed must be byte-identical");
    let threaded = run(&["--threads", "2"]);
    assert_eq!(a, threaded, "thread count must not change the matrix");

    let parsed: serde_json::Value = serde_json::from_slice(&a).expect("valid JSON");
    assert_eq!(parsed["seed"], 0);
    assert_eq!(parsed["violations"], 0);
    // 2 attacks × (1 baseline + 10 kinds × 3 intensities).
    assert_eq!(parsed["cells"].as_array().map(|c| c.len()), Some(62));

    let other_seed = jgre()
        .args(["chaos", "--seed", "7", "--json"])
        .output()
        .expect("binary runs");
    assert!(other_seed.status.success());
    assert_ne!(a, other_seed.stdout, "a different seed changes the run");
}

#[test]
fn chaos_fault_flag_selects_one_channel() {
    let out = jgre()
        .args(["chaos", "--seed", "0", "--fault", "kill-fail", "--json"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    // 2 attacks × (1 baseline + 1 kind × 3 intensities).
    let cells = parsed["cells"].as_array().expect("cells array");
    assert_eq!(cells.len(), 8);
    assert!(cells
        .iter()
        .all(|c| c["fault"] == "none" || c["fault"] == "kill-fail"));

    let bad = jgre()
        .args(["chaos", "--fault", "gamma-rays"])
        .output()
        .expect("binary runs");
    assert!(!bad.status.success(), "unknown fault kind must be rejected");
}

#[test]
fn chaos_list_cells_prints_ids_without_running() {
    let out = jgre()
        .args(["chaos", "--list-cells"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let ids: Vec<&str> = stdout.lines().collect();
    assert_eq!(ids.len(), 62, "full matrix shape");
    assert!(ids.contains(&"clipboard.addPrimaryClipChangedListener/none/off"));
    assert!(ids.contains(&"midi.registerDeviceServer/defender-crash/severe"));

    let filtered = jgre()
        .args(["chaos", "--list-cells", "--fault", "defender-crash"])
        .output()
        .expect("binary runs");
    assert!(filtered.status.success());
    let stdout = String::from_utf8_lossy(&filtered.stdout);
    assert_eq!(stdout.lines().count(), 8, "2 baselines + 2×3 crash cells");
}

#[test]
fn chaos_out_writes_json_and_text_artifacts() {
    let dir = std::env::temp_dir().join(format!("jgre-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("matrix.json");
    let out = jgre()
        .args(["chaos", "--seed", "0", "--fault", "ipc-drop"])
        .arg("--out")
        .arg(&json_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).expect("JSON artifact written");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed["violations"], 0);
    let txt = std::fs::read_to_string(dir.join("matrix.txt")).expect("text artifact written");
    assert!(txt.contains("Chaos matrix — seed 0"), "{txt}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_is_byte_identical_across_runs_and_threads() {
    let dir = std::env::temp_dir().join(format!("jgre-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run = |name: &str, threads: &str| {
        let path = dir.join(name);
        let out = jgre()
            .args([
                "serve",
                "--seed",
                "3",
                "--events-per-sec",
                "4000",
                "--duration",
                "0.25",
                "--threads",
                threads,
            ])
            .arg("--out")
            .arg(&path)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out, std::fs::read(&path).expect("JSON artifact written"))
    };
    let (first, json_a) = run("a.json", "1");
    let (_, json_b) = run("b.json", "1");
    let (_, json_threaded) = run("c.json", "4");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(json_a, json_b, "same seed must write identical bytes");
    assert_eq!(
        json_a, json_threaded,
        "thread count must not change the report"
    );

    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(stdout.contains("jgre serve: seed=3"), "{stdout}");
    assert!(stdout.contains("drops: backpressure="), "{stdout}");
    // Wall-clock throughput stays off the reproducible streams.
    assert!(!stdout.contains("events/sec"), "{stdout}");
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(stderr.contains("events/sec"), "{stderr}");
}

#[test]
fn serve_attack_selector_profiles_the_vector() {
    let out = jgre()
        .args(["serve", "--duration", "0.1", "--attack", "0", "--json"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    // The tapped delay replaces the synthetic 500µs default.
    let delay = report["source"]["attack_delay"]["micros"]
        .as_u64()
        .or_else(|| report["source"]["attack_delay"].as_u64());
    assert!(delay.is_some(), "{report:?}");
    assert!(
        !report["verdicts"].as_array().expect("verdicts").is_empty(),
        "the profiled attack must still be caught"
    );

    let bad = jgre()
        .args(["serve", "--attack", "no.suchMethod"])
        .output()
        .expect("binary runs");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown attack selector"));
}

#[test]
fn committed_chaos_golden_matches_a_fresh_run() {
    let out = jgre()
        .args(["chaos", "--seed", "0", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("artifacts")
        .join("chaos_matrix.json");
    let golden = std::fs::read_to_string(golden_path).expect("golden artifact committed");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim_end(),
        golden.trim_end(),
        "artifacts/chaos_matrix.json is stale; regenerate with \
         `jgre chaos --seed 0 --out artifacts/chaos_matrix.json`"
    );
}

#[test]
fn fuzz_is_byte_identical_across_runs_and_threads() {
    let dir = std::env::temp_dir().join(format!("jgre-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run = |name: &str, threads: &str| {
        let path = dir.join(name);
        let out = jgre()
            .args([
                "fuzz",
                "--seed",
                "7",
                "--iters",
                "2000",
                "--threads",
                threads,
            ])
            .arg("--out")
            .arg(&path)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out, std::fs::read(&path).expect("JSON artifact written"))
    };
    let (first, json_a) = run("a.json", "1");
    let (_, json_b) = run("b.json", "1");
    let (_, json_threaded) = run("c.json", "4");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(json_a, json_b, "same seed must write identical bytes");
    assert_eq!(
        json_a, json_threaded,
        "thread count must not change the report"
    );

    let artifact: serde_json::Value = serde_json::from_slice(&json_a).expect("valid JSON artifact");
    assert_eq!(artifact["fuzz"]["seed"], 7);
    assert_eq!(artifact["fuzz"]["execs"], 2000);
    // Hardened dispatch: a smoke-sized mutation storm lands plenty of
    // typed rejections and never crashes a host.
    assert_eq!(artifact["fuzz"]["host_aborts"], 0);
    assert!(
        artifact["fuzz"]["rejects"]["unknown-code"]
            .as_u64()
            .is_some_and(|n| n > 0),
        "typed rejection ledger is empty"
    );

    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(stdout.contains("fuzz: seed 7"), "{stdout}");
    assert!(stdout.contains("differential:"), "{stdout}");
    // Wall-clock throughput stays off the reproducible streams.
    assert!(!stdout.contains("execs/sec"), "{stdout}");
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(stderr.contains("execs/sec"), "{stderr}");
    assert!(stderr.contains("findings/sec"), "{stderr}");
}

#[test]
fn fuzz_attack_surface_selector_restricts_the_sweep() {
    let out = jgre()
        .args([
            "fuzz",
            "--seed",
            "7",
            "--iters",
            "500",
            "--attack-surface",
            "hidden",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let artifact: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON on stdout");
    assert_eq!(artifact["fuzz"]["attack_surface"], "hidden");

    let bad = jgre()
        .args(["fuzz", "--attack-surface", "bogus"])
        .output()
        .expect("binary runs");
    assert!(!bad.status.success(), "bogus surface must be rejected");
}
