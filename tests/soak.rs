//! Long-haul soak: one defended device survives a whole campaign of
//! sequential attacks (every vector, one attacker after another), with
//! the driver log staying bounded and the JGR table returning to its
//! stock floor after each recovery.

use std::rc::Rc;

use jgre_repro::core::attack::AttackVector;
use jgre_repro::core::corpus::spec::AospSpec;
use jgre_repro::core::defense::{
    CrashConsistentConfig, CrashConsistentDefender, JgreDefender, MemoryStore,
};
use jgre_repro::core::framework::{CallOptions, FrameworkError, System, SystemConfig};
use jgre_repro::core::ExperimentScale;
use jgre_repro::sim::FaultPlan;

#[test]
fn one_device_survives_a_full_attack_campaign() {
    let scale = ExperimentScale::quick();
    let mut system = System::boot_with(scale.system_config());
    let defender = JgreDefender::install(&mut system, scale.defender_config())
        .expect("defender config is valid");
    let spec = AospSpec::android_6_0_1();

    let mut detections = 0usize;
    let mut max_log = 0usize;
    for (i, vector) in AttackVector::all_vectors(&spec).into_iter().enumerate() {
        let mal = system.install_app(format!("com.wave{i}"), vector.permissions.clone());
        let mut detected = false;
        for _ in 0..(scale.jgr_capacity as u64 * 4) {
            match system.call_service(mal, &vector.service, &vector.method, vector.call_options()) {
                Ok(o) => assert!(
                    !o.host_aborted,
                    "wave {i} ({}) aborted the victim",
                    vector.service
                ),
                // A previous wave may have crashed an app-hosted service's
                // process; system services must always be there.
                Err(FrameworkError::ServiceDead | FrameworkError::UnknownService(_)) => break,
                Err(e) => panic!("wave {i}: {e}"),
            }
            if let Some(d) = defender.poll(&mut system) {
                assert!(d.killed.contains(&mal), "wave {i} killed {:?}", d.killed);
                detections += 1;
                detected = true;
                break;
            }
        }
        assert!(
            detected,
            "wave {i} ({}.{}) was never detected",
            vector.service, vector.method
        );
        max_log = max_log.max(system.driver().log().len());
        // Recovery left the table near the stock floor.
        let jgr = system.system_server_jgr_count();
        assert!(
            jgr <= scale.normal_level,
            "wave {i}: table at {jgr} after recovery"
        );
    }
    assert_eq!(system.soft_reboots(), 0, "no reboot across the campaign");
    assert_eq!(detections, 57);
    // The defender prunes the proc log after each detection, so it never
    // grows with the campaign length.
    assert!(
        max_log < scale.jgr_capacity * 6,
        "driver log unbounded: {max_log}"
    );
}

#[test]
fn defender_tolerates_a_victim_dying_before_recovery() {
    // Adversarial sequencing: the attack exhausts an *app-hosted* service
    // (its own process aborts, not system_server) while the defender's
    // alarm is pending; poll must handle the dead victim gracefully.
    let scale = ExperimentScale::quick();
    let mut system = System::boot_with(scale.system_config());
    let defender = JgreDefender::install(&mut system, scale.defender_config())
        .expect("defender config is valid");
    let mal = system.install_app("com.evil", []);
    // Drive the PicoTts app service to abort WITHOUT polling the defender.
    loop {
        match system.call_service(mal, "pico_tts", "setCallback", CallOptions::default()) {
            Ok(o) if o.host_aborted => break,
            Ok(_) => {}
            Err(e) => panic!("{e}"),
        }
    }
    // The victim is gone; the pending alarm must resolve without panicking
    // and without killing anything by mistake.
    if let Some(d) = defender.poll(&mut system) {
        assert!(d.victim_jgr_after.is_none() || d.killed.contains(&mal));
    }
    assert_eq!(system.soft_reboots(), 0);
    // The rest of the device still works.
    let benign = system.install_app("com.fine", []);
    system
        .call_service(
            benign,
            "clipboard",
            "addPrimaryClipChangedListener",
            CallOptions::default(),
        )
        .expect("system services unaffected");
}

#[test]
fn crash_consistent_defender_survives_a_campaign_of_crashes() {
    // Long-haul crash soak: the defender dies probabilistically at every
    // crash boundary for the whole campaign, yet each attacker still
    // ends up dead and the supervisor never exhausts its budget — every
    // recovery replays from the journal rather than starting blind.
    let scale = ExperimentScale::quick();
    let mut system = System::boot_with(SystemConfig {
        faults: FaultPlan {
            crash: 0.2,
            crash_budget: u32::MAX,
            ..FaultPlan::none()
        },
        ..scale.system_config()
    });
    let store = Rc::new(MemoryStore::new());
    let mut defender = CrashConsistentDefender::install(
        &mut system,
        CrashConsistentConfig {
            defender: scale.defender_config(),
            ..CrashConsistentConfig::default()
        },
        store,
    )
    .expect("config is valid");

    for wave in 0..8u32 {
        let mal = system.install_app(format!("com.crashwave{wave}"), []);
        let mut dead = false;
        for _ in 0..(scale.jgr_capacity as u64 * 4) {
            let outcome = system
                .call_service(
                    mal,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .expect("clipboard registered");
            assert!(!outcome.host_aborted, "wave {wave} aborted the victim");
            defender.poll(&mut system);
            if system.pid_of(mal).is_none() {
                dead = true;
                break;
            }
        }
        assert!(dead, "wave {wave}: attacker outlived the defender");
        assert!(!defender.stats().gave_up, "wave {wave}: supervisor quit");
    }
    let stats = defender.stats();
    assert!(stats.crashes > 0, "the crash channel must actually fire");
    assert_eq!(stats.restarts, stats.crashes);
    assert!(stats.checkpoints_written > 0);
    assert!(stats.truncated_bytes > 0, "every crash leaves a torn tail");
    assert_eq!(system.soft_reboots(), 0, "no reboot across the campaign");
}
