//! Head-to-head on the same workload (§V-A's argument, executed): a quiet
//! leaker plus a three-times-chattier innocent app. The raw-call-count
//! strawman kills the innocent app; the JGRE Defender's correlation score
//! kills the leaker.

use jgre_repro::core::defense::{CallCountDefense, DefenderConfig, JgreDefender};
use jgre_repro::core::framework::{CallOptions, System, SystemConfig};
use jgre_repro::core::sim::Uid;

struct Scenario {
    system: System,
    evil: Uid,
    busy: Uid,
    think: u64,
}

fn scenario() -> Scenario {
    let mut system = System::boot_with(SystemConfig {
        seed: 13,
        jgr_capacity: Some(3_200),
        ..SystemConfig::default()
    });
    let evil = system.install_app("com.quiet.leaker", []);
    let busy = system.install_app("com.busy.innocent", []);
    Scenario {
        system,
        evil,
        busy,
        think: 0x9E37_79B9,
    }
}

/// One round of the mixed workload: three innocent calls with human think
/// time between them, one leaking call. (Without the think time both apps
/// would run in rigid lockstep with the Binder loop — a timing pattern no
/// real app produces and that defeats any correlator by construction.)
fn step(s: &mut Scenario) {
    for _ in 0..3 {
        s.system
            .call_service(s.busy, "clipboard", "getState", CallOptions::default())
            .expect("innocent method exists");
        s.think = s.think.wrapping_mul(6364136223846793005).wrapping_add(1);
        let gap_ms = 2 + (s.think >> 33) % 9;
        s.system
            .clock()
            .advance(jgre_repro::core::sim::SimDuration::from_millis(gap_ms));
    }
    s.system
        .call_service(
            s.evil,
            "clipboard",
            "addPrimaryClipChangedListener",
            CallOptions::default(),
        )
        .expect("clipboard registered");
}

#[test]
fn jgre_defender_kills_the_leaker_where_the_strawman_fails() {
    // Strawman first.
    let mut s = scenario();
    let strawman = CallCountDefense::install(&mut s.system, 250, 750, 150)
        .expect("strawman thresholds are valid");
    let strawman_killed = loop {
        step(&mut s);
        if let Some(d) = strawman.poll(&mut s.system) {
            break d.killed;
        }
    };
    assert_eq!(
        strawman_killed.first(),
        Some(&s.busy),
        "the volume heuristic punishes the innocent app"
    );

    // Same workload, the real defender.
    let mut s = scenario();
    let defender = JgreDefender::install(
        &mut s.system,
        DefenderConfig {
            record_threshold: 250,
            trigger_threshold: 750,
            normal_level: 150,
            ..DefenderConfig::default()
        },
    )
    .expect("defender config is valid");
    let detection = loop {
        step(&mut s);
        if let Some(d) = defender.poll(&mut s.system) {
            break d;
        }
    };
    assert_eq!(
        detection.killed,
        vec![s.evil],
        "Algorithm 1 attributes the JGR growth to the leaker"
    );
    assert!(
        s.system.pid_of(s.busy).is_some(),
        "the innocent app survives"
    );
}
