//! Cross-crate check of the paper's §IV statistics through the public
//! facade (T-ANALYSIS in DESIGN.md).

use jgre_repro::core::{experiments, ExperimentScale};

#[test]
fn headline_statistics_match_the_paper() {
    let h = experiments::analysis_headline(ExperimentScale::quick());
    assert_eq!(h.services_total, 104, "104 system services on 6.0.1");
    assert_eq!(h.native_services, 5, "5 native services");
    assert_eq!(h.vulnerable_interfaces, 54, "54 vulnerable IPC interfaces");
    assert_eq!(h.vulnerable_services, 32, "32 vulnerable system services");
    assert_eq!(
        h.zero_permission_services, 22,
        "22 zero-permission services"
    );
    assert_eq!(h.prebuilt_interfaces, 3, "3 interfaces in prebuilt apps");
    assert_eq!(h.third_party_apps, 3, "3 of 1000 Play apps");
    assert_eq!(h.native_paths_total, 147, "147 native paths");
    assert_eq!(h.native_paths_init_only, 67, "67 init-only paths filtered");
    assert!(h.ipc_methods > 2_000, "thousands of IPC methods");
}

#[test]
fn tables_1_4_5_shapes() {
    let scale = ExperimentScale::quick();
    let t1 = experiments::table1(scale);
    assert_eq!(t1.rows.len(), 44, "Table I has 44 interfaces");
    assert_eq!(t1.service_split, (19, 4, 3), "§IV-B permission split");

    let t4 = experiments::table4(scale);
    assert_eq!(t4.rows.len(), 3);
    assert!(t4
        .rows
        .iter()
        .any(|r| r.method == "ITextToSpeechService.setCallback"));

    let t5 = experiments::table5(scale);
    assert_eq!(t5.rows.len(), 3);
    assert!(t5.rows.iter().any(|r| r.app == "Supernet VPN"));
}
