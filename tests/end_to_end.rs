//! End-to-end scenarios through the public facade: exhaustion → soft
//! reboot, protections and their bypasses, and run-to-run determinism.

use jgre_repro::core::corpus::spec::Permission;
use jgre_repro::core::framework::{CallOptions, CallStatus, System, SystemConfig};
use jgre_repro::core::{experiments, ExperimentScale};

fn small_system(seed: u64) -> System {
    System::boot_with(SystemConfig {
        seed,
        jgr_capacity: Some(2_000),
        ..SystemConfig::default()
    })
}

#[test]
fn clipboard_attack_soft_reboots_and_device_recovers() {
    let mut system = small_system(1);
    let mal = system.install_app("com.evil", []);
    let mut calls = 0;
    loop {
        let o = system
            .call_service(
                mal,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .unwrap();
        calls += 1;
        if o.host_aborted {
            break;
        }
        assert!(calls < 3_000, "attack must exhaust a 2000-entry table");
    }
    assert_eq!(system.soft_reboots(), 1);
    assert_eq!(system.system_server_jgr_count(), 0);
    // The rebooted device serves benign traffic again.
    let benign = system.install_app("com.fine", [Permission::WakeLock]);
    let o = system
        .call_service(benign, "power", "acquireWakeLock", CallOptions::default())
        .unwrap();
    assert!(o.status.is_completed());
}

#[test]
fn prebuilt_app_attack_kills_only_the_app() {
    let mut system = small_system(2);
    let mal = system.install_app("com.evil", []);
    loop {
        match system.call_service(
            mal,
            "bluetooth_gatt",
            "registerServer",
            CallOptions::default(),
        ) {
            Ok(o) if o.host_aborted => break,
            Ok(_) => {}
            Err(e) => panic!("{e}"),
        }
    }
    assert_eq!(system.soft_reboots(), 0, "system_server unaffected");
    // Other services still fine.
    let o = system
        .call_service(
            mal,
            "clipboard",
            "addPrimaryClipChangedListener",
            CallOptions::default(),
        )
        .unwrap();
    assert!(o.status.is_completed());
}

#[test]
fn protections_table_verdicts() {
    let t2 = experiments::table2(ExperimentScale::quick());
    assert_eq!(t2.rows.len(), 9, "Table II");
    assert!(t2.rows.iter().all(|r| r.direct_binder_bypasses));

    let t3 = experiments::table3(ExperimentScale::quick());
    assert_eq!(t3.rows.len(), 4, "Table III");
    assert_eq!(t3.rows.iter().filter(|r| r.protected).count(), 3);
    assert_eq!(
        t3.rows.iter().filter(|r| r.spoof_bypasses).count(),
        1,
        "only enqueueToast falls to the package spoof"
    );
}

#[test]
fn kill_releases_exactly_the_attackers_entries() {
    let mut system = small_system(3);
    let a = system.install_app("com.a", []);
    let b = system.install_app("com.b", []);
    for _ in 0..30 {
        system
            .call_service(
                a,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .unwrap();
    }
    for _ in 0..10 {
        system
            .call_service(b, "media_session", "createSession", CallOptions::default())
            .unwrap();
    }
    assert_eq!(system.system_server_jgr_count(), 40);
    system.kill_app(a);
    assert_eq!(system.system_server_jgr_count(), 10);
    system.kill_app(b);
    assert_eq!(system.system_server_jgr_count(), 0);
}

#[test]
fn same_seed_reproduces_identical_experiments() {
    let s = ExperimentScale::quick();
    let f9a = experiments::fig9(s);
    let f9b = experiments::fig9(s);
    assert_eq!(f9a, f9b, "fig9 must be bit-for-bit deterministic");
    let f10a = experiments::fig10(s, 50);
    let f10b = experiments::fig10(s, 50);
    assert_eq!(f10a, f10b);
}

#[test]
fn server_limit_rejection_has_no_jgr_side_effect() {
    let mut system = small_system(4);
    let app = system.install_app("com.probe", []);
    // Exhaust the per-process cap, then hammer the rejected path.
    let mut completed = 0;
    for _ in 0..40 {
        let o = system
            .call_service(app, "display", "registerCallback", CallOptions::default())
            .unwrap();
        if o.status == CallStatus::Completed {
            completed += 1;
        } else {
            assert_eq!(o.jgr_created, 0);
        }
    }
    assert_eq!(completed, 1, "display caps at one callback per process");
    let ss = system.system_server_pid();
    system.gc_process(ss);
    assert_eq!(system.system_server_jgr_count(), 1);
}
