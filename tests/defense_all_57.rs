//! §V-C through the public facade: the JGRE Defender must stop every one
//! of the 57 identified attacks (54 system-service interfaces + 3
//! prebuilt-app interfaces), and the colluding scenario must identify all
//! four attackers without harming the benign app (T-DEFENSE in DESIGN.md).

use jgre_repro::core::{experiments, ExperimentScale};

#[test]
fn all_57_attacks_are_stopped() {
    let e = experiments::defense_effectiveness(ExperimentScale::quick());
    assert_eq!(e.runs.len(), 57);
    let failed: Vec<_> = e
        .runs
        .iter()
        .filter(|r| !(r.victim_survived && r.attacker_killed))
        .map(|r| r.interface.clone())
        .collect();
    assert!(failed.is_empty(), "undefended attacks: {failed:?}");
    // Every detection recovered the victim below the normal level.
    for r in &e.runs {
        let d = r.detection.as_ref().expect("defended runs detected");
        assert!(
            d.victim_jgr_after.expect("victim survived") < ExperimentScale::quick().normal_level,
            "{} recovered to {:?}",
            r.interface,
            d.victim_jgr_after
        );
    }
}

#[test]
fn colluding_attackers_all_ranked_above_benign() {
    let f = experiments::fig9(ExperimentScale::quick());
    for &delta in &f.deltas_us {
        assert!(
            f.top4_all_malicious(delta),
            "Δ={delta}µs failed:\n{}",
            f.render()
        );
    }
}

#[test]
fn response_delays_never_approach_exhaustion_time() {
    let r = experiments::response_delay(ExperimentScale::quick());
    assert_eq!(r.rows.len(), 57);
    // §V-D.1's punchline: the slowest detection is far below the fastest
    // exhaustion, so the attack cannot outrun the defense.
    let fastest_exhaustion_us = experiments::fig3(ExperimentScale::quick()).fastest_secs() * 1e6;
    for row in &r.rows {
        assert!(
            (row.response_delay_us as f64) < fastest_exhaustion_us / 2.0,
            "{} detection {}µs vs fastest exhaustion {}µs",
            row.interface,
            row.response_delay_us,
            fastest_exhaustion_us
        );
    }
    // Escalating-window (slow-correlation) cases are a paper-scale
    // property: they depend on where the 4000→12000 recording window sits
    // on the interface's cost curve. They are asserted at paper thresholds
    // by `jgre-defense`'s `slow_delay_interface_needs_more_windows` test
    // and measured by the response-delay bench.
}
