//! Property-based tests over the whole device: random interleavings of
//! calls, kills, GCs and launches must preserve the JGR accounting
//! invariants and never wedge the system.

use jgre_corpus::spec::{AospSpec, JgrBehavior, Protection};
use jgre_framework::{CallOptions, FrameworkError, System, SystemConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Call interface `iface % catalog` from app `app % apps`.
    Call {
        app: usize,
        iface: usize,
        spoof: bool,
    },
    /// Kill app `app % apps`.
    Kill { app: usize },
    /// GC system_server.
    Gc,
    /// Launch app `app % apps` to the foreground.
    Launch { app: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<usize>(), any::<usize>(), any::<bool>())
            .prop_map(|(app, iface, spoof)| Op::Call { app, iface, spoof }),
        1 => any::<usize>().prop_map(|app| Op::Kill { app }),
        1 => Just(Op::Gc),
        1 => any::<usize>().prop_map(|app| Op::Launch { app }),
    ]
}

/// A mixed pool of callable interfaces: vulnerable, innocent, bounded.
fn interface_pool(spec: &AospSpec) -> Vec<(String, String, bool)> {
    let mut pool = Vec::new();
    for svc in &spec.services {
        if svc.native {
            continue;
        }
        for m in &svc.methods {
            if m.permission.is_none() {
                let retains_unbounded = m.is_vulnerable();
                pool.push((svc.name.clone(), m.name.clone(), retains_unbounded));
            }
        }
    }
    // Keep the pool a manageable, deterministic slice with a mix of kinds.
    pool.sort();
    pool.into_iter().step_by(7).take(60).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants after arbitrary operation sequences:
    /// * killing every app and collecting leaves the JGR table empty
    ///   (no leak survives its owner);
    /// * the process count never exceeds the LMK envelope;
    /// * the system never errors in unexpected ways.
    #[test]
    fn random_ops_preserve_accounting(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut system = System::boot_with(SystemConfig {
            seed: 99,
            jgr_capacity: Some(100_000), // never abort in this test
            ..SystemConfig::default()
        });
        let spec = system.spec().clone();
        let pool = interface_pool(&spec);
        let apps: Vec<_> = (0..5)
            .map(|i| system.install_app(format!("com.prop{i}"), []))
            .collect();
        for op in ops {
            match op {
                Op::Call { app, iface, spoof } => {
                    let (svc, method, _) = &pool[iface % pool.len()];
                    let options = CallOptions {
                        spoof_system_package: spoof,
                        ..CallOptions::default()
                    };
                    match system.call_service(apps[app % apps.len()], svc, method, options) {
                        Ok(_) => {}
                        Err(FrameworkError::PermissionDenied { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{svc}.{method}: {e}"))),
                    }
                }
                Op::Kill { app } => {
                    system.kill_app(apps[app % apps.len()]);
                }
                Op::Gc => {
                    let ss = system.system_server_pid();
                    system.gc_process(ss);
                }
                Op::Launch { app } => {
                    system.launch_app(apps[app % apps.len()]).expect("installed");
                }
            }
            prop_assert!(
                system.running_app_count() <= 39,
                "LMK envelope violated: {}",
                system.running_app_count()
            );
        }
        prop_assert_eq!(system.soft_reboots(), 0, "capacity was unreachable");
        // Teardown: kill everyone, GC, table must drain completely.
        for &app in &apps {
            system.kill_app(app);
        }
        let ss = system.system_server_pid();
        system.gc_process(ss);
        prop_assert_eq!(
            system.system_server_jgr_count(),
            0,
            "references leaked past their owners' deaths"
        );
    }

    /// Retained-entry bookkeeping equals the JGR table for purely
    /// retaining interfaces: N completed calls on RetainPerCall methods
    /// leave exactly N entries (× grefs) after GC.
    #[test]
    fn retention_accounting_is_exact(calls in proptest::collection::vec(0usize..8, 1..60)) {
        let mut system = System::boot_with(SystemConfig {
            seed: 3,
            jgr_capacity: Some(100_000),
            ..SystemConfig::default()
        });
        let spec = system.spec().clone();
        let vulnerable: Vec<(String, String, u32)> = spec
            .vulnerable_service_interfaces()
            .filter(|(_, m)| m.permission.is_none() && matches!(m.protection, Protection::None))
            .map(|(s, m)| {
                let JgrBehavior::RetainPerCall { grefs_per_call: g } = m.jgr else {
                    unreachable!("vulnerable methods retain")
                };
                (s.name.clone(), m.name.clone(), g)
            })
            .collect();
        let app = system.install_app("com.exact", []);
        let mut expected = 0usize;
        for pick in calls {
            let (svc, method, grefs) = &vulnerable[pick % vulnerable.len()];
            let o = system
                .call_service(app, svc, method, CallOptions::default())
                .expect("no permission needed");
            prop_assert!(o.status.is_completed());
            expected += *grefs as usize;
        }
        let ss = system.system_server_pid();
        system.gc_process(ss);
        prop_assert_eq!(system.system_server_jgr_count(), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Handler-side JNI locals never leak: after any burst of innocent
    /// calls, a GC returns the host heap to a stable size (the local
    /// frames popped when each handler returned, so their objects are
    /// unreachable).
    #[test]
    fn handler_locals_do_not_accumulate(bursts in proptest::collection::vec(1usize..40, 1..6)) {
        let mut system = System::boot_with(SystemConfig {
            seed: 21,
            jgr_capacity: Some(50_000),
            ..SystemConfig::default()
        });
        let app = system.install_app("com.local", []);
        let ss = system.system_server_pid();
        let mut baseline = None;
        for burst in bursts {
            for _ in 0..burst {
                system
                    .call_service(app, "clipboard", "getState", CallOptions::default())
                    .expect("innocent method exists");
            }
            system.gc_process(ss);
            let live = system.heap_live(ss).expect("system_server is alive");
            match baseline {
                None => baseline = Some(live),
                Some(b) => prop_assert_eq!(live, b, "heap grew across GCs"),
            }
        }
    }
}

/// One arbitrary value a fuzzer-style caller writes into a raw parcel.
#[derive(Debug, Clone)]
enum RawOp {
    /// An arbitrary string (occasionally the `"android"` spoof).
    Str(String),
    /// A 32-bit integer.
    I32(i32),
    /// A 64-bit integer.
    I64(i64),
    /// An opaque blob, up to 2 MB (past the 1 MB transaction buffer).
    Blob(usize),
    /// A live callback binder, freshly created by the caller.
    LiveBinder,
    /// A raw `NodeId` the driver never issued.
    ForgedBinder(u64),
}

fn raw_op_strategy() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        3 => "[a-z.]{0,24}".prop_map(RawOp::Str),
        1 => Just(RawOp::Str("android".to_owned())),
        2 => any::<i32>().prop_map(RawOp::I32),
        2 => any::<i64>().prop_map(RawOp::I64),
        2 => (0usize..2 * 1024 * 1024).prop_map(RawOp::Blob),
        2 => Just(RawOp::LiveBinder),
        2 => any::<u64>().prop_map(RawOp::ForgedBinder),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hardened dispatch is total: no transaction code and no parcel
    /// shape can panic it. Every raw transaction lands on a completed
    /// call, a server-limit rejection, a typed `CallStatus::Rejected`
    /// fail-stop, or a typed `FrameworkError` — and every typed
    /// rejection is tallied in the driver's per-reason ledger.
    #[test]
    fn arbitrary_raw_transactions_never_panic_dispatch(
        txns in proptest::collection::vec(
            (
                any::<usize>(),
                any::<u32>(),
                proptest::collection::vec(raw_op_strategy(), 0..6),
            ),
            1..40,
        )
    ) {
        let mut system = System::boot_with(SystemConfig {
            seed: 4242,
            jgr_capacity: Some(100_000),
            ..SystemConfig::default()
        });
        let app = system.install_app("com.raw", []);
        let services = system.service_names();
        let mut typed_rejections = 0u64;
        for (svc_pick, code, ops) in txns {
            let service = services[svc_pick % services.len()].clone();
            let mut parcel = jgre_binder::Parcel::new();
            for op in ops {
                match op {
                    RawOp::Str(s) => {
                        parcel.write_string(s);
                    }
                    RawOp::I32(v) => {
                        parcel.write_i32(v);
                    }
                    RawOp::I64(v) => {
                        parcel.write_i64(v);
                    }
                    RawOp::Blob(size) => {
                        parcel.write_blob(size);
                    }
                    RawOp::LiveBinder => {
                        let node = system
                            .create_callback_node(app)
                            .expect("installed app can create callbacks");
                        parcel.write_strong_binder(node);
                    }
                    RawOp::ForgedBinder(raw) => {
                        parcel.write_strong_binder(jgre_binder::NodeId::new(raw));
                    }
                }
            }
            match system.transact_raw(app, &service, code, &mut parcel) {
                Ok(outcome) => {
                    prop_assert!(!outcome.host_aborted, "raw txn aborted the host");
                    if outcome.status.reject().is_some() {
                        typed_rejections += 1;
                    }
                }
                Err(FrameworkError::PermissionDenied { .. } | FrameworkError::ServiceDead) => {}
                Err(e) => return Err(TestCaseError::fail(format!("untyped failure: {e}"))),
            }
        }
        let ledger_total: u64 = system.reject_counts().values().sum();
        prop_assert!(
            ledger_total >= typed_rejections,
            "driver ledger undercounts typed rejections: {ledger_total} < {typed_rejections}"
        );
    }
}
