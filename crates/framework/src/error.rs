//! Error type for framework operations.

use std::error::Error;
use std::fmt;

use jgre_art::ArtError;
use jgre_binder::BinderError;
use jgre_corpus::spec::Permission;

/// Errors returned by [`System`](crate::System) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameworkError {
    /// The uid does not name an installed app.
    UnknownApp,
    /// No service registered under this name.
    UnknownService(String),
    /// The service exists but has no such method.
    UnknownMethod {
        /// Service name.
        service: String,
        /// Method name.
        method: String,
    },
    /// The caller lacks the required permission (a `SecurityException`).
    PermissionDenied {
        /// The missing permission.
        permission: Permission,
    },
    /// The helper class refused the request after hitting its threshold —
    /// e.g. `WifiManager`'s *"Exceeded maximum number of wifi locks"*.
    HelperLimitExceeded {
        /// Helper class that enforced the limit.
        helper: String,
        /// The limit.
        limit: u32,
    },
    /// The target service's hosting process is dead.
    ServiceDead,
    /// Underlying Binder failure.
    Binder(BinderError),
    /// Underlying runtime failure that is not an abort handled by the
    /// framework (aborts surface as
    /// [`CallOutcome::host_aborted`](crate::CallOutcome::host_aborted)).
    Art(ArtError),
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::UnknownApp => write!(f, "unknown app uid"),
            FrameworkError::UnknownService(name) => write!(f, "unknown service: {name}"),
            FrameworkError::UnknownMethod { service, method } => {
                write!(f, "service {service} has no method {method}")
            }
            FrameworkError::PermissionDenied { permission } => {
                write!(f, "permission denied: {}", permission.manifest_name())
            }
            FrameworkError::HelperLimitExceeded { helper, limit } => {
                write!(f, "{helper}: exceeded maximum of {limit} retained requests")
            }
            FrameworkError::ServiceDead => write!(f, "service host process is dead"),
            FrameworkError::Binder(e) => write!(f, "binder: {e}"),
            FrameworkError::Art(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl Error for FrameworkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameworkError::Binder(e) => Some(e),
            FrameworkError::Art(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BinderError> for FrameworkError {
    fn from(e: BinderError) -> Self {
        FrameworkError::Binder(e)
    }
}

impl From<ArtError> for FrameworkError {
    fn from(e: ArtError) -> Self {
        FrameworkError::Art(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = FrameworkError::PermissionDenied {
            permission: Permission::WakeLock,
        };
        assert!(e.to_string().contains("WAKE_LOCK"));
        let e = FrameworkError::Binder(BinderError::DeadNode);
        assert!(e.source().is_some());
        let e = FrameworkError::HelperLimitExceeded {
            helper: "WifiManager".into(),
            limit: 50,
        };
        assert!(e.to_string().contains("WifiManager"));
    }
}
