//! Simulated Android 6.0.1 framework for the JGRE reproduction.
//!
//! [`System`] assembles the full victim environment the paper attacks:
//!
//! * a **process table** with a `system_server` whose single ART runtime is
//!   shared by every Java system service thread — the reason one vulnerable
//!   interface anywhere can soft-reboot the whole device;
//! * the **service catalog** from [`jgre_corpus::spec`]: all 104 services,
//!   their IPC methods, execution-cost models, and how each handler treats
//!   received binders (retain / transient / replace / thread-create);
//! * the **permission model** (none / normal / dangerous / signature)
//!   checked at the Binder boundary;
//! * **helper classes** (`WifiManager`, `ClipboardManager`, …) enforcing
//!   client-side thresholds that direct Binder calls bypass — Table II's
//!   flaw;
//! * **server-side per-process limits** including the `enqueueToast`
//!   package-name spoof — Table III's flaw;
//! * a **low-memory-killer** capping concurrently running apps, which is
//!   what keeps the benign baseline of Figure 4 in its narrow band.
//!
//! # Example: the wifi-lock exploit of Code-Snippet 2
//!
//! ```
//! use jgre_framework::{CallOptions, System};
//! use jgre_corpus::spec::Permission;
//!
//! let mut system = System::boot(7);
//! let mal = system.install_app("com.evil.app", [Permission::WakeLock]);
//! // Direct Binder calls skip WifiManager's MAX_ACTIVE_LOCKS check:
//! for _ in 0..100 {
//!     let outcome = system
//!         .call_service(mal, "wifi", "acquireWifiLock", CallOptions::default())
//!         .unwrap();
//!     assert!(outcome.status.is_completed());
//! }
//! assert!(system.system_server_jgr_count() >= 100);
//! ```

mod error;
mod lmk;
mod process;
mod system;

pub use error::FrameworkError;
pub use lmk::{
    select_lmk_victim, LmkCandidate, LmkConfig, OOM_SCORE_BACKGROUND, OOM_SCORE_FOREGROUND,
};
pub use process::{Process, ProcessTable};
pub use system::{
    CallOptions, CallOutcome, CallReject, CallStatus, KillOutcome, ServiceInfo, Supervisor,
    SupervisorConfig, System, SystemConfig, FIRST_CALL_TRANSACTION,
};

/// Number of processes running on the stock image before any third-party
/// app is installed (Figure 4 reports 382).
pub const STOCK_PROCESS_COUNT: usize = 382;
