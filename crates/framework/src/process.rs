//! The process table.

use std::collections::BTreeMap;

use jgre_art::{Runtime, RuntimeState};
use jgre_sim::{Pid, SimClock, SimTime, TraceSink, Uid};

/// One simulated process with its own ART runtime.
#[derive(Debug)]
pub struct Process {
    /// Kernel pid.
    pub pid: Pid,
    /// Owning uid.
    pub uid: Uid,
    /// Process name, e.g. `"system_server"` or a package name.
    pub name: String,
    /// The process's runtime (owns the JGR table).
    pub runtime: Runtime,
    /// LMK priority; higher is killed first.
    pub oom_score_adj: i32,
    /// When the process was last in the foreground (LMK victim ordering).
    pub last_foreground: SimTime,
    /// Whether the process is alive.
    pub alive: bool,
}

/// Allocates pids and tracks live processes.
///
/// # Example
///
/// ```
/// use jgre_framework::ProcessTable;
/// use jgre_sim::{SimClock, TraceSink, Uid};
///
/// let mut table = ProcessTable::new(SimClock::new(), TraceSink::disabled());
/// let pid = table.spawn(Uid::new(10001), "com.example.app", 0);
/// assert!(table.get(pid).unwrap().alive);
/// table.kill(pid);
/// assert!(table.get(pid).is_none());
/// ```
#[derive(Debug)]
pub struct ProcessTable {
    clock: SimClock,
    trace: TraceSink,
    processes: BTreeMap<Pid, Process>,
    next_pid: u32,
}

impl ProcessTable {
    /// Creates an empty table; pids start at 400 (the stock image's ~382
    /// boot processes occupy the lower range and are modelled as a count,
    /// not as table entries).
    pub fn new(clock: SimClock, trace: TraceSink) -> Self {
        Self {
            clock,
            trace,
            processes: BTreeMap::new(),
            next_pid: 400,
        }
    }

    /// Spawns a process with a fresh runtime.
    pub fn spawn(&mut self, uid: Uid, name: &str, oom_score_adj: i32) -> Pid {
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let runtime = Runtime::new(pid, self.clock.clone(), self.trace.clone());
        self.processes.insert(
            pid,
            Process {
                pid,
                uid,
                name: name.to_owned(),
                runtime,
                oom_score_adj,
                last_foreground: self.clock.now(),
                alive: true,
            },
        );
        self.trace
            .record(self.clock.now(), Some(pid), Some(uid), "proc.spawn", name);
        pid
    }

    /// Removes a process. Idempotent; killing an unknown pid is a no-op.
    pub fn kill(&mut self, pid: Pid) -> Option<Process> {
        let removed = self.processes.remove(&pid);
        if let Some(p) = &removed {
            self.trace.record(
                self.clock.now(),
                Some(pid),
                Some(p.uid),
                "proc.kill",
                &*p.name,
            );
        }
        removed
    }

    /// Immutable access to a live process.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// Mutable access to a live process.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.processes.get_mut(&pid)
    }

    /// Whether the pid is live and its runtime has not aborted.
    pub fn is_healthy(&self, pid: Pid) -> bool {
        self.processes
            .get(&pid)
            .is_some_and(|p| p.alive && p.runtime.state() == RuntimeState::Running)
    }

    /// Number of live processes in the table (excludes the modelled stock
    /// boot processes).
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Iterates over live processes.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Iterates mutably over live processes.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Process> {
        self.processes.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ProcessTable {
        ProcessTable::new(SimClock::new(), TraceSink::disabled())
    }

    #[test]
    fn spawn_assigns_unique_pids() {
        let mut t = table();
        let a = t.spawn(Uid::new(10001), "a", 0);
        let b = t.spawn(Uid::new(10002), "b", 900);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b).unwrap().oom_score_adj, 900);
    }

    #[test]
    fn kill_removes_and_is_idempotent() {
        let mut t = table();
        let a = t.spawn(Uid::new(10001), "a", 0);
        assert!(t.kill(a).is_some());
        assert!(t.kill(a).is_none());
        assert!(!t.is_healthy(a));
    }

    #[test]
    fn health_tracks_runtime_abort() {
        let mut t = table();
        let a = t.spawn(Uid::new(10001), "a", 0);
        assert!(t.is_healthy(a));
        // Force an abort by overflowing a tiny runtime substituted in.
        let p = t.get_mut(a).unwrap();
        p.runtime =
            jgre_art::Runtime::with_global_capacity(a, SimClock::new(), TraceSink::disabled(), 1);
        let o1 = p.runtime.alloc("x");
        p.runtime.add_global(o1).unwrap();
        let o2 = p.runtime.alloc("x");
        assert!(p.runtime.add_global(o2).is_err());
        assert!(!t.is_healthy(a));
    }
}
