//! Low-memory-killer victim selection.
//!
//! Android's LMK kills background apps by descending `oom_score_adj` when
//! memory runs low. Two places in the reproduction rely on it:
//!
//! * the Figure 4 benign baseline: launching the top-300 apps never runs
//!   more than ~39 simultaneously because the 16 GB Nexus 5X evicts the
//!   oldest background apps, which also releases their JGR entries in
//!   `system_server`;
//! * the paper's defense is explicitly designed "similar to Android's low
//!   memory killer" — the `jgre-defense` crate reuses this victim-ranking
//!   shape with a JGR score instead of a memory score.

use jgre_sim::{Pid, SimTime};
use serde::{Deserialize, Serialize};

/// `oom_score_adj` of the foreground app.
pub const OOM_SCORE_FOREGROUND: i32 = 0;
/// `oom_score_adj` of cached background apps.
pub const OOM_SCORE_BACKGROUND: i32 = 900;

/// LMK configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LmkConfig {
    /// Maximum concurrently running third-party app processes before the
    /// killer starts evicting. The paper observes at most 39 of the 100
    /// installed apps alive at once on the 16 GB test device.
    pub max_user_apps: usize,
}

impl Default for LmkConfig {
    fn default() -> Self {
        Self { max_user_apps: 39 }
    }
}

/// A candidate process as the killer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LmkCandidate {
    /// Process id.
    pub pid: Pid,
    /// Its current `oom_score_adj`.
    pub oom_score_adj: i32,
    /// When it was last foregrounded.
    pub last_foreground: SimTime,
}

/// Picks the victim to evict when over the app cap: highest
/// `oom_score_adj` first, oldest `last_foreground` as tie-break — i.e.
/// the most-cached, least-recently-used app. Returns `None` for an empty
/// candidate list.
///
/// # Example
///
/// ```
/// use jgre_framework::LmkConfig;
/// use jgre_framework::{OOM_SCORE_BACKGROUND, OOM_SCORE_FOREGROUND};
/// # use jgre_sim::{Pid, SimTime};
/// # use jgre_framework::select_lmk_victim;
/// # use jgre_framework::LmkCandidate;
/// let victims = [
///     LmkCandidate { pid: Pid::new(1), oom_score_adj: OOM_SCORE_FOREGROUND,
///                    last_foreground: SimTime::from_secs(10) },
///     LmkCandidate { pid: Pid::new(2), oom_score_adj: OOM_SCORE_BACKGROUND,
///                    last_foreground: SimTime::from_secs(5) },
///     LmkCandidate { pid: Pid::new(3), oom_score_adj: OOM_SCORE_BACKGROUND,
///                    last_foreground: SimTime::from_secs(2) },
/// ];
/// assert_eq!(select_lmk_victim(&victims), Some(Pid::new(3)));
/// ```
pub fn select_lmk_victim(candidates: &[LmkCandidate]) -> Option<Pid> {
    candidates
        .iter()
        .max_by(|a, b| {
            a.oom_score_adj
                .cmp(&b.oom_score_adj)
                .then_with(|| b.last_foreground.cmp(&a.last_foreground))
        })
        .map(|c| c.pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_victim() {
        assert_eq!(select_lmk_victim(&[]), None);
    }

    #[test]
    fn background_beats_foreground() {
        let cands = [
            LmkCandidate {
                pid: Pid::new(1),
                oom_score_adj: OOM_SCORE_FOREGROUND,
                last_foreground: SimTime::ZERO,
            },
            LmkCandidate {
                pid: Pid::new(2),
                oom_score_adj: OOM_SCORE_BACKGROUND,
                last_foreground: SimTime::from_secs(100),
            },
        ];
        assert_eq!(select_lmk_victim(&cands), Some(Pid::new(2)));
    }

    #[test]
    fn lru_breaks_ties() {
        let cands = [
            LmkCandidate {
                pid: Pid::new(1),
                oom_score_adj: OOM_SCORE_BACKGROUND,
                last_foreground: SimTime::from_secs(50),
            },
            LmkCandidate {
                pid: Pid::new(2),
                oom_score_adj: OOM_SCORE_BACKGROUND,
                last_foreground: SimTime::from_secs(10),
            },
        ];
        assert_eq!(select_lmk_victim(&cands), Some(Pid::new(2)));
    }

    #[test]
    fn default_cap_matches_paper_observation() {
        assert_eq!(LmkConfig::default().max_user_apps, 39);
    }
}
