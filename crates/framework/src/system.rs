//! The assembled device: boot, IPC dispatch, protections, death, reboot.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use jgre_art::{ArtError, JgrObserver};
use jgre_binder::{
    materialize_strong_binder, BinderDriver, BinderError, Parcel, ReceivedBinder, ServiceManager,
};
use jgre_corpus::spec::{
    AospSpec, Flaw, JgrBehavior, MethodSpec, Permission, Protection, ProtectionLevel,
};
use jgre_sim::{
    FaultLayer, FaultPlan, Pid, SimClock, SimDuration, SimRng, SimTime, Tid, TraceSink, Uid,
};
use serde::{Deserialize, Serialize};

use crate::{
    select_lmk_victim, FrameworkError, LmkCandidate, LmkConfig, ProcessTable, OOM_SCORE_BACKGROUND,
    OOM_SCORE_FOREGROUND, STOCK_PROCESS_COUNT,
};

/// Knobs for building a [`System`].
#[derive(Debug, Clone, Default)]
pub struct SystemConfig {
    /// Experiment seed (drives jitter and workload randomness).
    pub seed: u64,
    /// LMK settings.
    pub lmk: LmkConfig,
    /// Whether the trace sink keeps records (disable for long benches).
    pub tracing: bool,
    /// Override the JGR capacity of every runtime (tests use small caps to
    /// reach aborts quickly). `None` = the real 51200.
    pub jgr_capacity: Option<usize>,
    /// Persistent global references the stock framework itself holds in
    /// `system_server` (camera/input/window internals, persistent-process
    /// callbacks, …). The paper's Figure 4 observes 1000–3000 standing
    /// entries on an otherwise idle device; tests that assert exact
    /// attack-attributable counts leave this at 0.
    pub stock_jgr: usize,
    /// Fault-injection plan for the chaos experiments. The default
    /// ([`FaultPlan::none`]) consumes no randomness, so faultless runs are
    /// byte-identical to builds that predate the fault layer.
    pub faults: FaultPlan,
}

/// What actually happened when the framework was asked to kill an app —
/// under fault injection, `am force-stop` is no longer guaranteed to work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillOutcome {
    /// The process died and its retained JGR entries were released.
    Killed,
    /// The app had no live process; nothing to do.
    NotRunning,
    /// An injected fault made the kill fail: the process (and every JGR
    /// entry it pins) survives.
    Failed,
    /// The kill landed and its entries were released, but the app
    /// immediately respawned with a fresh (empty) process.
    Respawned,
}

impl KillOutcome {
    /// Whether the victim's retained JGR entries were actually released.
    pub fn released_entries(self) -> bool {
        matches!(self, KillOutcome::Killed | KillOutcome::Respawned)
    }
}

/// How a call is issued.
#[derive(Debug, Clone, Default)]
pub struct CallOptions {
    /// Route through the service-helper class, honouring its client-side
    /// threshold. Benign apps do this; malicious apps never do.
    pub via_helper: bool,
    /// Pass `"android"` as the caller package name — the
    /// `enqueueToast` spoof of Code-Snippet 3.
    pub spoof_system_package: bool,
    /// Extra opaque payload bytes (the Figure 10 sweep).
    pub payload_extra_bytes: usize,
    /// Which code execution path the handler takes (§VI: an attacker may
    /// rotate between a method's paths to smear its timing signature;
    /// each path has its own `Delay`). 0 is the common path.
    pub path_variant: u8,
}

impl CallOptions {
    /// Options for a benign call through the documented helper API.
    pub fn benign() -> Self {
        Self {
            via_helper: true,
            ..Self::default()
        }
    }
}

/// Why the hardened dispatch refused a malformed transaction before its
/// handler ran — the typed fail-stop vocabulary of the fuzz-grade entry
/// points. Every reason maps to a per-reason counter folded into the
/// Binder driver's transaction ledger
/// ([`reject_counts`](jgre_binder::BinderDriver::reject_counts)), so
/// malformed traffic is accounted for instead of panicking the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CallReject {
    /// The transaction code addressed no method in the service's table
    /// (`onTransact` returned `false`).
    UnknownCode,
    /// The parcel ended before a required argument — wrong arity or a
    /// truncated payload.
    Underflow,
    /// A required argument carried the wrong parcel type (type-confused
    /// read).
    TypeConfusion,
    /// The strong binder referred to a dead or never-created node — a
    /// stale or foreign handle smuggled into the parcel.
    StaleBinder,
    /// A method that requires a callback binder was dispatched without
    /// one (structurally unreachable from the public entry points; kept
    /// as a typed backstop so no code path is a panic).
    MissingBinder,
    /// The payload exceeded the 1 MB Binder transaction buffer.
    OversizedPayload,
}

impl CallReject {
    /// Stable label of this rejection reason — the key of the driver's
    /// per-reason ledger and of the fuzz report's outcome histogram.
    pub fn reason(self) -> &'static str {
        match self {
            CallReject::UnknownCode => "unknown-code",
            CallReject::Underflow => "parcel-underflow",
            CallReject::TypeConfusion => "parcel-type-mismatch",
            CallReject::StaleBinder => "stale-binder",
            CallReject::MissingBinder => "missing-binder",
            CallReject::OversizedPayload => "oversized-payload",
        }
    }

    /// Maps a `Parcel::read_*` failure onto its rejection reason.
    fn from_parcel_error(e: &BinderError) -> Self {
        match e {
            BinderError::ParcelTypeMismatch { .. } => CallReject::TypeConfusion,
            // `read_*` only fails with underflow or type mismatch; the
            // arm below also absorbs any future read error soundly.
            _ => CallReject::Underflow,
        }
    }
}

/// Terminal status of a dispatched call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallStatus {
    /// Handler ran to completion.
    Completed,
    /// The service's per-process limit rejected the request (Table III
    /// working as intended).
    RejectedByServerLimit,
    /// The hardened dispatch refused a malformed transaction before the
    /// handler ran: typed fail-stop, a short constant cost, no JGR
    /// effect — what `jgre fuzz` inputs hit instead of a panic.
    Rejected(CallReject),
}

impl CallStatus {
    /// Whether the handler ran.
    pub fn is_completed(self) -> bool {
        matches!(self, CallStatus::Completed)
    }

    /// The fail-stop reason, when the dispatch rejected the parcel.
    pub fn reject(self) -> Option<CallReject> {
        match self {
            CallStatus::Rejected(r) => Some(r),
            _ => None,
        }
    }
}

/// The first valid raw transaction code (`IBinder.FIRST_CALL_TRANSACTION`):
/// [`System::transact_raw`] maps code `FIRST_CALL_TRANSACTION + i` to the
/// service's `i`-th method in AIDL declaration order.
pub const FIRST_CALL_TRANSACTION: u32 = 1;

/// Result of one dispatched IPC call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallOutcome {
    /// Completion status.
    pub status: CallStatus,
    /// When the transaction entered the Binder driver.
    pub sent_at: SimTime,
    /// Handler execution time — the quantity Figures 5 and 6 plot.
    pub exec_time: SimDuration,
    /// Global references created in the host during this call.
    pub jgr_created: usize,
    /// Host JGR table size after the call.
    pub host_jgr_count: usize,
    /// Whether this call overflowed the host's table and aborted it
    /// (for `system_server`: the device soft-rebooted).
    pub host_aborted: bool,
}

/// Public snapshot of a registered service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceInfo {
    /// Registered name.
    pub name: String,
    /// AIDL interface.
    pub interface: String,
    /// Hosting process.
    pub host: Pid,
    /// Whether implemented in native code.
    pub native: bool,
}

#[derive(Debug)]
struct InstalledApp {
    package: String,
    granted: BTreeSet<Permission>,
    pid: Option<Pid>,
}

#[derive(Debug, Default)]
struct MethodState {
    /// Retained proxies per calling pid (the leak).
    retained: BTreeMap<Pid, Vec<ReceivedBinder>>,
    /// Single-member slot per caller (sift rule 4 pattern).
    single: BTreeMap<Pid, ReceivedBinder>,
    /// Total retained entries across callers (drives the Figure 5 cost
    /// growth).
    total_retained: usize,
    /// Lifetime completed calls.
    calls: u64,
}

#[derive(Debug)]
struct ServiceState {
    name: String,
    interface: String,
    native: bool,
    host: Pid,
    node: jgre_binder::NodeId,
    methods: BTreeMap<String, MethodSpec>,
    /// Methods in AIDL declaration order — the positional transaction-code
    /// table `transact_raw` indexes (code = position + 1).
    method_order: Vec<String>,
    per_method: BTreeMap<String, MethodState>,
}

/// Arguments of one server-side dispatch, bundled so `call_service` and
/// `transact_raw` hand the shared core the same shape.
struct DispatchRequest<'a> {
    caller: Uid,
    caller_pid: Pid,
    service: &'a str,
    method: &'a str,
    mspec: &'a MethodSpec,
    host: Pid,
    parcel: &'a mut Parcel,
    sent_at: SimTime,
    via_helper: bool,
    path_variant: u8,
}

/// The simulated device.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct System {
    clock: SimClock,
    trace: TraceSink,
    rng: SimRng,
    driver: BinderDriver,
    service_manager: ServiceManager,
    spec: Rc<AospSpec>,
    processes: ProcessTable,
    system_server: Pid,
    services: BTreeMap<String, ServiceState>,
    apps: BTreeMap<Uid, InstalledApp>,
    next_uid: u32,
    helper_counts: BTreeMap<(Uid, String, String), u32>,
    config: SystemConfig,
    soft_reboots: u32,
    jgr_observers: Vec<Rc<dyn JgrObserver>>,
    faults: FaultLayer,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("services", &self.services.len())
            .field("apps", &self.apps.len())
            .field("soft_reboots", &self.soft_reboots)
            .field("now", &self.clock.now())
            .finish()
    }
}

impl System {
    /// Boots a device with the default configuration and the given seed.
    pub fn boot(seed: u64) -> Self {
        Self::boot_with(SystemConfig {
            seed,
            ..SystemConfig::default()
        })
    }

    /// Boots a device with explicit configuration.
    pub fn boot_with(config: SystemConfig) -> Self {
        Self::boot_with_spec(config, Rc::new(AospSpec::android_6_0_1()))
    }

    /// Boots a device from an already-synthesized (possibly shared) spec.
    ///
    /// Fleet campaigns boot the same Android image thousands of times per
    /// worker; sharing one immutable [`AospSpec`] across those boots
    /// removes the per-device synthesis cost without changing a single
    /// observable behaviour (the spec is read-only after boot).
    pub fn boot_with_spec(config: SystemConfig, spec: Rc<AospSpec>) -> Self {
        let clock = SimClock::new();
        let trace = if config.tracing {
            TraceSink::new()
        } else {
            TraceSink::disabled()
        };
        let mut driver = BinderDriver::new(clock.clone(), trace.clone());
        // The fault layer draws from its own stream (decorrelated from the
        // workload RNG inside FaultLayer::new) so enabling faults never
        // shifts benign call timings.
        let faults = FaultLayer::new(config.faults, config.seed);
        driver.set_fault_layer(faults.clone());
        let mut system = Self {
            rng: SimRng::seed(config.seed),
            clock: clock.clone(),
            trace: trace.clone(),
            driver,
            service_manager: ServiceManager::new(),
            spec,
            processes: ProcessTable::new(clock, trace),
            system_server: Pid::new(0), // replaced below
            services: BTreeMap::new(),
            apps: BTreeMap::new(),
            next_uid: Uid::FIRST_APPLICATION.raw(),
            helper_counts: BTreeMap::new(),
            config,
            soft_reboots: 0,
            jgr_observers: Vec::new(),
            faults,
        };
        system.start_system_server();
        system.start_prebuilt_services();
        system
    }

    fn make_runtime_capacity(&self) -> Option<usize> {
        self.config.jgr_capacity
    }

    fn start_system_server(&mut self) {
        let pid = self
            .processes
            .spawn(Uid::SYSTEM, "system_server", OOM_SCORE_FOREGROUND - 900);
        if let Some(cap) = self.make_runtime_capacity() {
            let p = self.processes.get_mut(pid).expect("just spawned");
            p.runtime = jgre_art::Runtime::with_global_capacity(
                pid,
                self.clock.clone(),
                self.trace.clone(),
                cap,
            );
        }
        for obs in &self.jgr_observers {
            self.processes
                .get_mut(pid)
                .expect("just spawned")
                .runtime
                .register_observer(obs.clone());
        }
        self.system_server = pid;
        // The framework's own standing references: allocated once at boot
        // and never released (they belong to system components, not apps).
        for i in 0..self.config.stock_jgr {
            let p = self.processes.get_mut(pid).expect("just spawned");
            let obj = p.runtime.alloc(format!("framework.internal.Callback{i}"));
            p.runtime
                .add_global(obj)
                .expect("stock references fit any sane capacity");
        }
        // Register every system service. Java services share the
        // system_server runtime; the 5 native services have no ART runtime
        // (JGRE does not apply to them) but still appear in the directory.
        let specs: Vec<_> = self.spec.services.clone();
        for svc in specs {
            let node = self.driver.create_node(pid, svc.name.clone());
            self.service_manager
                .add_service(svc.name.clone(), node)
                .expect("boot registers each service once");
            self.services.insert(
                svc.name.clone(),
                ServiceState {
                    name: svc.name.clone(),
                    interface: svc.interface.clone(),
                    native: svc.native,
                    host: pid,
                    node,
                    methods: svc
                        .methods
                        .iter()
                        .map(|m| (m.name.clone(), m.clone()))
                        .collect(),
                    method_order: svc.methods.iter().map(|m| m.name.clone()).collect(),
                    per_method: BTreeMap::new(),
                },
            );
        }
    }

    /// Launches the prebuilt apps that export IPC services (Bluetooth,
    /// PicoTts) in their own processes.
    fn start_prebuilt_services(&mut self) {
        let apps: Vec<_> = self
            .spec
            .prebuilt_apps
            .iter()
            .filter(|a| !a.services.is_empty())
            .cloned()
            .collect();
        for (i, app) in apps.iter().enumerate() {
            // Prebuilt system apps live below FIRST_APPLICATION_UID.
            let uid = Uid::new(1_100 + i as u32);
            let pid = self
                .processes
                .spawn(uid, &app.package, OOM_SCORE_FOREGROUND);
            if let Some(cap) = self.make_runtime_capacity() {
                let p = self.processes.get_mut(pid).expect("just spawned");
                p.runtime = jgre_art::Runtime::with_global_capacity(
                    pid,
                    self.clock.clone(),
                    self.trace.clone(),
                    cap,
                );
            }
            for obs in &self.jgr_observers {
                self.processes
                    .get_mut(pid)
                    .expect("just spawned")
                    .runtime
                    .register_observer(obs.clone());
            }
            for svc in &app.services {
                let node = self.driver.create_node(pid, svc.name.clone());
                self.service_manager
                    .add_service(svc.name.clone(), node)
                    .expect("prebuilt service names are unique");
                self.services.insert(
                    svc.name.clone(),
                    ServiceState {
                        name: svc.name.clone(),
                        interface: svc.interface.clone(),
                        native: false,
                        host: pid,
                        node,
                        methods: svc
                            .methods
                            .iter()
                            .map(|m| (m.name.clone(), m.clone()))
                            .collect(),
                        method_order: svc.methods.iter().map(|m| m.name.clone()).collect(),
                        per_method: BTreeMap::new(),
                    },
                );
            }
        }
    }

    // -- accessors ---------------------------------------------------------

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The trace sink (enabled only when `SystemConfig::tracing`).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The fault layer the device was booted with (inactive by default).
    /// The defense monitor shares this handle so IPC-log and JGR-log
    /// faults come from one reproducible stream.
    pub fn faults(&self) -> &FaultLayer {
        &self.faults
    }

    /// The Binder driver — the defense reads its transaction log.
    pub fn driver(&self) -> &BinderDriver {
        &self.driver
    }

    /// Mutable driver access (latency model, log pruning).
    pub fn driver_mut(&mut self) -> &mut BinderDriver {
        &mut self.driver
    }

    /// The ground-truth spec the device was booted from.
    pub fn spec(&self) -> &AospSpec {
        &self.spec
    }

    /// A shareable handle to the spec, for booting further devices from
    /// the same image without re-synthesizing it.
    pub fn spec_shared(&self) -> Rc<AospSpec> {
        Rc::clone(&self.spec)
    }

    /// `system_server`'s pid.
    pub fn system_server_pid(&self) -> Pid {
        self.system_server
    }

    /// Size of `system_server`'s JGR table — Figure 4's left Y axis.
    pub fn system_server_jgr_count(&self) -> usize {
        self.processes
            .get(self.system_server)
            .map(|p| p.runtime.global_count())
            .unwrap_or(0)
    }

    /// JGR table size of an arbitrary process.
    pub fn jgr_count(&self, pid: Pid) -> Option<usize> {
        self.processes.get(pid).map(|p| p.runtime.global_count())
    }

    /// JGR table capacity of a process (51200 unless overridden).
    pub fn jgr_capacity(&self, pid: Pid) -> Option<usize> {
        self.processes.get(pid).map(|p| p.runtime.global_capacity())
    }

    /// Live heap object count of a process (leak diagnostics).
    pub fn heap_live(&self, pid: Pid) -> Option<usize> {
        self.processes.get(pid).map(|p| p.runtime.heap_live())
    }

    /// Times the device soft-rebooted because `system_server` aborted.
    pub fn soft_reboots(&self) -> u32 {
        self.soft_reboots
    }

    /// Total running processes — Figure 4's right Y axis: the ~382 stock
    /// processes plus every live entry in the process table beyond the
    /// boot set (system_server and the prebuilt service apps are part of
    /// the stock count).
    pub fn process_count(&self) -> usize {
        let boot_processes = 1 + self
            .spec
            .prebuilt_apps
            .iter()
            .filter(|a| !a.services.is_empty())
            .count();
        STOCK_PROCESS_COUNT + self.processes.len().saturating_sub(boot_processes)
    }

    /// Number of live third-party app processes.
    pub fn running_app_count(&self) -> usize {
        self.processes.iter().filter(|p| p.uid.is_app()).count()
    }

    /// Info about a registered service.
    pub fn service_info(&self, name: &str) -> Option<ServiceInfo> {
        self.services.get(name).map(|s| ServiceInfo {
            name: s.name.clone(),
            interface: s.interface.clone(),
            host: s.host,
            native: s.native,
        })
    }

    /// Names of every registered service (104 at boot, plus the app
    /// services).
    pub fn service_names(&self) -> Vec<String> {
        self.services.keys().cloned().collect()
    }

    /// The raw transaction code of `method` on `service` — the inverse of
    /// the [`transact_raw`](Self::transact_raw) code mapping. `None` if
    /// the service or method is unknown.
    pub fn transaction_code(&self, service: &str, method: &str) -> Option<u32> {
        let svc = self.services.get(service)?;
        svc.method_order
            .iter()
            .position(|m| m == method)
            .map(|i| i as u32 + FIRST_CALL_TRANSACTION)
    }

    /// The method a raw transaction code addresses on `service`, or `None`
    /// if the code falls outside the method table (such a code dispatches
    /// as [`CallReject::UnknownCode`]).
    pub fn method_for_code(&self, service: &str, code: u32) -> Option<&str> {
        let svc = self.services.get(service)?;
        let idx = code.checked_sub(FIRST_CALL_TRANSACTION)? as usize;
        svc.method_order.get(idx).map(String::as_str)
    }

    /// How many IPC methods `service` exposes; valid raw transaction codes
    /// run `FIRST_CALL_TRANSACTION ..= FIRST_CALL_TRANSACTION + count - 1`.
    pub fn method_count(&self, service: &str) -> Option<usize> {
        self.services.get(service).map(|s| s.method_order.len())
    }

    /// Creates a fresh live Binder node owned by `caller`'s process — what
    /// a client does before writing a strong binder into a parcel by hand
    /// (e.g. a fuzzer building a well-formed raw transaction). Launches
    /// the app's process if needed.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::UnknownApp`] if `caller` is not installed, or a
    /// launch failure.
    pub fn create_callback_node(
        &mut self,
        caller: Uid,
    ) -> Result<jgre_binder::NodeId, FrameworkError> {
        if !self.apps.contains_key(&caller) {
            return Err(FrameworkError::UnknownApp);
        }
        let pid = match self.apps[&caller].pid {
            Some(pid) if self.processes.is_healthy(pid) => pid,
            _ => self.launch_app(caller)?,
        };
        Ok(self.driver.create_node(pid, format!("{caller}-cb")))
    }

    /// Per-reason counts of fail-stop rejections folded into the driver's
    /// transaction ledger (see [`CallReject::reason`] for the keys).
    pub fn reject_counts(&self) -> &BTreeMap<&'static str, u64> {
        self.driver.reject_counts()
    }

    /// Registers an observer for JGR traffic on every current and future
    /// runtime (survives soft reboots).
    pub fn register_jgr_observer(&mut self, observer: Rc<dyn JgrObserver>) {
        for p in self.processes.iter_mut() {
            p.runtime.register_observer(observer.clone());
        }
        self.jgr_observers.push(observer);
    }

    /// Drops every registered JGR observer from every runtime — the
    /// observing process (the defender) died, and a dead process cannot
    /// receive events. Its supervised successor re-registers a fresh
    /// monitor after recovery.
    pub fn clear_jgr_observers(&mut self) {
        for p in self.processes.iter_mut() {
            p.runtime.clear_observers();
        }
        self.jgr_observers.clear();
    }

    // -- app management ----------------------------------------------------

    /// Installs a third-party app with the given granted permissions.
    /// The app gets a uid but no process until it first calls something.
    pub fn install_app(
        &mut self,
        package: impl Into<String>,
        granted: impl IntoIterator<Item = Permission>,
    ) -> Uid {
        let uid = Uid::new(self.next_uid);
        self.next_uid += 1;
        self.apps.insert(
            uid,
            InstalledApp {
                package: package.into(),
                granted: granted.into_iter().collect(),
                pid: None,
            },
        );
        uid
    }

    /// Grants an additional permission post-install.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::UnknownApp`] for unknown uids.
    pub fn grant_permission(&mut self, uid: Uid, p: Permission) -> Result<(), FrameworkError> {
        self.apps
            .get_mut(&uid)
            .ok_or(FrameworkError::UnknownApp)?
            .granted
            .insert(p);
        Ok(())
    }

    /// Package name of an installed app.
    pub fn package_of(&self, uid: Uid) -> Option<&str> {
        self.apps.get(&uid).map(|a| a.package.as_str())
    }

    /// The app's live pid, if it is running.
    pub fn pid_of(&self, uid: Uid) -> Option<Pid> {
        self.apps.get(&uid).and_then(|a| a.pid)
    }

    /// Brings the app to the foreground, starting its process if needed.
    /// May evict a cached background app through the LMK.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::UnknownApp`] for unknown uids.
    pub fn launch_app(&mut self, uid: Uid) -> Result<Pid, FrameworkError> {
        let app = self.apps.get(&uid).ok_or(FrameworkError::UnknownApp)?;
        if let Some(pid) = app.pid {
            if self.processes.is_healthy(pid) {
                // Foreground it.
                for p in self.processes.iter_mut() {
                    if p.uid.is_app() {
                        p.oom_score_adj = if p.pid == pid {
                            OOM_SCORE_FOREGROUND
                        } else {
                            OOM_SCORE_BACKGROUND
                        };
                    }
                }
                let now = self.clock.now();
                if let Some(p) = self.processes.get_mut(pid) {
                    p.last_foreground = now;
                }
                return Ok(pid);
            }
        }
        // LMK: evict if at the cap.
        while self.running_app_count() >= self.config.lmk.max_user_apps {
            let candidates: Vec<LmkCandidate> = self
                .processes
                .iter()
                .filter(|p| p.uid.is_app())
                .map(|p| LmkCandidate {
                    pid: p.pid,
                    oom_score_adj: p.oom_score_adj,
                    last_foreground: p.last_foreground,
                })
                .collect();
            match select_lmk_victim(&candidates) {
                Some(victim) => {
                    let uid = self.processes.get(victim).map(|p| p.uid);
                    if let Some(victim_uid) = uid {
                        // LMK is a kernel SIGKILL: infallible even under
                        // fault injection, so this loop always drains.
                        self.force_kill_app(victim_uid);
                    } else {
                        break;
                    }
                }
                None => break,
            }
        }
        let package = self.apps[&uid].package.clone();
        let pid = self.processes.spawn(uid, &package, OOM_SCORE_FOREGROUND);
        if let Some(cap) = self.make_runtime_capacity() {
            let p = self.processes.get_mut(pid).expect("just spawned");
            p.runtime = jgre_art::Runtime::with_global_capacity(
                pid,
                self.clock.clone(),
                self.trace.clone(),
                cap,
            );
        }
        for obs in &self.jgr_observers {
            self.processes
                .get_mut(pid)
                .expect("just spawned")
                .runtime
                .register_observer(obs.clone());
        }
        for p in self.processes.iter_mut() {
            if p.uid.is_app() && p.pid != pid {
                p.oom_score_adj = OOM_SCORE_BACKGROUND;
            }
        }
        self.apps
            .get_mut(&uid)
            .ok_or(FrameworkError::UnknownApp)?
            .pid = Some(pid);
        Ok(pid)
    }

    /// Kills an app's process the way the defender does (`am force-stop`):
    /// its binder nodes die, every service releases the entries it
    /// retained for the app, and each affected host runs a GC so the JGR
    /// entries actually return — *"when one process is terminated, its
    /// corresponding JGR entries will be released"*.
    ///
    /// Under fault injection the kill may [fail](KillOutcome::Failed) or
    /// the app may [respawn](KillOutcome::Respawned); callers that must
    /// reclaim the entries have to check the outcome and retry.
    pub fn kill_app(&mut self, uid: Uid) -> KillOutcome {
        let Some(pid) = self.apps.get(&uid).and_then(|a| a.pid) else {
            return KillOutcome::NotRunning;
        };
        if self.faults.kill_fails() {
            self.trace.record(
                self.clock.now(),
                Some(pid),
                Some(uid),
                "system.kill_failed",
                "injected fault: force-stop did not land",
            );
            return KillOutcome::Failed;
        }
        self.kill_pid(uid, pid);
        if self.faults.kill_respawns() {
            self.respawn_app(uid);
            self.trace.record(
                self.clock.now(),
                None,
                Some(uid),
                "system.kill_respawned",
                "injected fault: killed app restarted",
            );
            return KillOutcome::Respawned;
        }
        KillOutcome::Killed
    }

    /// The kernel path (LMK / uninstall): a SIGKILL that cannot fail and
    /// after which nothing restarts the app. Fault injection only models
    /// `am force-stop` flakiness, so this stays infallible — which also
    /// keeps the LMK eviction loop in [`launch_app`](Self::launch_app)
    /// guaranteed to terminate.
    fn force_kill_app(&mut self, uid: Uid) {
        if let Some(pid) = self.apps.get(&uid).and_then(|a| a.pid) {
            self.kill_pid(uid, pid);
        }
    }

    /// Respawns a just-killed app as a fresh background process (sticky
    /// services / sync adapters bringing it straight back).
    fn respawn_app(&mut self, uid: Uid) {
        let Some(package) = self.apps.get(&uid).map(|a| a.package.clone()) else {
            return;
        };
        let pid = self.processes.spawn(uid, &package, OOM_SCORE_BACKGROUND);
        if let Some(cap) = self.make_runtime_capacity() {
            if let Some(p) = self.processes.get_mut(pid) {
                p.runtime = jgre_art::Runtime::with_global_capacity(
                    pid,
                    self.clock.clone(),
                    self.trace.clone(),
                    cap,
                );
            }
        }
        for obs in &self.jgr_observers {
            if let Some(p) = self.processes.get_mut(pid) {
                p.runtime.register_observer(obs.clone());
            }
        }
        if let Some(app) = self.apps.get_mut(&uid) {
            app.pid = Some(pid);
        }
    }

    fn kill_pid(&mut self, uid: Uid, pid: Pid) {
        self.processes.kill(pid);
        let _notifications = self.driver.kill_process(pid);
        if let Some(app) = self.apps.get_mut(&uid) {
            app.pid = None;
        }
        // Release retained entries and note which hosts to collect.
        let mut affected_hosts = BTreeSet::new();
        for svc in self.services.values_mut() {
            for state in svc.per_method.values_mut() {
                if let Some(entries) = state.retained.remove(&pid) {
                    state.total_retained = state.total_retained.saturating_sub(entries.len());
                    if let Some(host) = self.processes.get_mut(svc.host) {
                        for rb in entries {
                            // The proxy may already be stale after a host
                            // reboot; release is best-effort, as in Android.
                            let _ = host.runtime.release(rb.proxy);
                        }
                        affected_hosts.insert(svc.host);
                    }
                }
                if let Some(rb) = state.single.remove(&pid) {
                    if let Some(host) = self.processes.get_mut(svc.host) {
                        let _ = host.runtime.release(rb.proxy);
                        affected_hosts.insert(svc.host);
                    }
                }
            }
        }
        // Drop helper bookkeeping for the dead app.
        self.helper_counts.retain(|(u, _, _), _| *u != uid);
        for host in affected_hosts {
            if let Some(p) = self.processes.get_mut(host) {
                p.runtime.collect_garbage();
            }
        }
    }

    /// Models a burst of framework-internal activity: system components
    /// exchanging binders among themselves create `count` transient
    /// global references in `system_server` that the next collection
    /// returns. This is what makes the idle device's JGR table *wobble*
    /// inside Figure 4's 1000–3000 band rather than sit flat on the
    /// stock floor.
    pub fn framework_activity(&mut self, count: usize) {
        let ss = self.system_server;
        if let Some(p) = self.processes.get_mut(ss) {
            for _ in 0..count {
                // Unretained: the proxy's finalizer releases the reference
                // at the next GC.
                let _ = materialize_strong_binder(&mut p.runtime, jgre_binder::NodeId::new(0));
            }
        }
    }

    /// Uninstalls an app: kills its process (releasing every JGR entry it
    /// pinned, as [`kill_app`](Self::kill_app) does) and removes the
    /// installation record; the uid is never reused. Uninstall uses the
    /// kernel kill path, so injected `am force-stop` faults cannot leave a
    /// ghost process behind.
    pub fn uninstall_app(&mut self, uid: Uid) {
        self.force_kill_app(uid);
        self.apps.remove(&uid);
    }

    /// Runs a garbage collection on a process (the DDMS trigger of the
    /// paper's dynamic verification).
    pub fn gc_process(&mut self, pid: Pid) {
        if let Some(p) = self.processes.get_mut(pid) {
            p.runtime.collect_garbage();
        }
    }

    // -- the IPC path ------------------------------------------------------

    /// Dispatches one IPC call from `caller` to `service.method`.
    ///
    /// This is the full pipeline the paper instruments: permission check →
    /// (optional) helper threshold → Binder transaction (logged by the
    /// driver, latency applied) → server-side limit → handler execution
    /// (cost grows with retained entries) → JGR creation after the
    /// interface's `Delay` → retention per the handler's behaviour →
    /// abort/soft-reboot when the 51200 cap blows.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::UnknownApp`] / [`UnknownService`] /
    /// [`UnknownMethod`] for bad addressing,
    /// [`PermissionDenied`] when the caller lacks the method's permission,
    /// [`HelperLimitExceeded`] when called `via_helper` beyond the helper's
    /// threshold, [`ServiceDead`] / [`Binder`] for dead targets.
    ///
    /// [`UnknownService`]: FrameworkError::UnknownService
    /// [`UnknownMethod`]: FrameworkError::UnknownMethod
    /// [`PermissionDenied`]: FrameworkError::PermissionDenied
    /// [`HelperLimitExceeded`]: FrameworkError::HelperLimitExceeded
    /// [`ServiceDead`]: FrameworkError::ServiceDead
    /// [`Binder`]: FrameworkError::Binder
    pub fn call_service(
        &mut self,
        caller: Uid,
        service: &str,
        method: &str,
        options: CallOptions,
    ) -> Result<CallOutcome, FrameworkError> {
        // 1. Resolve the caller and make sure it has a process.
        if !self.apps.contains_key(&caller) {
            return Err(FrameworkError::UnknownApp);
        }
        let caller_pid = match self.apps[&caller].pid {
            Some(pid) if self.processes.is_healthy(pid) => pid,
            _ => self.launch_app(caller)?,
        };

        // 2. Resolve the service and method.
        let (mspec, node, host, iface) = {
            let svc = self
                .services
                .get(service)
                .ok_or_else(|| FrameworkError::UnknownService(service.to_owned()))?;
            let mspec = svc
                .methods
                .get(method)
                .ok_or_else(|| FrameworkError::UnknownMethod {
                    service: service.to_owned(),
                    method: method.to_owned(),
                })?
                .clone();
            (mspec, svc.node, svc.host, svc.interface.clone())
        };
        if !self.processes.is_healthy(host) {
            return Err(FrameworkError::ServiceDead);
        }

        // 3. Permission check at the Binder boundary.
        if let Some(p) = mspec.permission {
            let allowed = match p.level() {
                ProtectionLevel::Signature => !caller.is_app(),
                _ => self.apps[&caller].granted.contains(&p),
            };
            if !allowed {
                return Err(FrameworkError::PermissionDenied { permission: p });
            }
        }

        // 4. Helper threshold (client-side; only honoured when the caller
        //    routes through the documented API).
        if options.via_helper {
            if let Protection::HelperThreshold {
                helper_class,
                limit,
            } = &mspec.protection
            {
                let key = (caller, service.to_owned(), method.to_owned());
                let count = self.helper_counts.get(&key).copied().unwrap_or(0);
                if count >= *limit {
                    return Err(FrameworkError::HelperLimitExceeded {
                        helper: helper_class.clone(),
                        limit: *limit,
                    });
                }
            }
        }

        // 5. Marshal and send the transaction.
        let package = if options.spoof_system_package {
            "android".to_owned()
        } else {
            self.apps[&caller].package.clone()
        };
        let mut parcel = Parcel::new();
        parcel.write_string(package);
        let passes_binder = matches!(
            mspec.jgr,
            JgrBehavior::RetainPerCall { .. } | JgrBehavior::Transient | JgrBehavior::ReplaceSingle
        );
        if passes_binder {
            let cb = self.driver.create_node(caller_pid, format!("{caller}-cb"));
            parcel.write_strong_binder(cb);
        }
        if options.payload_extra_bytes > 0 {
            parcel.write_blob(options.payload_extra_bytes);
        }
        let record = self.driver.record_transaction_on_path(
            caller_pid,
            caller,
            node,
            &iface,
            method,
            &parcel,
            options.path_variant,
        )?;
        let sent_at = record.at;

        // 6-7. Server side: unmarshal and run the handler. The framework
        // marshalled the parcel above so every read succeeds; `transact_raw`
        // feeds the same core arbitrary parcels and exercises the typed
        // rejections instead.
        self.dispatch_parcel(DispatchRequest {
            caller,
            caller_pid,
            service,
            method,
            mspec: &mspec,
            host,
            parcel: &mut parcel,
            sent_at,
            via_helper: options.via_helper,
            path_variant: options.path_variant,
        })
    }

    /// Dispatches one **raw** Binder transaction, the attacker-grade entry
    /// point `jgre fuzz` drives: `code` addresses the method positionally
    /// (`FIRST_CALL_TRANSACTION + index` in AIDL declaration order) and
    /// `parcel` is delivered to the server exactly as provided — no
    /// framework marshalling, no helper-class mediation. Whatever shape the
    /// parcel claims is what the server-side unmarshalling must survive:
    /// every malformed input (unknown code, wrong arity, type-confused
    /// read, stale/foreign binder, oversized blob, truncated payload) is a
    /// typed [`CallStatus::Rejected`] outcome counted per reason in the
    /// driver's ledger — never a panic, never an abort.
    ///
    /// The permission check still runs (it is enforced server-side at the
    /// Binder boundary; raw transactions cannot skip it), and a read
    /// failure leaves the parcel cursor exactly at the failing position
    /// (see `Parcel`'s cursor determinism contract), so a replayed fuzz
    /// input is byte-stable.
    ///
    /// # Errors
    ///
    /// Addressing errors that in Android would fail before reaching the
    /// server surface as [`FrameworkError`]s, exactly as in
    /// [`call_service`](Self::call_service): `UnknownApp`,
    /// `UnknownService`, `ServiceDead`, `PermissionDenied`, `Binder`.
    pub fn transact_raw(
        &mut self,
        caller: Uid,
        service: &str,
        code: u32,
        parcel: &mut Parcel,
    ) -> Result<CallOutcome, FrameworkError> {
        if !self.apps.contains_key(&caller) {
            return Err(FrameworkError::UnknownApp);
        }
        let caller_pid = match self.apps[&caller].pid {
            Some(pid) if self.processes.is_healthy(pid) => pid,
            _ => self.launch_app(caller)?,
        };
        let (node, host, iface, method) = {
            let svc = self
                .services
                .get(service)
                .ok_or_else(|| FrameworkError::UnknownService(service.to_owned()))?;
            let method = code
                .checked_sub(FIRST_CALL_TRANSACTION)
                .and_then(|i| svc.method_order.get(i as usize))
                .cloned();
            (svc.node, svc.host, svc.interface.clone(), method)
        };
        if !self.processes.is_healthy(host) {
            return Err(FrameworkError::ServiceDead);
        }
        let Some(method) = method else {
            // Unknown transaction code: the kernel cannot know the code is
            // bad, so the driver still routes and logs the transaction;
            // the server's `onTransact` then returns false.
            let label = format!("#{code}");
            let sent_at = match self
                .driver
                .record_transaction_on_path(caller_pid, caller, node, &iface, &label, parcel, 0)
            {
                Ok(record) => record.at,
                Err(BinderError::TransactionTooLarge { .. }) => {
                    // The driver already counted "oversized-payload".
                    let at = self.clock.now();
                    return Ok(self.rejected_outcome(host, at, CallReject::OversizedPayload));
                }
                Err(e) => return Err(FrameworkError::Binder(e)),
            };
            return Ok(self.reject_call(host, sent_at, CallReject::UnknownCode));
        };
        let mspec = self.services[service].methods[&method].clone();

        // Permission check at the Binder boundary (server-side; raw
        // transactions cannot skip it).
        if let Some(p) = mspec.permission {
            let allowed = match p.level() {
                ProtectionLevel::Signature => !caller.is_app(),
                _ => self.apps[&caller].granted.contains(&p),
            };
            if !allowed {
                return Err(FrameworkError::PermissionDenied { permission: p });
            }
        }

        let sent_at = match self
            .driver
            .record_transaction_on_path(caller_pid, caller, node, &iface, &method, parcel, 0)
        {
            Ok(record) => record.at,
            Err(BinderError::TransactionTooLarge { .. }) => {
                // The driver already counted "oversized-payload".
                let at = self.clock.now();
                return Ok(self.rejected_outcome(host, at, CallReject::OversizedPayload));
            }
            Err(e) => return Err(FrameworkError::Binder(e)),
        };
        self.dispatch_parcel(DispatchRequest {
            caller,
            caller_pid,
            service,
            method: &method,
            mspec: &mspec,
            host,
            parcel,
            sent_at,
            via_helper: false,
            path_variant: 0,
        })
    }

    /// Fail-stop rejection of a malformed transaction: counts the reason
    /// in the driver's ledger, then charges the short bail-out cost.
    fn reject_call(&mut self, host: Pid, sent_at: SimTime, reject: CallReject) -> CallOutcome {
        self.driver.note_reject(reject.reason());
        self.rejected_outcome(host, sent_at, reject)
    }

    /// The rejected [`CallOutcome`] shape shared by every fail-stop path:
    /// a short constant cost (the server bails out before the handler
    /// body), no JGR effect, no abort.
    fn rejected_outcome(&mut self, host: Pid, sent_at: SimTime, reject: CallReject) -> CallOutcome {
        let cost = SimDuration::from_micros(self.rng.jitter(150, 50));
        self.clock.advance(cost);
        CallOutcome {
            status: CallStatus::Rejected(reject),
            sent_at,
            exec_time: cost,
            jgr_created: 0,
            host_jgr_count: self.jgr_count(host).unwrap_or(0),
            host_aborted: false,
        }
    }

    /// The server-side dispatch core shared by [`call_service`] and
    /// [`transact_raw`]: unmarshals the parcel with `Parcel::read_*`
    /// (every failure a typed [`CallReject`], never a panic), applies the
    /// per-process limit, and runs the handler.
    ///
    /// [`call_service`]: Self::call_service
    /// [`transact_raw`]: Self::transact_raw
    fn dispatch_parcel(&mut self, req: DispatchRequest<'_>) -> Result<CallOutcome, FrameworkError> {
        let DispatchRequest {
            caller,
            caller_pid,
            service,
            method,
            mspec,
            host,
            parcel,
            sent_at,
            via_helper,
            path_variant,
        } = req;

        // Server-side unmarshal. The wire format is: calling package
        // (string), then — for methods that take a client callback — a
        // strong binder, then an optional trailing payload blob. Anything
        // that deviates is rejected fail-stop with a typed reason before
        // any bookkeeping mutates, so malformed traffic has no JGR effect
        // and cannot abort the host.
        parcel.rewind();
        let package = match parcel.read_string() {
            Ok(p) => p,
            Err(e) => {
                return Ok(self.reject_call(host, sent_at, CallReject::from_parcel_error(&e)))
            }
        };
        let passes_binder = matches!(
            mspec.jgr,
            JgrBehavior::RetainPerCall { .. } | JgrBehavior::Transient | JgrBehavior::ReplaceSingle
        );
        let callback_node = if passes_binder {
            match parcel.read_strong_binder() {
                Ok(cb) if self.driver.is_alive(cb) => Some(cb),
                // A dead or never-created node: linking a death recipient
                // to it would fail, so the server refuses the callback.
                Ok(_) => return Ok(self.reject_call(host, sent_at, CallReject::StaleBinder)),
                Err(e) => {
                    return Ok(self.reject_call(host, sent_at, CallReject::from_parcel_error(&e)))
                }
            }
        } else {
            None
        };
        // Optional trailing payload padding; further trailing values are
        // ignored, as android.os.Parcel ignores unread data.
        if parcel.peek_type() == Some("blob") {
            let _ = parcel.read_blob();
        }

        // 6. Server-side per-process limit (Table III).
        let total_retained = {
            let svc = self
                .services
                .get_mut(service)
                .ok_or_else(|| FrameworkError::UnknownService(service.to_owned()))?;
            let state = svc.per_method.entry(method.to_owned()).or_default();
            state.calls += 1;
            state.total_retained
        };
        if let Protection::PerProcessLimit { limit, flaw } = &mspec.protection {
            let spoofed = *flaw == Some(Flaw::SystemPackageSpoof) && package == "android";
            if !spoofed {
                let svc = self
                    .services
                    .get(service)
                    .ok_or_else(|| FrameworkError::UnknownService(service.to_owned()))?;
                let count = svc
                    .per_method
                    .get(method)
                    .and_then(|s| s.retained.get(&caller_pid))
                    .map(|v| v.len())
                    .unwrap_or(0);
                if count >= *limit as usize {
                    // Rejected: a short constant cost, no JGR (the
                    // handler frame is never entered on this path).
                    let cost = SimDuration::from_micros(self.rng.jitter(150, 50));
                    self.clock.advance(cost);
                    return Ok(CallOutcome {
                        status: CallStatus::RejectedByServerLimit,
                        sent_at,
                        exec_time: cost,
                        jgr_created: 0,
                        host_jgr_count: self.jgr_count(host).unwrap_or(0),
                        host_aborted: false,
                    });
                }
            }
        }

        // 7. Execute the handler on a Binder thread: entering the native
        //    side pushes a JNI local-reference frame; the unmarshalled
        //    parcel objects live in it and die when the method returns —
        //    the "automatically freed" half of §II-A.
        let handler_frame = self.enter_handler_frame(host);
        let jitter = if mspec.cost.jitter_us == 0 {
            0
        } else {
            self.rng.range(0..=mspec.cost.jitter_us)
        };
        let nominal = mspec.cost.expected_us(total_retained) + jitter;
        let delta = if mspec.cost.jitter_us == 0 {
            0
        } else {
            self.rng.range(0..=mspec.cost.jitter_us)
        };
        // The JGR entry is created Delay+Δ into the handler; for the few
        // interfaces whose registration machinery is slower than the
        // handler itself (large `delay_us`), creation lands right at the
        // end of the call — the defender still observes a long
        // IPC-to-JGR latency for them (§V-D.1's slow detections). The
        // `-1 µs` keeps the creation strictly inside the handler so it can
        // never share a timestamp with the caller's *next* transaction.
        // Alternate execution paths (§VI) run different code before the
        // registration, shifting the path's Delay constant.
        let path_delay = mspec.cost.delay_us + path_variant as u64 * 2_500;
        let pre_jgr = (path_delay + delta).min(nominal.saturating_sub(1));
        self.clock.advance(SimDuration::from_micros(pre_jgr));

        let mut jgr_created = 0usize;
        let mut host_aborted = false;
        match mspec.jgr {
            JgrBehavior::RetainPerCall { grefs_per_call } => {
                // The unmarshal step rejected any parcel without a live
                // binder, so the node is present here; the `else` is a
                // typed fail-stop backstop (it replaces an `expect`), so
                // no dispatch path can panic the simulator.
                let Some(node) = callback_node else {
                    self.exit_handler_frame(host, handler_frame);
                    return Ok(self.reject_call(host, sent_at, CallReject::MissingBinder));
                };
                for _ in 0..grefs_per_call.max(1) {
                    match self.materialize_and_retain(service, method, caller_pid, host, node) {
                        Ok(()) => jgr_created += 1,
                        Err(ArtError::TableOverflow { .. }) => {
                            host_aborted = true;
                            break;
                        }
                        Err(ArtError::RuntimeAborted) => {
                            host_aborted = true;
                            break;
                        }
                        Err(e) => return Err(FrameworkError::Art(e)),
                    }
                }
            }
            JgrBehavior::Transient => match self.materialize_transient(host) {
                Ok(()) => jgr_created += 1,
                Err(ArtError::TableOverflow { .. }) | Err(ArtError::RuntimeAborted) => {
                    host_aborted = true;
                }
                Err(e) => return Err(FrameworkError::Art(e)),
            },
            JgrBehavior::ReplaceSingle => {
                match self.materialize_replace_single(service, method, caller_pid, host) {
                    Ok(()) => jgr_created += 1,
                    Err(ArtError::TableOverflow { .. }) | Err(ArtError::RuntimeAborted) => {
                        host_aborted = true;
                    }
                    Err(e) => return Err(FrameworkError::Art(e)),
                }
            }
            JgrBehavior::ThreadCreateOnly => {
                // Thread::CreateNativeThread adds and immediately releases.
                if let Some(p) = self.processes.get_mut(host) {
                    let obj = p.runtime.alloc("java.lang.Thread");
                    match p.runtime.add_global(obj) {
                        Ok(iref) => {
                            jgr_created += 1;
                            if p.runtime.delete_global(iref).is_err() {
                                // Losing the paired delete on an aborting
                                // runtime is survivable; the table dies
                                // with the process anyway.
                                host_aborted = true;
                            }
                        }
                        Err(ArtError::TableOverflow { .. }) | Err(ArtError::RuntimeAborted) => {
                            host_aborted = true;
                        }
                        Err(e) => return Err(FrameworkError::Art(e)),
                    }
                }
            }
            JgrBehavior::NoJgr => {}
        }

        // Remainder of the handler's execution time.
        self.clock
            .advance(SimDuration::from_micros(nominal.saturating_sub(pre_jgr)));

        if via_helper {
            if let Protection::HelperThreshold { .. } = &mspec.protection {
                *self
                    .helper_counts
                    .entry((caller, service.to_owned(), method.to_owned()))
                    .or_insert(0) += 1;
            }
        }

        self.exit_handler_frame(host, handler_frame);
        let host_jgr_count = self.jgr_count(host).unwrap_or(0);
        if host_aborted {
            self.handle_abort(host);
        }
        Ok(CallOutcome {
            status: CallStatus::Completed,
            sent_at,
            exec_time: SimDuration::from_micros(nominal),
            jgr_created,
            host_jgr_count,
            host_aborted,
        })
    }

    /// Enters a JNI local-reference frame on the host's Binder thread and
    /// creates locals for the unmarshalled call arguments, mirroring what
    /// `onTransact` does on entry. Returns `None` for hosts without a
    /// Java runtime state we can touch (dead process).
    fn enter_handler_frame(&mut self, host: Pid) -> Option<(jgre_art::EnvId, jgre_art::IrtCookie)> {
        let p = self.processes.get_mut(host)?;
        // One Binder thread per host process is enough for a sequential
        // simulation; its tid mirrors the host pid.
        let env = p.runtime.attach_thread(Tid::new(host.raw()));
        let cookie = p.runtime.push_local_frame(env).ok()?;
        // Locals for the parcel and the caller token, alive for the call.
        for class in ["android.os.Parcel", "android.os.Binder$CallerToken"] {
            let obj = p.runtime.alloc(class);
            if p.runtime.add_local(env, obj).is_err() {
                break;
            }
        }
        Some((env, cookie))
    }

    /// Pops the handler's local frame; the locals' objects become garbage
    /// (collected at the next GC), like any local reference after the
    /// native method returns.
    fn exit_handler_frame(
        &mut self,
        host: Pid,
        frame: Option<(jgre_art::EnvId, jgre_art::IrtCookie)>,
    ) {
        let Some((env, cookie)) = frame else { return };
        if let Some(p) = self.processes.get_mut(host) {
            let _ = p.runtime.pop_local_frame(env, cookie);
        }
    }

    fn materialize_and_retain(
        &mut self,
        service: &str,
        method: &str,
        caller_pid: Pid,
        host: Pid,
        node: jgre_binder::NodeId,
    ) -> Result<(), ArtError> {
        let p = self
            .processes
            .get_mut(host)
            .ok_or(ArtError::RuntimeAborted)?;
        let rb = materialize_strong_binder(&mut p.runtime, node)?;
        p.runtime.retain(rb.proxy)?;
        // The service can only vanish mid-call if the host aborted, in
        // which case the retained entry dies with it — dropping the
        // bookkeeping is the graceful path, not a panic.
        let Some(state) = self
            .services
            .get_mut(service)
            .and_then(|svc| svc.per_method.get_mut(method))
        else {
            return Ok(());
        };
        state.retained.entry(caller_pid).or_default().push(rb);
        state.total_retained += 1;
        Ok(())
    }

    fn materialize_transient(&mut self, host: Pid) -> Result<(), ArtError> {
        let p = self
            .processes
            .get_mut(host)
            .ok_or(ArtError::RuntimeAborted)?;
        let node = jgre_binder::NodeId::new(0);
        // Not retained: the next GC's finalizer releases the reference.
        materialize_strong_binder(&mut p.runtime, node).map(|_| ())
    }

    fn materialize_replace_single(
        &mut self,
        service: &str,
        method: &str,
        caller_pid: Pid,
        host: Pid,
    ) -> Result<(), ArtError> {
        let p = self
            .processes
            .get_mut(host)
            .ok_or(ArtError::RuntimeAborted)?;
        let node = jgre_binder::NodeId::new(0);
        let rb = materialize_strong_binder(&mut p.runtime, node)?;
        p.runtime.retain(rb.proxy)?;
        let Some(state) = self
            .services
            .get_mut(service)
            .and_then(|svc| svc.per_method.get_mut(method))
        else {
            return Ok(());
        };
        if let Some(prev) = state.single.insert(caller_pid, rb) {
            // The replaced member's proxy becomes collectable.
            let _ = p.runtime.release(prev.proxy);
        }
        Ok(())
    }

    fn handle_abort(&mut self, host: Pid) {
        if host == self.system_server {
            self.soft_reboot();
        } else {
            // An app process (e.g. Bluetooth) dies alone.
            let uid = self.processes.get(host).map(|p| p.uid);
            self.processes.kill(host);
            self.driver.kill_process(host);
            // Its exported services go dark.
            self.services.retain(|_, s| s.host != host);
            if let Some(uid) = uid {
                if let Some(app) = self.apps.get_mut(&uid) {
                    app.pid = None;
                }
            }
            self.trace.record(
                self.clock.now(),
                Some(host),
                None,
                "system.process_crash",
                "runtime aborted: JGR table overflow",
            );
        }
    }

    /// Tears the device down and boots the framework again after a
    /// `system_server` abort — Android's soft reboot. All app processes
    /// die; installed apps and granted permissions survive.
    fn soft_reboot(&mut self) {
        self.soft_reboots += 1;
        self.trace.record(
            self.clock.now(),
            Some(self.system_server),
            None,
            "system.soft_reboot",
            format!("reboot #{}", self.soft_reboots),
        );
        let all_pids: Vec<Pid> = self.processes.iter().map(|p| p.pid).collect();
        for pid in all_pids {
            self.processes.kill(pid);
            self.driver.kill_process(pid);
        }
        for app in self.apps.values_mut() {
            app.pid = None;
        }
        self.services.clear();
        self.helper_counts.clear();
        // The service manager holds stale nodes; rebuild it.
        self.service_manager = ServiceManager::new();
        // Boot takes ~10 s of virtual time on the paper's hardware class.
        self.clock.advance(SimDuration::from_secs(10));
        self.start_system_server();
        self.start_prebuilt_services();
    }

    /// Delivers a callback to every listener registered on
    /// `service.method` (the service broadcasting a state change to its
    /// `RemoteCallbackList`, e.g. the clipboard notifying
    /// `onPrimaryClipChanged`). Each delivery is a reverse Binder
    /// transaction from the host to the listener's process, logged and
    /// costed like any other. Returns the number delivered.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::UnknownService`] /
    /// [`FrameworkError::UnknownMethod`] for bad addressing.
    ///
    /// [`FrameworkError::UnknownService`]: FrameworkError::UnknownService
    /// [`FrameworkError::UnknownMethod`]: FrameworkError::UnknownMethod
    pub fn fire_service_callbacks(
        &mut self,
        service: &str,
        method: &str,
    ) -> Result<usize, FrameworkError> {
        let svc = self
            .services
            .get(service)
            .ok_or_else(|| FrameworkError::UnknownService(service.to_owned()))?;
        if !svc.methods.contains_key(method) {
            return Err(FrameworkError::UnknownMethod {
                service: service.to_owned(),
                method: method.to_owned(),
            });
        }
        let host = svc.host;
        let iface = svc.interface.clone();
        let targets: Vec<jgre_binder::NodeId> = svc
            .per_method
            .get(method)
            .map(|state| {
                state
                    .retained
                    .values()
                    .flatten()
                    .map(|rb| rb.node)
                    .chain(state.single.values().map(|rb| rb.node))
                    .collect()
            })
            .unwrap_or_default();
        let mut delivered = 0usize;
        for node in targets {
            let mut parcel = Parcel::new();
            parcel.write_string(format!("{method}.callback"));
            // Dead listeners were already released by kill_app's eager
            // cleanup; a racing death is simply skipped, as
            // RemoteCallbackList does.
            if self
                .driver
                .record_transaction(host, Uid::SYSTEM, node, &iface, "onCallback", &parcel)
                .is_ok()
            {
                delivered += 1;
            }
        }
        Ok(delivered)
    }

    /// Renders a `dumpsys`-style diagnostic block for a service: per-method
    /// call counts and retained entries, broken down by calling process —
    /// the view an engineer triaging a JGRE bug report starts from.
    ///
    /// Returns `None` for unregistered services.
    pub fn dumpsys(&self, service: &str) -> Option<String> {
        use std::fmt::Write as _;
        let svc = self.services.get(service)?;
        let mut out = format!(
            "SERVICE {} ({}) host={} native={}\n",
            svc.name, svc.interface, svc.host, svc.native
        );
        let host_jgr = self.jgr_count(svc.host).unwrap_or(0);
        let _ = writeln!(out, "  host JGR table: {host_jgr} entries");
        for (method, state) in &svc.per_method {
            let _ = writeln!(
                out,
                "  {method}: {} calls, {} retained",
                state.calls, state.total_retained
            );
            for (pid, entries) in &state.retained {
                let owner = self
                    .apps
                    .iter()
                    .find(|(_, a)| a.pid == Some(*pid))
                    .map(|(uid, a)| format!("{uid} {}", a.package))
                    .unwrap_or_else(|| "unknown".to_owned());
                let _ = writeln!(out, "    {pid} ({owner}): {} entries", entries.len());
            }
        }
        Some(out)
    }

    /// Retained-entry count for one interface (verification looks at this
    /// alongside the JGR table).
    pub fn retained_entries(&self, service: &str, method: &str) -> usize {
        self.services
            .get(service)
            .and_then(|s| s.per_method.get(method))
            .map(|m| m.total_retained)
            .unwrap_or(0)
    }

    /// Completed call count for one interface.
    pub fn call_count(&self, service: &str, method: &str) -> u64 {
        self.services
            .get(service)
            .and_then(|s| s.per_method.get(method))
            .map(|m| m.calls)
            .unwrap_or(0)
    }
}

/// Restart policy for a supervised system service (`init`-style): how
/// many times in a row a crashing service may be restarted, and how the
/// restart backoff grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Consecutive crashes tolerated before the supervisor gives up (a
    /// healthy run of the service resets the count, as Android's init
    /// does for a service that stays up).
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per consecutive crash.
    pub backoff: SimDuration,
    /// Ceiling on a single backoff.
    pub backoff_cap: SimDuration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 8,
            backoff: SimDuration::from_millis(50),
            backoff_cap: SimDuration::from_secs(2),
        }
    }
}

/// Bounded-restart supervisor: the loop `init` runs around a critical
/// service, reduced to its decisions. The caller reports crashes and
/// healthy runs; the supervisor answers with the backoff to wait before
/// the next restart, or `None` once the restart budget is exhausted.
///
/// # Example
///
/// ```
/// use jgre_framework::{Supervisor, SupervisorConfig};
///
/// let mut sup = Supervisor::new(SupervisorConfig::default());
/// let backoff = sup.on_crash().expect("first crash is restartable");
/// assert_eq!(backoff, SupervisorConfig::default().backoff);
/// sup.on_healthy(); // a good run resets the consecutive-crash count
/// assert_eq!(sup.total_restarts(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Supervisor {
    config: SupervisorConfig,
    consecutive_crashes: u32,
    total_restarts: u64,
    total_backoff: SimDuration,
    gave_up: bool,
}

impl Supervisor {
    /// Creates a supervisor with the given restart policy.
    pub fn new(config: SupervisorConfig) -> Self {
        Self {
            config,
            consecutive_crashes: 0,
            total_restarts: 0,
            total_backoff: SimDuration::ZERO,
            gave_up: false,
        }
    }

    /// The configured policy.
    pub fn config(&self) -> SupervisorConfig {
        self.config
    }

    /// The service crashed. Returns the backoff to wait before
    /// restarting it, or `None` when the consecutive-crash budget is
    /// spent — the supervisor then stays given-up permanently.
    pub fn on_crash(&mut self) -> Option<SimDuration> {
        if self.gave_up || self.consecutive_crashes >= self.config.max_restarts {
            self.gave_up = true;
            return None;
        }
        let exp = self.consecutive_crashes.min(16);
        let backoff = (self.config.backoff * (1u64 << exp)).min(self.config.backoff_cap);
        self.consecutive_crashes += 1;
        self.total_restarts += 1;
        self.total_backoff += backoff;
        Some(backoff)
    }

    /// The service completed a healthy run: reset the consecutive-crash
    /// count (but not the lifetime totals).
    pub fn on_healthy(&mut self) {
        if !self.gave_up {
            self.consecutive_crashes = 0;
        }
    }

    /// Whether the restart budget is exhausted.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Crashes since the last healthy run.
    pub fn consecutive_crashes(&self) -> u32 {
        self.consecutive_crashes
    }

    /// Restarts performed over the supervisor's lifetime.
    pub fn total_restarts(&self) -> u64 {
        self.total_restarts
    }

    /// Cumulative backoff waited across every restart.
    pub fn total_backoff(&self) -> SimDuration {
        self.total_backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(cap: usize) -> System {
        System::boot_with(SystemConfig {
            seed: 1,
            jgr_capacity: Some(cap),
            ..SystemConfig::default()
        })
    }

    #[test]
    fn boot_registers_all_services() {
        let system = System::boot(0);
        // 104 system services + 3 app-exported services.
        assert_eq!(system.service_names().len(), 107);
        assert_eq!(system.process_count(), STOCK_PROCESS_COUNT);
        let info = system.service_info("clipboard").unwrap();
        assert_eq!(info.interface, "IClipboard");
        assert_eq!(info.host, system.system_server_pid());
        let gatt = system.service_info("bluetooth_gatt").unwrap();
        assert_ne!(gatt.host, system.system_server_pid());
    }

    #[test]
    fn permission_gate_enforced() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        let err = system
            .call_service(app, "power", "acquireWakeLock", CallOptions::default())
            .unwrap_err();
        assert!(matches!(err, FrameworkError::PermissionDenied { .. }));
        system.grant_permission(app, Permission::WakeLock).unwrap();
        let outcome = system
            .call_service(app, "power", "acquireWakeLock", CallOptions::default())
            .unwrap();
        assert_eq!(outcome.jgr_created, 1);
    }

    #[test]
    fn signature_permission_blocks_third_party() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", [Permission::WriteSecureSettings]);
        // Even "granted", a signature permission cannot be held by a
        // third-party uid.
        let err = system
            .call_service(
                app,
                "device_policy",
                "addPolicyStatusListener",
                CallOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, FrameworkError::PermissionDenied { .. }));
    }

    #[test]
    fn retained_calls_grow_the_jgr_table_across_gc() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        for _ in 0..25 {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        let ss = system.system_server_pid();
        system.gc_process(ss);
        assert_eq!(system.system_server_jgr_count(), 25);
        assert_eq!(
            system.retained_entries("clipboard", "addPrimaryClipChangedListener"),
            25
        );
    }

    #[test]
    fn transient_calls_drain_at_gc() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        // Find an innocent Transient method on the clipboard service.
        let spec = system.spec().service("clipboard").unwrap().clone();
        let transient = spec
            .methods
            .iter()
            .find(|m| matches!(m.jgr, JgrBehavior::Transient) && m.permission.is_none())
            .expect("catalog generates transient methods")
            .name
            .clone();
        for _ in 0..10 {
            system
                .call_service(app, "clipboard", &transient, CallOptions::default())
                .unwrap();
        }
        assert_eq!(system.system_server_jgr_count(), 10);
        let ss = system.system_server_pid();
        system.gc_process(ss);
        assert_eq!(system.system_server_jgr_count(), 0, "sift rule 2/3 pattern");
    }

    #[test]
    fn helper_threshold_blocks_but_direct_binder_bypasses() {
        let mut system = System::boot(0);
        let benign = system.install_app("com.benign", [Permission::WakeLock]);
        let mal = system.install_app("com.evil", [Permission::WakeLock]);
        // Benign path: helper stops at MAX_ACTIVE_LOCKS = 50.
        let mut ok = 0;
        for _ in 0..60 {
            match system.call_service(benign, "wifi", "acquireWifiLock", CallOptions::benign()) {
                Ok(_) => ok += 1,
                Err(FrameworkError::HelperLimitExceeded { limit, .. }) => {
                    assert_eq!(limit, 50);
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(ok, 50);
        // Malicious path: direct Binder, no limit.
        for _ in 0..200 {
            system
                .call_service(mal, "wifi", "acquireWifiLock", CallOptions::default())
                .unwrap();
        }
        assert!(system.retained_entries("wifi", "acquireWifiLock") >= 250);
    }

    #[test]
    fn sound_per_process_limit_holds_but_spoof_bypasses_toast() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        // display.registerCallback caps at 1 per process.
        let first = system
            .call_service(app, "display", "registerCallback", CallOptions::default())
            .unwrap();
        assert!(first.status.is_completed());
        let second = system
            .call_service(app, "display", "registerCallback", CallOptions::default())
            .unwrap();
        assert_eq!(second.status, CallStatus::RejectedByServerLimit);
        assert_eq!(system.retained_entries("display", "registerCallback"), 1);

        // enqueueToast honestly: capped at 50.
        for _ in 0..50 {
            let o = system
                .call_service(app, "notification", "enqueueToast", CallOptions::default())
                .unwrap();
            assert!(o.status.is_completed());
        }
        let rejected = system
            .call_service(app, "notification", "enqueueToast", CallOptions::default())
            .unwrap();
        assert_eq!(rejected.status, CallStatus::RejectedByServerLimit);
        // Spoofing pkg="android" sails past the cap (Code-Snippet 3).
        let spoof = CallOptions {
            spoof_system_package: true,
            ..CallOptions::default()
        };
        for _ in 0..30 {
            let o = system
                .call_service(app, "notification", "enqueueToast", spoof.clone())
                .unwrap();
            assert!(o.status.is_completed());
        }
        assert_eq!(system.retained_entries("notification", "enqueueToast"), 80);
    }

    #[test]
    fn exhaustion_soft_reboots_the_device() {
        let mut system = small_system(200);
        let app = system.install_app("com.evil", []);
        let mut aborted = false;
        for _ in 0..300 {
            let o = system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            if o.host_aborted {
                aborted = true;
                break;
            }
        }
        assert!(aborted, "table of 200 must blow within 300 calls");
        assert_eq!(system.soft_reboots(), 1);
        // The device rebooted: services are back, table is empty.
        assert_eq!(system.system_server_jgr_count(), 0);
        assert!(system.service_info("clipboard").is_some());
        // And can be attacked again.
        let o = system
            .call_service(
                app,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .unwrap();
        assert!(o.status.is_completed());
    }

    #[test]
    fn app_service_abort_kills_only_that_app() {
        let mut system = small_system(150);
        let app = system.install_app("com.evil", []);
        let mut crashed = false;
        for _ in 0..200 {
            match system.call_service(app, "pico_tts", "setCallback", CallOptions::default()) {
                Ok(o) if o.host_aborted => {
                    crashed = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(crashed);
        assert_eq!(system.soft_reboots(), 0, "system_server survives");
        assert!(
            matches!(
                system.call_service(app, "pico_tts", "setCallback", CallOptions::default()),
                Err(FrameworkError::UnknownService(_))
            ),
            "the crashed app's service is gone"
        );
    }

    #[test]
    fn killing_the_attacker_releases_its_jgr_entries() {
        let mut system = System::boot(0);
        let evil = system.install_app("com.evil", []);
        let benign = system.install_app("com.benign", []);
        for _ in 0..40 {
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        for _ in 0..5 {
            system
                .call_service(
                    benign,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        assert_eq!(system.system_server_jgr_count(), 45);
        system.kill_app(evil);
        assert_eq!(
            system.system_server_jgr_count(),
            5,
            "only the benign app's entries remain"
        );
    }

    #[test]
    fn kill_outcomes_reflect_injected_faults() {
        use jgre_sim::{FaultIntensity, FaultKind};
        let mut system = System::boot_with(SystemConfig {
            seed: 1,
            faults: FaultPlan::single(FaultKind::KillFail, FaultIntensity::Moderate),
            ..SystemConfig::default()
        });
        let app = system.install_app("com.sticky", []);
        for _ in 0..10 {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        // Moderate kill-fail = exactly one budgeted failure, then kills work.
        assert_eq!(system.kill_app(app), KillOutcome::Failed);
        assert_eq!(
            system.system_server_jgr_count(),
            10,
            "failed kill reclaims nothing"
        );
        assert_eq!(system.kill_app(app), KillOutcome::Killed);
        assert_eq!(system.system_server_jgr_count(), 0);
        assert_eq!(system.kill_app(app), KillOutcome::NotRunning);
    }

    #[test]
    fn respawned_apps_come_back_empty() {
        use jgre_sim::{FaultIntensity, FaultKind};
        let mut system = System::boot_with(SystemConfig {
            seed: 1,
            faults: FaultPlan::single(FaultKind::KillRespawn, FaultIntensity::Severe),
            ..SystemConfig::default()
        });
        let app = system.install_app("com.sticky", []);
        for _ in 0..10 {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        let old_pid = system.pid_of(app).unwrap();
        let mut respawned = false;
        for _ in 0..8 {
            match system.kill_app(app) {
                KillOutcome::Respawned => {
                    respawned = true;
                    break;
                }
                KillOutcome::Killed => {
                    system.launch_app(app).unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(respawned, "severe respawn plan must fire within 8 kills");
        // The entries died with the old process; the respawn is fresh.
        assert_eq!(system.system_server_jgr_count(), 0);
        let new_pid = system.pid_of(app).expect("respawned process is live");
        assert_ne!(new_pid, old_pid);
    }

    #[test]
    fn uninstall_wins_even_when_force_stop_faults() {
        use jgre_sim::{FaultIntensity, FaultKind};
        let mut system = System::boot_with(SystemConfig {
            seed: 1,
            faults: FaultPlan::single(FaultKind::KillFail, FaultIntensity::Severe),
            ..SystemConfig::default()
        });
        let app = system.install_app("com.gone", []);
        for _ in 0..5 {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        system.uninstall_app(app);
        assert_eq!(system.system_server_jgr_count(), 0);
        assert!(system.package_of(app).is_none());
    }

    #[test]
    fn lmk_caps_running_apps() {
        let mut system = System::boot(0);
        let apps: Vec<Uid> = (0..50)
            .map(|i| system.install_app(format!("com.app{i}"), []))
            .collect();
        for &uid in &apps {
            system.launch_app(uid).unwrap();
        }
        assert!(system.running_app_count() <= LmkConfig::default().max_user_apps);
        assert!(system.process_count() <= STOCK_PROCESS_COUNT + LmkConfig::default().max_user_apps);
    }

    #[test]
    fn callbacks_reach_exactly_the_live_listeners() {
        let mut system = System::boot(0);
        let a = system.install_app("com.a", []);
        let b = system.install_app("com.b", []);
        for _ in 0..2 {
            system
                .call_service(
                    a,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        system
            .call_service(
                b,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .unwrap();
        assert_eq!(
            system
                .fire_service_callbacks("clipboard", "addPrimaryClipChangedListener")
                .unwrap(),
            3
        );
        // Killing one listener prunes its registrations eagerly.
        system.kill_app(a);
        assert_eq!(
            system
                .fire_service_callbacks("clipboard", "addPrimaryClipChangedListener")
                .unwrap(),
            1
        );
        // The deliveries hit the driver log as host→app transactions.
        let reverse = system
            .driver()
            .log()
            .iter()
            .filter(|r| r.method == "onCallback")
            .count();
        assert_eq!(reverse, 4);
        assert!(matches!(
            system.fire_service_callbacks("clipboard", "noSuchMethod"),
            Err(FrameworkError::UnknownMethod { .. })
        ));
    }

    #[test]
    fn uninstall_releases_and_forgets() {
        let mut system = System::boot(0);
        let app = system.install_app("com.gone", []);
        for _ in 0..9 {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        system.uninstall_app(app);
        assert_eq!(system.system_server_jgr_count(), 0);
        assert!(matches!(
            system.call_service(app, "clipboard", "getState", CallOptions::default()),
            Err(FrameworkError::UnknownApp)
        ));
        assert!(system.package_of(app).is_none());
    }

    #[test]
    fn dumpsys_reports_per_caller_retention() {
        let mut system = System::boot(0);
        let app = system.install_app("com.dumped", []);
        for _ in 0..7 {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        let dump = system.dumpsys("clipboard").expect("clipboard registered");
        assert!(dump.contains("SERVICE clipboard (IClipboard)"), "{dump}");
        assert!(
            dump.contains("addPrimaryClipChangedListener: 7 calls, 7 retained"),
            "{dump}"
        );
        assert!(dump.contains("com.dumped"), "{dump}");
        assert!(system.dumpsys("no-such-service").is_none());
    }

    #[test]
    fn execution_time_grows_with_retained_entries() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", [Permission::ReadPhoneState]);
        let first = system
            .call_service(
                app,
                "telephony.registry",
                "listenForSubscriber",
                CallOptions::default(),
            )
            .unwrap();
        for _ in 0..2_000 {
            system
                .call_service(
                    app,
                    "telephony.registry",
                    "listenForSubscriber",
                    CallOptions::default(),
                )
                .unwrap();
        }
        let late = system
            .call_service(
                app,
                "telephony.registry",
                "listenForSubscriber",
                CallOptions::default(),
            )
            .unwrap();
        assert!(
            late.exec_time.as_micros() > first.exec_time.as_micros(),
            "Figure 5 shape: {} !> {}",
            late.exec_time,
            first.exec_time
        );
    }

    // -- raw dispatch hardening (the surface `jgre fuzz` drives) ----------

    /// Builds the parcel the framework would marshal for a retaining
    /// method: package string, then a live callback binder.
    fn well_formed_parcel(system: &mut System, app: Uid) -> Parcel {
        let cb = system.create_callback_node(app).unwrap();
        let mut parcel = Parcel::new();
        parcel.write_string("com.example");
        parcel.write_strong_binder(cb);
        parcel
    }

    #[test]
    fn transact_raw_well_formed_matches_call_service() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        let code = system
            .transaction_code("clipboard", "addPrimaryClipChangedListener")
            .unwrap();
        assert_eq!(
            system.method_for_code("clipboard", code),
            Some("addPrimaryClipChangedListener")
        );
        let mut parcel = well_formed_parcel(&mut system, app);
        let outcome = system
            .transact_raw(app, "clipboard", code, &mut parcel)
            .unwrap();
        assert_eq!(outcome.status, CallStatus::Completed);
        assert_eq!(outcome.jgr_created, 1);
        assert_eq!(
            system.retained_entries("clipboard", "addPrimaryClipChangedListener"),
            1
        );
    }

    #[test]
    fn transact_raw_rejects_unknown_code() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        let count = system.method_count("clipboard").unwrap() as u32;
        let mut parcel = well_formed_parcel(&mut system, app);
        let outcome = system
            .transact_raw(
                app,
                "clipboard",
                FIRST_CALL_TRANSACTION + count,
                &mut parcel,
            )
            .unwrap();
        assert_eq!(outcome.status.reject(), Some(CallReject::UnknownCode));
        assert_eq!(outcome.jgr_created, 0);
        assert!(!outcome.host_aborted);
        // Code 0 sits below FIRST_CALL_TRANSACTION and is equally unknown.
        parcel.rewind();
        let outcome = system
            .transact_raw(app, "clipboard", 0, &mut parcel)
            .unwrap();
        assert_eq!(outcome.status.reject(), Some(CallReject::UnknownCode));
        assert_eq!(system.reject_counts().get("unknown-code"), Some(&2));
    }

    #[test]
    fn transact_raw_rejects_truncated_and_type_confused_parcels() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        let code = system
            .transaction_code("clipboard", "addPrimaryClipChangedListener")
            .unwrap();

        // Empty parcel: the package string read underflows.
        let mut empty = Parcel::new();
        let outcome = system
            .transact_raw(app, "clipboard", code, &mut empty)
            .unwrap();
        assert_eq!(outcome.status.reject(), Some(CallReject::Underflow));

        // Wrong-arity: package present, required binder missing.
        let mut no_binder = Parcel::new();
        no_binder.write_string("com.example");
        let outcome = system
            .transact_raw(app, "clipboard", code, &mut no_binder)
            .unwrap();
        assert_eq!(outcome.status.reject(), Some(CallReject::Underflow));

        // Type confusion: an i32 where the package string belongs.
        let mut confused = Parcel::new();
        confused.write_i32(7).write_i64(9);
        let outcome = system
            .transact_raw(app, "clipboard", code, &mut confused)
            .unwrap();
        assert_eq!(outcome.status.reject(), Some(CallReject::TypeConfusion));

        // Nothing reached a handler; no JGR was created, nothing retained.
        assert_eq!(
            system.retained_entries("clipboard", "addPrimaryClipChangedListener"),
            0
        );
        assert_eq!(system.reject_counts().get("parcel-underflow"), Some(&2));
        assert_eq!(system.reject_counts().get("parcel-type-mismatch"), Some(&1));
    }

    #[test]
    fn transact_raw_rejects_stale_and_foreign_binders() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        let code = system
            .transaction_code("clipboard", "addPrimaryClipChangedListener")
            .unwrap();
        // A NodeId the driver never handed out: foreign handle.
        let mut parcel = Parcel::new();
        parcel.write_string("com.example");
        parcel.write_strong_binder(jgre_binder::NodeId::new(0));
        let outcome = system
            .transact_raw(app, "clipboard", code, &mut parcel)
            .unwrap();
        assert_eq!(outcome.status.reject(), Some(CallReject::StaleBinder));
        assert_eq!(system.reject_counts().get("stale-binder"), Some(&1));
    }

    #[test]
    fn transact_raw_rejects_oversized_payload() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        let code = system
            .transaction_code("clipboard", "addPrimaryClipChangedListener")
            .unwrap();
        let mut parcel = well_formed_parcel(&mut system, app);
        parcel.write_blob(2 * 1024 * 1024);
        let outcome = system
            .transact_raw(app, "clipboard", code, &mut parcel)
            .unwrap();
        assert_eq!(outcome.status.reject(), Some(CallReject::OversizedPayload));
        assert_eq!(system.reject_counts().get("oversized-payload"), Some(&1));
    }

    #[test]
    fn transact_raw_enforces_permissions() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        let code = system.transaction_code("power", "acquireWakeLock").unwrap();
        let mut parcel = well_formed_parcel(&mut system, app);
        let err = system
            .transact_raw(app, "power", code, &mut parcel)
            .unwrap_err();
        assert!(matches!(err, FrameworkError::PermissionDenied { .. }));
    }

    #[test]
    fn rejected_transactions_never_mutate_jgr_state() {
        let mut system = System::boot(0);
        let app = system.install_app("com.example", []);
        let before = system.system_server_jgr_count();
        let code = system
            .transaction_code("clipboard", "addPrimaryClipChangedListener")
            .unwrap();
        for _ in 0..50 {
            let mut empty = Parcel::new();
            let outcome = system
                .transact_raw(app, "clipboard", code, &mut empty)
                .unwrap();
            assert!(outcome.status.reject().is_some());
        }
        let ss = system.system_server_pid();
        system.gc_process(ss);
        assert_eq!(system.system_server_jgr_count(), before);
    }
}
