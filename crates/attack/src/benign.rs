//! The benign baseline workload of Observation 1 / Figure 4.
//!
//! The paper installs the top-300 free Play apps (100 at a time on the
//! 16 GB device), drives each with MonkeyRunner for two minutes, then
//! backgrounds it with HOME. Under that load `system_server`'s JGR table
//! stays between ~1000 and ~3000 entries and the process count between 382
//! and 421 — the stability that makes a fixed alarm threshold safe.

use jgre_corpus::spec::{JgrBehavior, Permission, ProtectionLevel};
use jgre_framework::{CallOptions, FrameworkError, System};
use jgre_sim::{SimDuration, SimRng, SimTime, Uid};
use serde::{Deserialize, Serialize};

/// Configuration of the benign sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenignWorkloadConfig {
    /// Apps to install and exercise (the paper: 300, in 3 rounds of 100).
    pub apps: usize,
    /// Apps per round (device storage limit).
    pub apps_per_round: usize,
    /// Foreground time per app.
    pub session: SimDuration,
    /// Helper/IPC calls per app session.
    pub calls_per_session: usize,
    /// Sample cadence.
    pub sample_every: SimDuration,
}

impl Default for BenignWorkloadConfig {
    fn default() -> Self {
        Self {
            apps: 300,
            apps_per_round: 100,
            session: SimDuration::from_secs(120),
            calls_per_session: 40,
            sample_every: SimDuration::from_secs(60),
        }
    }
}

/// One Figure 4 sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenignSample {
    /// Virtual time.
    pub at: SimTime,
    /// `system_server` JGR table size (left Y axis).
    pub system_server_jgr: usize,
    /// Running process count (right Y axis).
    pub processes: usize,
}

/// Drives the benign sweep and collects the Figure 4 series.
#[derive(Debug)]
pub struct BenignWorkload {
    config: BenignWorkloadConfig,
    rng: SimRng,
}

impl BenignWorkload {
    /// Creates a workload with its own RNG stream.
    pub fn new(config: BenignWorkloadConfig, seed: u64) -> Self {
        Self {
            config,
            rng: SimRng::seed(seed ^ 0xBE9165),
        }
    }

    /// Runs the sweep on `system`, returning the sampled series.
    pub fn run(&mut self, system: &mut System) -> Vec<BenignSample> {
        let mut samples = Vec::new();
        let mut next_sample = system.now();
        // Benign apps request ordinary permissions.
        let benign_perms = [
            Permission::Internet,
            Permission::Vibrate,
            Permission::WakeLock,
            Permission::AccessNetworkState,
            Permission::ReadPhoneState,
            Permission::AccessFineLocation,
        ];
        // Collect candidate benign calls: innocent methods plus the
        // listener registrations every real app performs through helpers.
        let spec = system.spec().clone();
        let mut benign_calls: Vec<(String, String, Option<Permission>, bool)> = Vec::new();
        for svc in &spec.services {
            if svc.native {
                continue;
            }
            for m in &svc.methods {
                let helper = matches!(
                    m.protection,
                    jgre_corpus::spec::Protection::HelperThreshold { .. }
                );
                let usable = match m.jgr {
                    JgrBehavior::NoJgr | JgrBehavior::Transient | JgrBehavior::ReplaceSingle => {
                        true
                    }
                    // Real apps do register listeners — but only a handful,
                    // via the documented helper APIs.
                    JgrBehavior::RetainPerCall { .. } => helper,
                    JgrBehavior::ThreadCreateOnly => true,
                };
                let permission_ok = m
                    .permission
                    .is_none_or(|p| p.level() != ProtectionLevel::Signature);
                if usable && permission_ok {
                    benign_calls.push((svc.name.clone(), m.name.clone(), m.permission, helper));
                }
            }
        }

        let rounds = self.config.apps.div_ceil(self.config.apps_per_round);
        let mut app_no = 0usize;
        for round in 0..rounds {
            // Install this round's batch.
            let mut batch: Vec<Uid> = Vec::new();
            for _ in 0..self.config.apps_per_round.min(self.config.apps - app_no) {
                let uid = system.install_app(
                    format!("com.top.app{app_no:03}"),
                    benign_perms.iter().copied(),
                );
                batch.push(uid);
                app_no += 1;
            }
            for &uid in &batch {
                // Foreground session. App startup stirs the framework:
                // system components exchange binders among themselves,
                // creating a transient bulge in the JGR table that the
                // per-session GC returns — Figure 4's wobble.
                system.launch_app(uid).expect("app was installed");
                let capacity = system
                    .jgr_capacity(system.system_server_pid())
                    .expect("system_server is alive");
                let churn = self.rng.range(capacity / 340..capacity / 34);
                system.framework_activity(churn);
                let session_end = system.now() + self.config.session;
                let mut calls = 0;
                while system.now() < session_end && calls < self.config.calls_per_session {
                    let (svc, method, _perm, helper) = self
                        .rng
                        .choose(&benign_calls)
                        .expect("catalog is non-empty")
                        .clone();
                    let options = if helper {
                        CallOptions::benign()
                    } else {
                        CallOptions::default()
                    };
                    match system.call_service(uid, &svc, &method, options) {
                        Ok(_) => {}
                        Err(FrameworkError::PermissionDenied { .. })
                        | Err(FrameworkError::HelperLimitExceeded { .. }) => {}
                        Err(e) => panic!("benign call {svc}.{method} failed: {e}"),
                    }
                    calls += 1;
                    // User think time between interactions.
                    let think = self.rng.range(500..4_000u64);
                    system.clock().advance(SimDuration::from_millis(think));
                    while system.now() >= next_sample {
                        samples.push(sample(system));
                        next_sample += self.config.sample_every;
                    }
                }
                // HOME press: app goes to the background; an occasional GC
                // runs on system_server as the framework breathes.
                let ss = system.system_server_pid();
                system.gc_process(ss);
                while system.now() >= next_sample {
                    samples.push(sample(system));
                    next_sample += self.config.sample_every;
                }
            }
            // Between rounds the device is wiped of the batch (storage
            // limit): kill the batch's processes.
            if round + 1 < rounds {
                for &uid in &batch {
                    system.kill_app(uid);
                }
            }
        }
        samples.push(sample(system));
        samples
    }
}

fn sample(system: &System) -> BenignSample {
    BenignSample {
        at: system.now(),
        system_server_jgr: system.system_server_jgr_count(),
        processes: system.process_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_framework::STOCK_PROCESS_COUNT;

    #[test]
    fn baseline_stays_in_the_figure_4_band() {
        let mut system = System::boot(11);
        let mut workload = BenignWorkload::new(
            BenignWorkloadConfig {
                apps: 60,
                apps_per_round: 30,
                session: SimDuration::from_secs(30),
                calls_per_session: 25,
                sample_every: SimDuration::from_secs(30),
            },
            11,
        );
        let samples = workload.run(&mut system);
        assert!(samples.len() > 10);
        let max_jgr = samples.iter().map(|s| s.system_server_jgr).max().unwrap();
        let max_procs = samples.iter().map(|s| s.processes).max().unwrap();
        // Observation 1: small and stable — far below the 51200 cap.
        assert!(
            max_jgr < 5_000,
            "benign baseline must stay small, got {max_jgr}"
        );
        assert!(max_procs >= STOCK_PROCESS_COUNT);
        assert!(
            max_procs <= STOCK_PROCESS_COUNT + 39,
            "LMK must cap processes, got {max_procs}"
        );
        assert_eq!(system.soft_reboots(), 0);
    }
}
