//! Attack vectors and the exhaustion harness.

use jgre_corpus::spec::{AospSpec, Flaw, JgrBehavior, Permission, Protection};
use jgre_framework::{CallOptions, FrameworkError, System};
use jgre_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Everything a malicious app needs to exploit one interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackVector {
    /// Registered service name on the device.
    pub service: String,
    /// Vulnerable method.
    pub method: String,
    /// Permissions the malicious app must declare (normal ones are
    /// granted silently; dangerous ones assume a fooled user).
    pub permissions: Vec<Permission>,
    /// Whether the exploit must pass `"android"` as the package name to
    /// bypass a flawed per-process limit.
    pub spoof_system_package: bool,
    /// Global references created per call.
    pub grefs_per_call: u32,
}

impl AttackVector {
    /// The 54 vulnerable system-service interfaces (Tables I–III).
    pub fn service_vectors(spec: &AospSpec) -> Vec<AttackVector> {
        spec.vulnerable_service_interfaces()
            .map(|(s, m)| Self::from_specs(&s.name, m))
            .collect()
    }

    /// The 3 vulnerable prebuilt-app interfaces (Table IV), addressed by
    /// their exported service names.
    pub fn prebuilt_vectors(spec: &AospSpec) -> Vec<AttackVector> {
        spec.vulnerable_prebuilt_interfaces()
            .map(|(_, s, m)| Self::from_specs(&s.name, m))
            .collect()
    }

    /// All 57 dynamically attackable vectors.
    pub fn all_vectors(spec: &AospSpec) -> Vec<AttackVector> {
        let mut v = Self::service_vectors(spec);
        v.extend(Self::prebuilt_vectors(spec));
        v
    }

    fn from_specs(service: &str, m: &jgre_corpus::spec::MethodSpec) -> AttackVector {
        AttackVector {
            service: service.to_owned(),
            method: m.name.clone(),
            permissions: m.permission.into_iter().collect(),
            spoof_system_package: matches!(
                m.protection,
                Protection::PerProcessLimit {
                    flaw: Some(Flaw::SystemPackageSpoof),
                    ..
                }
            ),
            grefs_per_call: match m.jgr {
                JgrBehavior::RetainPerCall { grefs_per_call } => grefs_per_call,
                _ => 0,
            },
        }
    }

    /// Canonical `service.method` label of this vector, as it appears in
    /// experiment tables and fleet summaries.
    pub fn label(&self) -> String {
        format!("{}.{}", self.service, self.method)
    }

    /// Resolves a catalog selector against [`all_vectors`](Self::all_vectors):
    /// either a zero-based index (`"12"`) or a `service.method` label
    /// (`"audio.startWatchingRoutes"`). Returns the catalog index and the
    /// vector, or `None` when nothing matches.
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_attack::AttackVector;
    /// use jgre_corpus::spec::AospSpec;
    ///
    /// let spec = AospSpec::android_6_0_1();
    /// let (idx, v) = AttackVector::resolve(&spec, "clipboard.addPrimaryClipChangedListener").unwrap();
    /// assert_eq!(AttackVector::resolve(&spec, &idx.to_string()).unwrap().1, v);
    /// assert!(AttackVector::resolve(&spec, "no.such").is_none());
    /// ```
    pub fn resolve(spec: &AospSpec, selector: &str) -> Option<(usize, AttackVector)> {
        let catalog = Self::all_vectors(spec);
        if let Ok(index) = selector.parse::<usize>() {
            return catalog.get(index).map(|v| (index, v.clone()));
        }
        catalog
            .into_iter()
            .enumerate()
            .find(|(_, v)| v.label() == selector)
    }

    /// Call options implementing this vector's exploit.
    pub fn call_options(&self) -> CallOptions {
        CallOptions {
            spoof_system_package: self.spoof_system_package,
            ..CallOptions::default()
        }
    }
}

/// One sample point along an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackSample {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// Calls issued so far.
    pub calls: u64,
    /// Victim's JGR table size.
    pub victim_jgr: usize,
    /// Execution time of the most recent call, µs.
    pub exec_us: u64,
}

/// Result of driving one vector to exhaustion (or to the call budget).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExhaustionResult {
    /// The vector driven.
    pub vector: AttackVector,
    /// Virtual time from first call to abort (None if the budget ran out
    /// first).
    pub time_to_exhaustion: Option<SimDuration>,
    /// Calls issued.
    pub calls: u64,
    /// Whether the victim aborted (for `system_server`: soft reboot).
    pub aborted: bool,
    /// Sampled curve (one point per `sample_every` calls).
    pub samples: Vec<AttackSample>,
}

/// Drives `vector` against `system` until the victim aborts or `max_calls`
/// is reached. Samples every `sample_every` calls.
///
/// # Panics
///
/// Panics if `sample_every` is zero.
///
/// # Example
///
/// ```
/// use jgre_attack::{run_exhaustion_attack, AttackVector};
/// use jgre_framework::{System, SystemConfig};
///
/// // A small JGR cap keeps the doctest fast; the real cap is 51200.
/// let mut system = System::boot_with(SystemConfig {
///     jgr_capacity: Some(500),
///     ..SystemConfig::default()
/// });
/// let vectors = AttackVector::service_vectors(system.spec());
/// let clip = vectors
///     .iter()
///     .find(|v| v.service == "clipboard")
///     .unwrap()
///     .clone();
/// let result = run_exhaustion_attack(&mut system, &clip, 1_000, 100);
/// assert!(result.aborted);
/// assert_eq!(system.soft_reboots(), 1);
/// ```
pub fn run_exhaustion_attack(
    system: &mut System,
    vector: &AttackVector,
    max_calls: u64,
    sample_every: u64,
) -> ExhaustionResult {
    assert!(sample_every > 0, "sample_every must be positive");
    let mal = system.install_app(
        format!("com.malware.{}.{}", vector.service, vector.method),
        vector.permissions.iter().copied(),
    );
    let victim = system
        .service_info(&vector.service)
        .map(|i| i.host)
        .expect("vector targets a registered service");
    let started = system.now();
    let mut samples = Vec::new();
    let mut calls = 0u64;
    let mut aborted = false;
    while calls < max_calls {
        let outcome = match system.call_service(
            mal,
            &vector.service,
            &vector.method,
            vector.call_options(),
        ) {
            Ok(o) => o,
            Err(FrameworkError::ServiceDead | FrameworkError::UnknownService(_)) => break,
            Err(e) => panic!("attack on {}.{} failed: {e}", vector.service, vector.method),
        };
        calls += 1;
        if calls.is_multiple_of(sample_every) || outcome.host_aborted {
            samples.push(AttackSample {
                at: system.now(),
                calls,
                victim_jgr: if outcome.host_aborted {
                    outcome.host_jgr_count
                } else {
                    system.jgr_count(victim).unwrap_or(outcome.host_jgr_count)
                },
                exec_us: outcome.exec_time.as_micros(),
            });
        }
        if outcome.host_aborted {
            aborted = true;
            break;
        }
    }
    ExhaustionResult {
        vector: vector.clone(),
        time_to_exhaustion: aborted.then(|| system.now().saturating_since(started)),
        calls,
        aborted,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_framework::SystemConfig;

    fn small_system(cap: usize, seed: u64) -> System {
        System::boot_with(SystemConfig {
            seed,
            jgr_capacity: Some(cap),
            ..SystemConfig::default()
        })
    }

    #[test]
    fn vector_catalog_counts() {
        let spec = AospSpec::android_6_0_1();
        assert_eq!(AttackVector::service_vectors(&spec).len(), 54);
        assert_eq!(AttackVector::prebuilt_vectors(&spec).len(), 3);
        assert_eq!(AttackVector::all_vectors(&spec).len(), 57);
    }

    #[test]
    fn resolve_accepts_index_and_label() {
        let spec = AospSpec::android_6_0_1();
        let catalog = AttackVector::all_vectors(&spec);
        for (i, v) in catalog.iter().enumerate() {
            assert_eq!(
                AttackVector::resolve(&spec, &i.to_string()),
                Some((i, v.clone()))
            );
            assert_eq!(
                AttackVector::resolve(&spec, &v.label()),
                Some((i, v.clone()))
            );
        }
        assert!(AttackVector::resolve(&spec, "57").is_none());
        assert!(AttackVector::resolve(&spec, "bogus.method").is_none());
    }

    #[test]
    fn every_vector_exhausts_a_small_table() {
        let spec = AospSpec::android_6_0_1();
        for vector in AttackVector::all_vectors(&spec) {
            let mut system = small_system(120, 9);
            let result = run_exhaustion_attack(&mut system, &vector, 1_000, 50);
            assert!(
                result.aborted,
                "{}.{} failed to exhaust (calls={})",
                vector.service, vector.method, result.calls
            );
        }
    }

    #[test]
    fn samples_are_monotone_in_time_and_jgr_grows() {
        let mut system = small_system(400, 1);
        let spec = system.spec().clone();
        let vector = AttackVector::service_vectors(&spec)
            .into_iter()
            .find(|v| v.service == "audio" && v.method == "startWatchingRoutes")
            .unwrap();
        let result = run_exhaustion_attack(&mut system, &vector, 10_000, 20);
        assert!(result.aborted);
        for pair in result.samples.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        let last_before_abort = result.samples[result.samples.len() - 2].victim_jgr;
        assert!(last_before_abort > 300, "curve should approach the cap");
    }

    #[test]
    fn faster_interface_exhausts_sooner() {
        let spec = AospSpec::android_6_0_1();
        let fast = AttackVector::service_vectors(&spec)
            .into_iter()
            .find(|v| v.method == "startWatchingRoutes")
            .unwrap();
        let slow = AttackVector::service_vectors(&spec)
            .into_iter()
            .find(|v| v.method == "enqueueToast")
            .unwrap();
        let mut s1 = small_system(2_000, 2);
        let r_fast = run_exhaustion_attack(&mut s1, &fast, 100_000, 500);
        let mut s2 = small_system(2_000, 2);
        let r_slow = run_exhaustion_attack(&mut s2, &slow, 100_000, 500);
        assert!(
            r_fast.time_to_exhaustion.unwrap() < r_slow.time_to_exhaustion.unwrap(),
            "audio must beat notification to the cap"
        );
    }
}
