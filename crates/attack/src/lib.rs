//! Attack drivers and workload generators for the JGRE experiments.
//!
//! * [`AttackVector`] — one exploitable interface with everything a
//!   malicious app needs to drive it: the registered service name, the
//!   permissions to declare, and whether the `"android"` package spoof is
//!   required (`enqueueToast`).
//! * [`run_exhaustion_attack`] — Code-Snippet 2 as a harness: fire IPC
//!   requests in a loop until the victim's runtime aborts, sampling the
//!   JGR curve (Figure 3) and per-call execution times (Figures 5/6).
//! * [`BenignWorkload`] — the MonkeyRunner methodology of Observation 1:
//!   install the top-N Play apps, run each for two minutes, background it,
//!   and sample `system_server`'s JGR table and the process count
//!   (Figure 4).
//! * [`run_interleaved`] — an event-driven interleaver mixing attackers
//!   and benign apps on one timeline (Figures 8/9 and the defense
//!   experiments).
//!
//! # Example
//!
//! ```
//! use jgre_attack::AttackVector;
//! use jgre_corpus::spec::AospSpec;
//!
//! let spec = AospSpec::android_6_0_1();
//! let vectors = AttackVector::service_vectors(&spec);
//! assert_eq!(vectors.len(), 54);
//! let toast = vectors.iter().find(|v| v.method == "enqueueToast").unwrap();
//! assert!(toast.spoof_system_package);
//! ```

mod benign;
mod interleave;
mod vector;

pub use benign::{BenignSample, BenignWorkload, BenignWorkloadConfig};
pub use interleave::{run_interleaved, Actor, ActorKind, InterleaveStats};
pub use vector::{run_exhaustion_attack, AttackSample, AttackVector, ExhaustionResult};
