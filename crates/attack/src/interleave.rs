//! Event-driven interleaving of attackers and benign apps on one timeline.
//!
//! Figures 8 and 9 need several apps issuing IPC concurrently: a malicious
//! app grinding a vulnerable interface while benign apps make ordinary
//! calls (Figure 8), or four colluding attackers racing a deliberately
//! chatty benign app (Figure 9). The simulation is single-threaded, so
//! concurrency is modelled with an event queue: each actor owns a stream
//! of call events; the earliest event fires next and the call's cost
//! pushes the shared clock forward.

use jgre_corpus::spec::{JgrBehavior, ProtectionLevel};
use jgre_framework::{CallOptions, FrameworkError, System};
use jgre_sim::{EventQueue, SimDuration, SimRng, SimTime, Uid};
use serde::{Deserialize, Serialize};

use crate::AttackVector;

/// What an actor does each time it wakes.
#[derive(Debug, Clone)]
pub enum ActorKind {
    /// Grinds one vulnerable interface as fast as its handler allows.
    Attacker(AttackVector),
    /// §VI: grinds one interface but rotates across `paths` execution
    /// paths, smearing the IPC→JGR timing signature to evade a
    /// single-bucket correlator.
    MultiPathAttacker {
        /// The interface under attack.
        vector: AttackVector,
        /// Number of distinct execution paths rotated through.
        paths: u8,
    },
    /// Fires innocent IPC calls with uniformly random gaps in
    /// `[0, max_gap]` — the paper's benign app that "keeps triggering IPC
    /// calls with the interval between two IPC calls varying between 0 and
    /// 100 ms".
    ChattyBenign {
        /// Maximum think time between calls.
        max_gap: SimDuration,
    },
}

/// One participant in an interleaved run.
#[derive(Debug, Clone)]
pub struct Actor {
    /// Installed uid (install the app before building the actor).
    pub uid: Uid,
    /// Behaviour.
    pub kind: ActorKind,
}

/// Aggregate stats of an interleaved run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterleaveStats {
    /// Calls issued per actor uid, in actor order.
    pub calls_per_actor: Vec<(Uid, u64)>,
    /// Whether any victim aborted during the run.
    pub any_abort: bool,
    /// Virtual end time.
    pub ended_at: SimTime,
}

/// Runs `actors` against `system` until `duration` of virtual time passes
/// (or a victim aborts, when `stop_on_abort`).
///
/// # Example
///
/// ```
/// use jgre_attack::{run_interleaved, Actor, ActorKind, AttackVector};
/// use jgre_framework::System;
/// use jgre_sim::SimDuration;
///
/// let mut system = System::boot(5);
/// let spec = system.spec().clone();
/// let vector = AttackVector::service_vectors(&spec)
///     .into_iter()
///     .find(|v| v.service == "clipboard")
///     .unwrap();
/// let mal = system.install_app("com.evil", vector.permissions.clone());
/// let benign = system.install_app("com.benign", []);
/// let stats = run_interleaved(
///     &mut system,
///     vec![
///         Actor { uid: mal, kind: ActorKind::Attacker(vector) },
///         Actor { uid: benign, kind: ActorKind::ChattyBenign { max_gap: SimDuration::from_millis(100) } },
///     ],
///     SimDuration::from_secs(5),
///     7,
///     false,
/// );
/// assert_eq!(stats.calls_per_actor.len(), 2);
/// ```
pub fn run_interleaved(
    system: &mut System,
    actors: Vec<Actor>,
    duration: SimDuration,
    seed: u64,
    stop_on_abort: bool,
) -> InterleaveStats {
    let mut rng = SimRng::seed(seed ^ 0x1A7E_53ED);
    let start = system.now();
    let deadline = start + duration;
    let mut queue: EventQueue<usize> = EventQueue::new();
    for (i, _) in actors.iter().enumerate() {
        // Stagger starts within the first 10 ms for determinism without
        // lockstep.
        queue.schedule(start + SimDuration::from_micros(rng.range(0..10_000u64)), i);
    }
    // Innocent call pool for benign actors.
    let spec = system.spec().clone();
    let mut innocent: Vec<(String, String)> = Vec::new();
    for svc in &spec.services {
        if svc.native {
            continue;
        }
        for m in &svc.methods {
            if matches!(m.jgr, JgrBehavior::NoJgr | JgrBehavior::Transient)
                && m.permission
                    .is_none_or(|p| p.level() == ProtectionLevel::Normal)
                && m.permission.is_none()
            {
                innocent.push((svc.name.clone(), m.name.clone()));
            }
        }
    }

    let mut calls = vec![0u64; actors.len()];
    let mut any_abort = false;
    while let Some((at, idx)) = queue.pop() {
        if at >= deadline {
            break;
        }
        if at > system.now() {
            system.clock().advance_to(at);
        }
        let actor = &actors[idx];
        let aborted = match &actor.kind {
            ActorKind::Attacker(vector) => {
                match system.call_service(
                    actor.uid,
                    &vector.service,
                    &vector.method,
                    vector.call_options(),
                ) {
                    Ok(o) => {
                        calls[idx] += 1;
                        o.host_aborted
                    }
                    Err(FrameworkError::ServiceDead | FrameworkError::UnknownService(_)) => false,
                    Err(FrameworkError::UnknownApp) => false,
                    Err(e) => panic!("attacker {idx} failed: {e}"),
                }
            }
            ActorKind::MultiPathAttacker { vector, paths } => {
                let mut options = vector.call_options();
                options.path_variant = (calls[idx] % (*paths).max(1) as u64) as u8;
                match system.call_service(actor.uid, &vector.service, &vector.method, options) {
                    Ok(o) => {
                        calls[idx] += 1;
                        o.host_aborted
                    }
                    Err(FrameworkError::ServiceDead | FrameworkError::UnknownService(_)) => false,
                    Err(FrameworkError::UnknownApp) => false,
                    Err(e) => panic!("multi-path attacker {idx} failed: {e}"),
                }
            }
            ActorKind::ChattyBenign { .. } => {
                let (svc, method) = rng
                    .choose(&innocent)
                    .expect("innocent pool is never empty")
                    .clone();
                match system.call_service(actor.uid, &svc, &method, CallOptions::default()) {
                    Ok(_) => {
                        calls[idx] += 1;
                        false
                    }
                    Err(FrameworkError::ServiceDead | FrameworkError::UnknownService(_)) => false,
                    Err(e) => panic!("benign actor {idx} failed: {e}"),
                }
            }
        };
        if aborted {
            any_abort = true;
            if stop_on_abort {
                break;
            }
        }
        let next = match &actor.kind {
            ActorKind::Attacker(_) | ActorKind::MultiPathAttacker { .. } => {
                system.now() + SimDuration::from_micros(rng.range(1..50u64))
            }
            ActorKind::ChattyBenign { max_gap } => {
                system.now() + SimDuration::from_micros(rng.range(0..=max_gap.as_micros()))
            }
        };
        if next < deadline {
            queue.schedule(next, idx);
        }
    }
    InterleaveStats {
        calls_per_actor: actors
            .iter()
            .zip(&calls)
            .map(|(a, &c)| (a.uid, c))
            .collect(),
        any_abort,
        ended_at: system.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_framework::SystemConfig;

    #[test]
    fn all_actors_make_progress() {
        let mut system = System::boot(3);
        let spec = system.spec().clone();
        let vector = AttackVector::service_vectors(&spec)
            .into_iter()
            .find(|v| v.service == "audio" && v.method == "startWatchingRoutes")
            .unwrap();
        let mal = system.install_app("com.evil", vector.permissions.clone());
        let b1 = system.install_app("com.benign1", []);
        let b2 = system.install_app("com.benign2", []);
        let stats = run_interleaved(
            &mut system,
            vec![
                Actor {
                    uid: mal,
                    kind: ActorKind::Attacker(vector),
                },
                Actor {
                    uid: b1,
                    kind: ActorKind::ChattyBenign {
                        max_gap: SimDuration::from_millis(50),
                    },
                },
                Actor {
                    uid: b2,
                    kind: ActorKind::ChattyBenign {
                        max_gap: SimDuration::from_millis(100),
                    },
                },
            ],
            SimDuration::from_secs(20),
            99,
            false,
        );
        for (uid, calls) in &stats.calls_per_actor {
            assert!(*calls > 0, "{uid} made no calls");
        }
    }

    #[test]
    fn colluding_attackers_abort_a_small_table() {
        let mut system = System::boot_with(SystemConfig {
            seed: 4,
            jgr_capacity: Some(400),
            ..SystemConfig::default()
        });
        let spec = system.spec().clone();
        let vectors: Vec<_> = AttackVector::service_vectors(&spec)
            .into_iter()
            .filter(|v| v.permissions.is_empty())
            .take(4)
            .collect();
        let actors: Vec<Actor> = vectors
            .into_iter()
            .enumerate()
            .map(|(i, v)| Actor {
                uid: system.install_app(format!("com.evil{i}"), v.permissions.clone()),
                kind: ActorKind::Attacker(v),
            })
            .collect();
        let stats = run_interleaved(&mut system, actors, SimDuration::from_secs(2_000), 5, true);
        assert!(
            stats.any_abort,
            "4 colluding attackers must blow a 400-cap table"
        );
        assert_eq!(system.soft_reboots(), 1);
    }

    #[test]
    fn interleaving_is_deterministic() {
        let run = |seed| {
            let mut system = System::boot(seed);
            let spec = system.spec().clone();
            let vector = AttackVector::service_vectors(&spec)
                .into_iter()
                .find(|v| v.service == "clipboard")
                .unwrap();
            let mal = system.install_app("com.evil", vec![]);
            let b = system.install_app("com.benign", vec![]);
            run_interleaved(
                &mut system,
                vec![
                    Actor {
                        uid: mal,
                        kind: ActorKind::Attacker(vector),
                    },
                    Actor {
                        uid: b,
                        kind: ActorKind::ChattyBenign {
                            max_gap: SimDuration::from_millis(80),
                        },
                    },
                ],
                SimDuration::from_secs(5),
                123,
                false,
            )
        };
        assert_eq!(run(8), run(8));
    }
}
