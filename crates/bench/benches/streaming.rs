//! T-STREAM: throughput and latency of the streaming defender.
//!
//! Pins three properties of `jgre_defense::stream` on the synthetic
//! telemetry source:
//!
//! 1. **Determinism** — the 1-thread and 2-thread serve reports are
//!    equal down to the serialized bytes (the invariance the service
//!    tests check on short streams, re-asserted at benchmark scale).
//! 2. **Sustained throughput** — the full pipeline (encode → framed
//!    decode → ring → incremental scorer) clears at least 50k events/sec
//!    of wall-clock ingest; the measured rate plus the virtual-time
//!    p50/p99 detection lags go into the artifact so regressions show up
//!    as numbers.
//! 3. **Incrementality** — scoring a poll by snapshotting the persistent
//!    [`IncrementalScorer`] beats rebuilding `segment_tree_scores` from
//!    the accumulated log on every poll by ≥ 5× once the window holds
//!    ≥ 4096 events, while producing the identical final report.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_defense::stream::{run_serve, ServeConfig};
use jgre_defense::{segment_tree_scores, IncrementalScorer, ScoreParams};
use jgre_sim::source::{EventSource, SourceConfig, SourceEventKind};
use jgre_sim::{SimDuration, SimTime, Uid};
use serde::Serialize;

/// One virtual second at the default 10k events/sec.
fn pin_config() -> ServeConfig {
    ServeConfig::default()
}

/// The replayed poll workload: the synthetic stream's events plus a
/// scoring pass every `poll_every` adds, shared by both contenders.
struct PollWorkload {
    events: Vec<(SimTime, Option<(Uid, String)>)>,
    poll_every: u64,
    window_events: usize,
}

impl PollWorkload {
    fn synthesize() -> Self {
        let source_config = SourceConfig {
            duration: SimDuration::from_millis(600),
            ..SourceConfig::default()
        };
        let mut source = EventSource::new(source_config);
        let mut events = Vec::new();
        while let Some(event) = source.next() {
            let call = match event.kind {
                SourceEventKind::Call { uid, interface } => {
                    Some((uid, source.interface_label(interface)))
                }
                SourceEventKind::Add => None,
            };
            events.push((event.at, call));
        }
        let adds = events.iter().filter(|(_, c)| c.is_none()).count() as u64;
        Self {
            events,
            poll_every: adds / 24,
            window_events: 0,
        }
    }

    /// Persistent correlator: every event enters once; a poll is a
    /// snapshot.
    fn run_incremental(&self, params: ScoreParams) -> (u64, u64) {
        let mut scorer = IncrementalScorer::new(params);
        let mut adds = 0u64;
        let mut polls = 0u64;
        let mut last_top = 0u64;
        for (at, call) in &self.events {
            match call {
                Some((uid, ipc_type)) => scorer.push_ipc(*uid, ipc_type, *at),
                None => {
                    scorer.push_add(*at);
                    adds += 1;
                    if adds.is_multiple_of(self.poll_every) {
                        polls += 1;
                        last_top = scorer.report().top().map(|t| t.score).unwrap_or_default();
                    }
                }
            }
        }
        (polls, last_top)
    }

    /// The pre-streaming defender: every poll rebuilds the histogram
    /// forest from the whole accumulated log.
    fn run_rebuild(&self, params: ScoreParams) -> (u64, u64) {
        let mut ipc_by_uid: BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>> = BTreeMap::new();
        let mut jgr_adds: Vec<SimTime> = Vec::new();
        let mut polls = 0u64;
        let mut last_top = 0u64;
        for (at, call) in &self.events {
            match call {
                Some((uid, ipc_type)) => ipc_by_uid
                    .entry(*uid)
                    .or_default()
                    .entry(ipc_type.clone())
                    .or_default()
                    .push(*at),
                None => {
                    jgr_adds.push(*at);
                    if (jgr_adds.len() as u64).is_multiple_of(self.poll_every) {
                        polls += 1;
                        last_top = segment_tree_scores(&ipc_by_uid, &jgr_adds, params)
                            .top()
                            .map(|t| t.score)
                            .unwrap_or_default();
                    }
                }
            }
        }
        (polls, last_top)
    }
}

#[derive(Debug, Serialize)]
struct StreamingArtifact {
    events_offered: u64,
    events_accepted: u64,
    verdicts: u64,
    wall_events_per_sec_1t: f64,
    wall_events_per_sec_2t: f64,
    latency_p50_us: Option<u64>,
    latency_p99_us: Option<u64>,
    latency_max_us: Option<u64>,
    window_events: usize,
    poll_count: u64,
    incremental_s: f64,
    rebuild_s: f64,
    incremental_speedup: f64,
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.bench_function("serve_100ms_10keps", |b| {
        let config = ServeConfig {
            source: SourceConfig {
                duration: SimDuration::from_millis(100),
                ..SourceConfig::default()
            },
            ..ServeConfig::default()
        };
        b.iter(|| run_serve(black_box(&config)).unwrap());
    });
    group.finish();

    // --- sustained throughput + latency quantiles --------------------
    let config = pin_config();
    let start = Instant::now();
    let report_1t = run_serve(&config).unwrap();
    let serve_1t_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let report_2t = run_serve(&ServeConfig {
        threads: 2,
        ..config
    })
    .unwrap();
    let serve_2t_s = start.elapsed().as_secs_f64();

    assert_eq!(
        report_1t, report_2t,
        "1-thread and 2-thread serve must produce identical reports"
    );
    assert_eq!(
        report_1t.to_json(),
        report_2t.to_json(),
        "serve report serialization must be byte-identical across thread counts"
    );
    assert!(
        !report_1t.verdicts.is_empty(),
        "the synthetic attacker must be caught"
    );
    let p50 = report_1t.latency.p50_us.expect("adds were measured");
    let p99 = report_1t.latency.p99_us.expect("adds were measured");
    assert!(p50 <= p99, "quantiles must be ordered: p50={p50} p99={p99}");
    // At 10k events/sec the ring (8µs service) never saturates: virtual
    // lag stays bounded by a few service quanta.
    assert!(p99 < 1_000, "virtual detection lag exploded: p99={p99}µs");

    let wall_events_per_sec_1t = report_1t.ingest.offered as f64 / serve_1t_s;
    let wall_events_per_sec_2t = report_2t.ingest.offered as f64 / serve_2t_s;
    assert!(
        wall_events_per_sec_1t >= 50_000.0,
        "streaming ingest collapsed: {wall_events_per_sec_1t:.0} events/sec"
    );

    // --- incremental vs rebuild-per-poll -----------------------------
    let params = ScoreParams::default();
    let mut workload = PollWorkload::synthesize();
    workload.window_events = workload.events.len();
    assert!(
        workload.window_events >= 4_096,
        "speedup is only claimed at window >= 4096 events, got {}",
        workload.window_events
    );
    assert!(workload.poll_every > 0, "workload must poll");

    // Warm up allocators and caches on both paths before timing.
    let _ = workload.run_incremental(params);

    let start = Instant::now();
    let (inc_polls, inc_top) = workload.run_incremental(params);
    let incremental_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let (reb_polls, reb_top) = workload.run_rebuild(params);
    let rebuild_s = start.elapsed().as_secs_f64();

    assert_eq!(inc_polls, reb_polls, "both paths must poll identically");
    assert_eq!(
        inc_top, reb_top,
        "incremental and rebuild-per-poll must agree on the final score"
    );
    let incremental_speedup = rebuild_s / incremental_s;
    assert!(
        incremental_speedup >= 5.0,
        "incremental correlation must beat rebuild-per-poll by >= 5x at \
         window {} (got {incremental_speedup:.1}x: incremental {incremental_s:.3}s, \
         rebuild {rebuild_s:.3}s)",
        workload.window_events
    );

    let artifact = StreamingArtifact {
        events_offered: report_1t.ingest.offered,
        events_accepted: report_1t.ingest.accepted,
        verdicts: report_1t.verdicts.len() as u64,
        wall_events_per_sec_1t,
        wall_events_per_sec_2t,
        latency_p50_us: report_1t.latency.p50_us,
        latency_p99_us: report_1t.latency.p99_us,
        latency_max_us: report_1t.latency.max_us,
        window_events: workload.window_events,
        poll_count: inc_polls,
        incremental_s,
        rebuild_s,
        incremental_speedup,
    };
    let rendered = format!(
        "streaming defender throughput (1 virtual second @ 10k events/sec)\n\
         ingest:    {} offered, {} accepted, {} verdicts\n\
         wall rate: {wall_events_per_sec_1t:>9.0} events/sec (1t), \
         {wall_events_per_sec_2t:>9.0} events/sec (2t)\n\
         latency:   p50={p50}µs p99={p99}µs max={}µs (virtual arrival→scored)\n\
         polls:     {inc_polls} over a {}-event window\n\
         incremental {incremental_s:>7.3} s vs rebuild-per-poll {rebuild_s:>7.3} s \
         — {incremental_speedup:.1}x\n",
        report_1t.ingest.offered,
        report_1t.ingest.accepted,
        report_1t.verdicts.len(),
        report_1t.latency.max_us.unwrap_or_default(),
        artifact.window_events,
    );
    println!("{rendered}");
    if artifacts_enabled() {
        write_artifact("streaming_throughput", &artifact, &rendered);
    }
}

criterion_group!(benches, bench_streaming);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
