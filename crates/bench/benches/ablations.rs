//! Ablations called out in DESIGN.md:
//!
//! 1. **Segment tree vs naive array** in Algorithm 1 (§V-D.2's
//!    optimisation) across Δ widths — the tree's advantage grows with Δ
//!    because each pair updates a wider interval.
//! 2. **Alarm-threshold sensitivity**: how the record/trigger thresholds
//!    move the detection point (calls survived before the alarm).
//! 3. **Δ sensitivity** of the attacker/benign score separation (the
//!    Figure 9 axis).
//! 4. **Protection placement**: helper-side (client) vs server-side
//!    per-process threshold under a direct-Binder attacker.
//! 5. **Multi-path evasion (§VI)**: rotating execution paths dilutes the
//!    single-bucket correlator's score; path classification restores it.

use criterion::{criterion_group, BenchmarkId, Criterion};
use jgre_attack::{run_interleaved, Actor, ActorKind, AttackVector};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_corpus::spec::AospSpec;
use jgre_defense::{naive_scores, segment_tree_scores, DefenderConfig, JgreDefender, ScoreParams};
use jgre_framework::{CallOptions, CallStatus, System, SystemConfig};
use jgre_sim::{SimDuration, SimTime, Uid};
use serde::Serialize;

type IpcByUid = std::collections::BTreeMap<Uid, std::collections::BTreeMap<String, Vec<SimTime>>>;

fn fixture(adds: usize) -> (IpcByUid, Vec<SimTime>) {
    let mut ipc: IpcByUid = Default::default();
    let mut jgr = Vec::new();
    for k in 0..adds as u64 {
        let call = 5_000 + k * 2_100;
        ipc.entry(Uid::new(10_061))
            .or_default()
            .entry("I.attack".into())
            .or_default()
            .push(SimTime::from_micros(call));
        jgr.push(SimTime::from_micros(call + 900));
        // Benign noise.
        let b = 5_137 + k * 6_733 + (k * k * 17) % 1_811;
        ipc.entry(Uid::new(10_065))
            .or_default()
            .entry("I.benign".into())
            .or_default()
            .push(SimTime::from_micros(b));
    }
    (ipc, jgr)
}

#[derive(Debug, Serialize)]
struct ThresholdRow {
    record_threshold: usize,
    trigger_threshold: usize,
    detected_at_calls: u64,
    victim_jgr_at_detection: usize,
}

/// Ablation 2: sweep the alarm thresholds and report when detection fires.
fn threshold_sensitivity() -> Vec<ThresholdRow> {
    let mut rows = Vec::new();
    for (record, trigger) in [
        (100usize, 300usize),
        (250, 750),
        (500, 1_500),
        (1_000, 2_400),
    ] {
        let mut system = System::boot_with(SystemConfig {
            seed: 5,
            jgr_capacity: Some(3_200),
            ..SystemConfig::default()
        });
        let defender = JgreDefender::install(
            &mut system,
            DefenderConfig {
                record_threshold: record,
                trigger_threshold: trigger,
                normal_level: record / 2,
                ..DefenderConfig::default()
            },
        )
        .expect("bench defender config is valid");
        let mal = system.install_app("com.evil", []);
        let mut calls = 0u64;
        let detected = loop {
            let o = system
                .call_service(
                    mal,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .expect("clipboard registered");
            calls += 1;
            assert!(!o.host_aborted, "defense must fire before exhaustion");
            if let Some(d) = defender.poll(&mut system) {
                break d;
            }
        };
        rows.push(ThresholdRow {
            record_threshold: record,
            trigger_threshold: trigger,
            detected_at_calls: calls,
            victim_jgr_at_detection: detected
                .scores
                .first()
                .map(|s| s.score as usize)
                .unwrap_or(0),
        });
    }
    rows
}

#[derive(Debug, Serialize)]
struct DeltaRow {
    delta_us: u64,
    attacker_score: u64,
    benign_score: u64,
}

/// Ablation 3: Δ sweep on a fixed workload.
fn delta_sensitivity() -> Vec<DeltaRow> {
    let (ipc, jgr) = fixture(4_000);
    let mut rows = Vec::new();
    for delta_us in [40u64, 79, 400, 1_000, 1_900, 3_583, 6_000] {
        let report = segment_tree_scores(
            &ipc,
            &jgr,
            ScoreParams {
                delta: SimDuration::from_micros(delta_us),
                ..ScoreParams::default()
            },
        );
        let score_of = |uid: Uid| {
            report
                .scores
                .iter()
                .find(|s| s.uid == uid)
                .map(|s| s.score)
                .unwrap_or(0)
        };
        rows.push(DeltaRow {
            delta_us,
            attacker_score: score_of(Uid::new(10_061)),
            benign_score: score_of(Uid::new(10_065)),
        });
    }
    rows
}

#[derive(Debug, Serialize)]
struct PlacementRow {
    placement: &'static str,
    attacker_retained_after_300_calls: usize,
}

/// Ablation 4: the same threshold enforced client-side vs server-side.
fn placement_comparison() -> Vec<PlacementRow> {
    // Client-side (wifi helper, limit 50) — attacker skips the helper.
    let mut system = System::boot_with(SystemConfig {
        seed: 6,
        jgr_capacity: Some(5_000),
        ..SystemConfig::default()
    });
    let mal = system.install_app("com.evil", [jgre_corpus::spec::Permission::WakeLock]);
    for _ in 0..300 {
        system
            .call_service(mal, "wifi", "acquireWifiLock", CallOptions::default())
            .expect("wifi registered");
    }
    let helper_side = system.retained_entries("wifi", "acquireWifiLock");

    // Server-side (display, limit 1) — attacker is actually bounded.
    let mut system = System::boot_with(SystemConfig {
        seed: 6,
        jgr_capacity: Some(5_000),
        ..SystemConfig::default()
    });
    let mal = system.install_app("com.evil", []);
    let mut completed = 0usize;
    for _ in 0..300 {
        if system
            .call_service(mal, "display", "registerCallback", CallOptions::default())
            .expect("display registered")
            .status
            == CallStatus::Completed
        {
            completed += 1;
        }
    }
    let server_side = system.retained_entries("display", "registerCallback");
    assert_eq!(completed, server_side);
    vec![
        PlacementRow {
            placement: "helper (client-side) threshold, direct-Binder attacker",
            attacker_retained_after_300_calls: helper_side,
        },
        PlacementRow {
            placement: "server-side per-process threshold",
            attacker_retained_after_300_calls: server_side,
        },
    ]
}

#[derive(Debug, Serialize)]
struct MultiPathRow {
    paths: u8,
    classify: bool,
    attacker_score: u64,
}

/// Ablation 5: multi-path smear vs path-classified scoring (§VI).
fn multipath_comparison() -> Vec<MultiPathRow> {
    let mut rows = Vec::new();
    for (paths, classify) in [(1u8, false), (4, false), (4, true)] {
        let mut system = System::boot_with(SystemConfig {
            seed: 31,
            jgr_capacity: Some(3_200),
            ..SystemConfig::default()
        });
        let defender = JgreDefender::install(
            &mut system,
            DefenderConfig {
                record_threshold: 250,
                trigger_threshold: 750,
                normal_level: 150,
                classify_paths: classify,
                ..DefenderConfig::default()
            },
        )
        .expect("bench defender config is valid");
        let spec = AospSpec::android_6_0_1();
        let vector = AttackVector::service_vectors(&spec)
            .into_iter()
            .find(|v| v.service == "mount")
            .expect("mount is vulnerable");
        let mal = system.install_app("com.evil", vector.permissions.clone());
        let actors = vec![Actor {
            uid: mal,
            kind: ActorKind::MultiPathAttacker { vector, paths },
        }];
        for _ in 0..10_000 {
            run_interleaved(
                &mut system,
                actors.clone(),
                SimDuration::from_millis(500),
                31,
                true,
            );
            if !defender.monitor().alarmed_pids().is_empty() {
                break;
            }
        }
        let victim = system.system_server_pid();
        let report = defender
            .score_only(&system, victim, SimDuration::from_micros(1_800))
            .expect("alarm implies recording");
        rows.push(MultiPathRow {
            paths,
            classify,
            attacker_score: report.scores.first().map(|s| s.score).unwrap_or(0),
        });
    }
    rows
}

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let thresholds = threshold_sensitivity();
    let mut text = String::from("Ablation — alarm threshold sensitivity\n");
    for r in &thresholds {
        text.push_str(&format!(
            "record {:>5} / trigger {:>5}: detected after {:>5} calls\n",
            r.record_threshold, r.trigger_threshold, r.detected_at_calls
        ));
    }
    write_artifact("ablation_thresholds", &thresholds, &text);

    let deltas = delta_sensitivity();
    let mut text = String::from("Ablation — Δ sensitivity (attacker vs benign score)\n");
    for r in &deltas {
        text.push_str(&format!(
            "Δ={:>5}µs: attacker {:>6}, benign {:>6}\n",
            r.delta_us, r.attacker_score, r.benign_score
        ));
    }
    write_artifact("ablation_delta", &deltas, &text);
    for r in &deltas {
        assert!(
            r.attacker_score > r.benign_score,
            "Δ={} failed to separate",
            r.delta_us
        );
    }

    let placement = placement_comparison();
    let mut text = String::from("Ablation — protection placement under direct-Binder attack\n");
    for r in &placement {
        text.push_str(&format!(
            "{}: attacker retained {}\n",
            r.placement, r.attacker_retained_after_300_calls
        ));
    }
    write_artifact("ablation_placement", &placement, &text);
    assert!(placement[0].attacker_retained_after_300_calls >= 300);
    assert!(placement[1].attacker_retained_after_300_calls <= 1);

    let multipath = multipath_comparison();
    let mut text = String::from(
        "Ablation — multi-path evasion vs path classification (§VI)
",
    );
    for r in &multipath {
        text.push_str(&format!(
            "paths={} classify={}: attacker score {}
",
            r.paths, r.classify, r.attacker_score
        ));
    }
    write_artifact("ablation_multipath", &multipath, &text);
    assert!(
        multipath[1].attacker_score < multipath[0].attacker_score,
        "path rotation must dilute the single-bucket score"
    );
    assert!(
        multipath[2].attacker_score > multipath[1].attacker_score,
        "classification must restore concentration"
    );
}

fn bench_histograms(c: &mut Criterion) {
    let (ipc, jgr) = fixture(8_000);
    let mut group = c.benchmark_group("algorithm1_histogram");
    group.sample_size(20);
    for delta_us in [79u64, 1_800, 3_583] {
        let params = ScoreParams {
            delta: SimDuration::from_micros(delta_us),
            ..ScoreParams::default()
        };
        group.bench_with_input(
            BenchmarkId::new("segment_tree", delta_us),
            &params,
            |b, p| b.iter(|| segment_tree_scores(std::hint::black_box(&ipc), &jgr, *p)),
        );
        group.bench_with_input(BenchmarkId::new("naive", delta_us), &params, |b, p| {
            b.iter(|| naive_scores(std::hint::black_box(&ipc), &jgr, *p));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_histograms);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
