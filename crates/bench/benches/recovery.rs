//! Crash-consistency costs: checkpoint writes and replay-from-checkpoint.
//!
//! The artifact pass runs the `defender-crash` column of the chaos matrix
//! and tabulates the recovery bill — crashes, restarts, records replayed,
//! and the virtual recovery delay (supervisor backoff + replay) — the
//! numbers the EXPERIMENTS.md recovery table quotes. The timed pass
//! measures the two real-time kernels of the crash-consistent defender:
//! writing one checkpoint of a loaded monitor, and a full resume
//! (reopen + restore + replay) whose replay is bounded by the checkpoint
//! interval.

use std::fmt::Write as _;
use std::rc::Rc;

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};
use jgre_defense::{CrashConsistentConfig, CrashConsistentDefender, DefenderConfig, MemoryStore};
use jgre_framework::{CallOptions, System, SystemConfig};
use jgre_sim::{FaultKind, FaultPlan};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let m = experiments::chaos_matrix(
        ExperimentScale::quick().with_seed(0),
        Some(FaultKind::DefenderCrash),
    );
    let cells: Vec<_> = m
        .cells
        .iter()
        .filter(|c| c.fault == "defender-crash")
        .cloned()
        .collect();
    let mut rendered = String::from(
        "Recovery cost — defender-crash cells, quick scale, seed 0\n\
         (recovery delay = supervisor backoff + journal replay, virtual µs)\n",
    );
    let _ = writeln!(
        rendered,
        "{:<42} {:<9} {:>7} {:>8} {:>8} {:>12} {:>4}",
        "attack", "intensity", "crashes", "restarts", "replayed", "delay_us", "det"
    );
    for c in &cells {
        let _ = writeln!(
            rendered,
            "{:<42} {:<9} {:>7} {:>8} {:>8} {:>12} {:>4}",
            c.attack,
            c.intensity,
            c.defender_crashes,
            c.defender_restarts,
            c.replayed_records,
            c.recovery_delay_us,
            if c.detected { "yes" } else { "no" },
        );
    }
    write_artifact("recovery", &cells, &rendered);
    assert!(
        cells.iter().all(|c| c.violations.is_empty()),
        "recovery invariants must hold:\n{rendered}"
    );
}

/// A defended system whose journal and watch tables carry real load:
/// returns the system, the defender, its config, and a handle on the
/// shared store (for freezing its bytes).
fn loaded_defender() -> (
    System,
    CrashConsistentDefender,
    CrashConsistentConfig,
    Rc<MemoryStore>,
) {
    let scale = ExperimentScale::quick();
    let mut system = System::boot_with(SystemConfig {
        seed: 5,
        jgr_capacity: Some(scale.jgr_capacity),
        faults: FaultPlan::none(),
        ..SystemConfig::default()
    });
    let config = CrashConsistentConfig {
        defender: DefenderConfig {
            ..scale.defender_config()
        },
        ..CrashConsistentConfig::default()
    };
    let store = Rc::new(MemoryStore::new());
    let mut defender =
        CrashConsistentDefender::install(&mut system, config.clone(), store.clone()).unwrap();
    let mal = system.install_app("com.evil", []);
    // Enough traffic to fill the watch tables, not enough to alarm.
    for _ in 0..200u32 {
        system
            .call_service(
                mal,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .expect("clipboard registered");
        defender.poll(&mut system);
    }
    (system, defender, config, store)
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);

    let (system, mut defender, _, _) = loaded_defender();
    group.bench_function("checkpoint_write", |b| {
        b.iter(|| defender.checkpoint_now(&system));
    });
    drop((system, defender));

    // Freeze the store as a crashed process would leave it, then time a
    // full resume from those bytes.
    let (mut system, defender, config, store) = loaded_defender();
    drop(defender);
    let interval = config.checkpoint_interval;
    let journal_bytes = store.journal_bytes();
    let checkpoint_bytes = store.checkpoint_bytes();
    group.bench_function("resume_replay_from_checkpoint", |b| {
        b.iter(|| {
            let s = MemoryStore::new();
            s.set_journal_bytes(journal_bytes.clone());
            s.set_checkpoint_bytes(checkpoint_bytes.clone());
            system.clear_jgr_observers();
            let resumed =
                CrashConsistentDefender::resume(&mut system, config.clone(), Rc::new(s)).unwrap();
            assert!(
                resumed.stats().replayed_records <= interval,
                "replay must be bounded by the checkpoint interval"
            );
        });
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
