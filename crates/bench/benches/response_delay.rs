//! §V-D.1: detection (response) delays for all 57 vulnerable interfaces
//! at paper scale. The paper reports most below one second, three above,
//! and `midi.registerDeviceServer` slowest at ≈3.6 s.

use criterion::{criterion_group, Criterion};
use jgre_attack::AttackVector;
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::experiments::run_defended_attack;
use jgre_core::{experiments, ExperimentScale};
use jgre_corpus::spec::AospSpec;
use jgre_defense::JgreDefender;
use jgre_framework::{System, SystemConfig};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let r = experiments::response_delay(ExperimentScale::paper());
    write_artifact("response_delay", &r, &r.render());
    assert_eq!(r.rows.len(), 57);
    let slow = r.above_one_second();
    assert!(
        (1..=6).contains(&slow.len()),
        "a small set of slow detections expected, got {}",
        slow.len()
    );
    assert!(
        r.slowest().interface.contains("registerDeviceServer"),
        "slowest should be the midi interface, got {}",
        r.slowest().interface
    );
    assert!(
        (2_000_000..6_000_000).contains(&r.slowest().response_delay_us),
        "slowest ≈3.6s, got {}µs",
        r.slowest().response_delay_us
    );
    // Every detection is far faster than the fastest exhaustion (~100 s):
    // the attack cannot outrun the defense.
    for row in &r.rows {
        assert!(row.response_delay_us < 50_000_000, "{row:?}");
    }
}

fn bench_defended_attack(c: &mut Criterion) {
    let spec = AospSpec::android_6_0_1();
    let vector = AttackVector::service_vectors(&spec)
        .into_iter()
        .find(|v| v.service == "clipboard")
        .expect("clipboard is vulnerable");
    let mut group = c.benchmark_group("defense");
    group.sample_size(10);
    group.bench_function("detect_and_recover_quick_scale", |b| {
        b.iter(|| {
            let scale = ExperimentScale::quick();
            let mut system = System::boot_with(SystemConfig {
                seed: 5,
                jgr_capacity: Some(scale.jgr_capacity),
                ..SystemConfig::default()
            });
            let defender = JgreDefender::install(&mut system, scale.defender_config())
                .expect("bench defender config is valid");
            run_defended_attack(&mut system, &defender, &vector, 10_000)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_defended_attack);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
