//! Figure 4: the benign top-300-apps baseline at paper scale (Observation
//! 1), plus a benign-session kernel benchmark.

use criterion::{criterion_group, Criterion};
use jgre_attack::{BenignWorkload, BenignWorkloadConfig};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};
use jgre_framework::{System, STOCK_PROCESS_COUNT};
use jgre_sim::SimDuration;

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    // The paper's protocol: 300 apps in 3 rounds of 100, two minutes each.
    let fig4 = experiments::fig4(ExperimentScale::paper(), 300, 120);
    write_artifact("fig4_benign_baseline", &fig4, &fig4.render());
    assert!(
        fig4.jgr_max < 5_000,
        "benign JGR must stay in the small band, got {}",
        fig4.jgr_max
    );
    assert!(fig4.proc_min >= STOCK_PROCESS_COUNT);
    assert!(fig4.proc_max <= STOCK_PROCESS_COUNT + 39);
}

fn bench_benign_session(c: &mut Criterion) {
    c.bench_function("benign_workload_20_apps", |b| {
        b.iter(|| {
            let mut system = System::boot(7);
            system.driver_mut().set_log_enabled(false);
            let mut workload = BenignWorkload::new(
                BenignWorkloadConfig {
                    apps: 20,
                    apps_per_round: 20,
                    session: SimDuration::from_secs(15),
                    calls_per_session: 15,
                    sample_every: SimDuration::from_secs(30),
                },
                7,
            );
            workload.run(&mut system)
        });
    });
}

criterion_group!(benches, bench_benign_session);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
