//! T-FUZZ: throughput and determinism of the coverage-guided Parcel
//! fuzzer.
//!
//! Pins three properties of `jgre_fuzz`:
//!
//! 1. **Determinism** — the 1-thread and 2-thread campaign reports are
//!    equal down to the serialized bytes (the invariance the CI smoke
//!    job checks on a tiny budget, re-asserted at benchmark scale).
//! 2. **Sustained throughput** — the full loop (plan → boot → parcel
//!    build → raw dispatch → coverage fold) clears at least 10k
//!    execs/sec of wall-clock; the measured rate goes into the artifact
//!    so regressions show up as numbers.
//! 3. **Discovery** — the benchmark-scale budget already rediscovers
//!    leaking interfaces, so the artifact pins execs-to-first-leak.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::ExperimentScale;
use jgre_fuzz::{run_fuzz, FuzzConfig};
use serde::Serialize;

/// The default campaign: a full probe sweep over the ~2430-method
/// surface plus a mutation tail — a few seconds of wall-clock per run.
fn pin_config() -> FuzzConfig {
    let mut config = FuzzConfig::new(ExperimentScale::quick());
    config.seed = 7;
    config
}

#[derive(Debug, Serialize)]
struct FuzzThroughputArtifact {
    iters: u64,
    execs: u64,
    minimize_execs: u64,
    wall_execs_per_sec_1t: f64,
    wall_execs_per_sec_2t: f64,
    coverage_edges: usize,
    completed_pairs: usize,
    surface_pairs: usize,
    findings: usize,
    execs_to_first_leak: Option<u64>,
}

fn bench_fuzz(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz");
    group.sample_size(10);
    group.bench_function("campaign_2k_execs", |b| {
        let mut config = FuzzConfig::new(ExperimentScale::quick());
        config.seed = 7;
        config.iters = 2_000;
        b.iter(|| run_fuzz(black_box(&config)));
    });
    group.finish();

    // --- sustained throughput + thread-count invariance --------------
    let config = pin_config();
    let start = Instant::now();
    let report_1t = run_fuzz(&config);
    let fuzz_1t_s = start.elapsed().as_secs_f64();
    let mut threaded = config.clone();
    threaded.threads = 2;
    let start = Instant::now();
    let report_2t = run_fuzz(&threaded);
    let fuzz_2t_s = start.elapsed().as_secs_f64();

    assert_eq!(
        report_1t, report_2t,
        "1-thread and 2-thread campaigns must produce identical reports"
    );
    assert_eq!(
        report_1t.to_json(),
        report_2t.to_json(),
        "fuzz report serialization must be byte-identical across thread counts"
    );

    let total_1t = report_1t.execs + report_1t.minimize_execs;
    let total_2t = report_2t.execs + report_2t.minimize_execs;
    let wall_execs_per_sec_1t = total_1t as f64 / fuzz_1t_s;
    let wall_execs_per_sec_2t = total_2t as f64 / fuzz_2t_s;
    assert!(
        wall_execs_per_sec_1t >= 10_000.0,
        "fuzz throughput collapsed: {wall_execs_per_sec_1t:.0} execs/sec"
    );

    // The budget reaches leaking interfaces and the hardened dispatch
    // keeps every malformed input on a typed rejection.
    assert!(
        !report_1t.findings.is_empty(),
        "benchmark-scale campaign found no leaks"
    );
    assert_eq!(report_1t.host_aborts, 0, "a fuzz input crashed a host");

    let artifact = FuzzThroughputArtifact {
        iters: config.iters,
        execs: report_1t.execs,
        minimize_execs: report_1t.minimize_execs,
        wall_execs_per_sec_1t,
        wall_execs_per_sec_2t,
        coverage_edges: report_1t.coverage.edges,
        completed_pairs: report_1t.coverage.completed_pairs,
        surface_pairs: report_1t.coverage.pairs,
        findings: report_1t.findings.len(),
        execs_to_first_leak: report_1t.execs_to_first_leak,
    };
    let rendered = format!(
        "fuzz throughput ({} budgeted execs, seed {})\n\
         execs:     {} budgeted + {} minimizing\n\
         wall rate: {wall_execs_per_sec_1t:>9.0} execs/sec (1t), \
         {wall_execs_per_sec_2t:>9.0} execs/sec (2t)\n\
         coverage:  {} edges, {}/{} pairs completed\n\
         findings:  {}  (first at exec {})\n",
        config.iters,
        config.seed,
        report_1t.execs,
        report_1t.minimize_execs,
        report_1t.coverage.edges,
        report_1t.coverage.completed_pairs,
        report_1t.coverage.pairs,
        report_1t.findings.len(),
        report_1t
            .execs_to_first_leak
            .map_or_else(|| "-".to_owned(), |e| e.to_string()),
    );
    println!("{rendered}");
    if artifacts_enabled() {
        write_artifact("fuzz_throughput", &artifact, &rendered);
    }
}

criterion_group!(benches, bench_fuzz);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
