//! Robustness: the seeded fault matrix as a bench + artifact generator.
//!
//! The artifact pass re-runs the full matrix at quick scale (the same
//! shape `jgre chaos` ships) and asserts the recovery invariants; the
//! timed pass measures one degraded detection (severe IPC-record loss →
//! call-count fallback) so fault-layer overhead regressions show up.

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};
use jgre_defense::{DefenderConfig, JgreDefender, ScoringKind};
use jgre_framework::{CallOptions, System, SystemConfig};
use jgre_sim::{FaultIntensity, FaultKind, FaultPlan};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let m = experiments::chaos_matrix(ExperimentScale::quick().with_seed(0), None);
    write_artifact("chaos_matrix", &m, &m.render());
    assert_eq!(
        m.violations,
        0,
        "recovery invariants must hold:\n{}",
        m.render()
    );
    assert_eq!(m.cells.len(), 62);
    assert!(
        m.cells
            .iter()
            .any(|c| c.scoring == Some(ScoringKind::CallCount)),
        "the matrix must exercise the call-count fallback"
    );
}

fn bench_degraded_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);
    group.bench_function("degraded_detection_severe_ipc_drop", |b| {
        b.iter(|| {
            let scale = ExperimentScale::quick();
            let mut system = System::boot_with(SystemConfig {
                seed: 5,
                jgr_capacity: Some(scale.jgr_capacity),
                faults: FaultPlan::single(FaultKind::IpcDrop, FaultIntensity::Severe),
                ..SystemConfig::default()
            });
            let defender = JgreDefender::install(
                &mut system,
                DefenderConfig {
                    ..scale.defender_config()
                },
            )
            .expect("bench defender config is valid");
            let mal = system.install_app("com.evil", []);
            for _ in 0..10_000u32 {
                system
                    .call_service(
                        mal,
                        "clipboard",
                        "addPrimaryClipChangedListener",
                        CallOptions::default(),
                    )
                    .expect("clipboard registered");
                if let Some(d) = defender.poll(&mut system) {
                    assert_eq!(d.scoring, ScoringKind::CallCount);
                    break;
                }
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_degraded_detection);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
