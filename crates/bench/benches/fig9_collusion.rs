//! Figure 9: four colluding attackers + one chatty benign app, scored at
//! Δ ∈ {79, 1900, 3583} µs, at paper scale.

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let fig9 = experiments::fig9(ExperimentScale::paper());
    write_artifact("fig9_collusion", &fig9, &fig9.render());
    for &delta in &fig9.deltas_us {
        assert!(
            fig9.top4_all_malicious(delta),
            "Δ={delta}µs: the four colluders must top the ranking\n{}",
            fig9.render()
        );
    }
}

fn bench_collusion_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("collusion");
    group.sample_size(10);
    group.bench_function("fig9_quick_scale_end_to_end", |b| {
        b.iter(|| experiments::fig9(ExperimentScale::quick()));
    });
    group.finish();
}

criterion_group!(benches, bench_collusion_round);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
