//! T-ANALYSIS: regenerates the §IV headline numbers and Tables I/IV/V at
//! paper scale, and times the pipeline stages.

use criterion::{criterion_group, Criterion};
use jgre_analysis::{IpcMethodExtractor, JgrEntryExtractor, Pipeline, VulnerableIpcDetector};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};
use jgre_corpus::{spec::AospSpec, CodeModel};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let scale = ExperimentScale::paper();
    let headline = experiments::analysis_headline(scale);
    write_artifact("t_analysis_headline", &headline, &headline.render());
    let t1 = experiments::table1(scale);
    write_artifact("table1_unprotected", &t1, &t1.render());
    let t4 = experiments::table4(scale);
    write_artifact("table4_prebuilt_apps", &t4, &t4.render());
    let t5 = experiments::table5(scale);
    write_artifact("table5_third_party", &t5, &t5.render());
}

fn bench_pipeline(c: &mut Criterion) {
    let spec = AospSpec::android_6_0_1();
    let model = CodeModel::synthesize(&spec);
    let mut group = c.benchmark_group("analysis");
    group.bench_function("corpus_synthesis", |b| {
        b.iter(|| CodeModel::synthesize(std::hint::black_box(&spec)));
    });
    group.bench_function("ipc_method_extractor", |b| {
        b.iter(|| IpcMethodExtractor::new(std::hint::black_box(&model)).extract());
    });
    group.bench_function("jgr_entry_extractor", |b| {
        b.iter(|| JgrEntryExtractor::new(std::hint::black_box(&model)).extract());
    });
    let ipc = IpcMethodExtractor::new(&model).extract();
    let entries = JgrEntryExtractor::new(&model).extract();
    group.bench_function("vulnerable_ipc_detector", |b| {
        b.iter(|| VulnerableIpcDetector::new(std::hint::black_box(&model), &entries).detect(&ipc));
    });
    group.bench_function("static_pipeline_full", |b| {
        let pipeline = Pipeline::new(CodeModel::synthesize(&spec));
        b.iter(|| pipeline.run_static());
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
