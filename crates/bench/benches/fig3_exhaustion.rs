//! Figure 3: JGR growth curves for all 54 vulnerable interfaces at the
//! real 51200-entry capacity, plus a single-exhaustion kernel benchmark.

use criterion::{criterion_group, Criterion};
use jgre_attack::{run_exhaustion_attack, AttackVector};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};
use jgre_corpus::spec::AospSpec;
use jgre_framework::{System, SystemConfig};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let fig3 = experiments::fig3(ExperimentScale::paper());
    write_artifact("fig3_exhaustion", &fig3, &fig3.render());
    // Paper shape checks, loud in the bench log.
    assert_eq!(fig3.series[0].interface, "audio.startWatchingRoutes");
    assert_eq!(
        fig3.series.last().expect("54 series").interface,
        "notification.enqueueToast"
    );
    assert!(
        (80.0..130.0).contains(&fig3.fastest_secs()),
        "fastest {}s",
        fig3.fastest_secs()
    );
    assert!(
        (1_500.0..2_100.0).contains(&fig3.slowest_secs()),
        "slowest {}s",
        fig3.slowest_secs()
    );
}

fn bench_exhaustion(c: &mut Criterion) {
    let spec = AospSpec::android_6_0_1();
    let vector = AttackVector::service_vectors(&spec)
        .into_iter()
        .find(|v| v.service == "clipboard")
        .expect("clipboard is vulnerable");
    c.bench_function("exhaust_3200_entry_table", |b| {
        b.iter(|| {
            let mut system = System::boot_with(SystemConfig {
                jgr_capacity: Some(3_200),
                ..SystemConfig::default()
            });
            run_exhaustion_attack(&mut system, &vector, 10_000, 400)
        });
    });
}

criterion_group!(benches, bench_exhaustion);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
