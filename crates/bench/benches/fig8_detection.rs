//! Figure 8: the defender's suspicious-IPC counts — malicious app vs the
//! top benign app — across the known vulnerabilities, at paper scale.

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};
use jgre_defense::{naive_scores, segment_tree_scores, ScoreParams};
use jgre_sim::{SimTime, Uid};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    // 54 vulnerabilities × (1 attacker + 10 benign apps), Δ = 1.8 ms.
    let fig8 = experiments::fig8(ExperimentScale::paper(), 10, usize::MAX);
    write_artifact("fig8_detection", &fig8, &fig8.render());
    assert!(
        fig8.separation_rate() >= 0.99,
        "attacker must outscore every benign app: {:.2}",
        fig8.separation_rate()
    );
}

type IpcByUid = std::collections::BTreeMap<Uid, std::collections::BTreeMap<String, Vec<SimTime>>>;

/// Synthetic scoring workload: one attacker stream + `n_benign` sparse
/// benign streams over `adds` JGR events.
fn scoring_fixture(adds: usize, n_benign: usize) -> (IpcByUid, Vec<SimTime>) {
    let mut ipc: IpcByUid = Default::default();
    let mut jgr = Vec::with_capacity(adds);
    for k in 0..adds as u64 {
        let call = 10_000 + k * 2_000;
        ipc.entry(Uid::new(10_061))
            .or_default()
            .entry("IClipboard.addPrimaryClipChangedListener".into())
            .or_default()
            .push(SimTime::from_micros(call));
        jgr.push(SimTime::from_micros(call + 700));
    }
    for b in 0..n_benign as u64 {
        for k in 0..(adds as u64 / 4) {
            let call = 10_311 + b * 97 + k * 8_111 + (k * k * 31) % 1_999;
            ipc.entry(Uid::new(10_100 + b as u32))
                .or_default()
                .entry(format!("IAudioService.method{b}"))
                .or_default()
                .push(SimTime::from_micros(call));
        }
    }
    (ipc, jgr)
}

fn bench_scoring(c: &mut Criterion) {
    let (ipc, jgr) = scoring_fixture(8_000, 10);
    let params = ScoreParams::default();
    let mut group = c.benchmark_group("algorithm1");
    group.sample_size(20);
    group.bench_function("segment_tree_8000_adds", |b| {
        b.iter(|| segment_tree_scores(std::hint::black_box(&ipc), &jgr, params));
    });
    group.bench_function("naive_8000_adds", |b| {
        b.iter(|| naive_scores(std::hint::black_box(&ipc), &jgr, params));
    });
    group.finish();
}

criterion_group!(benches, bench_scoring);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
