//! Figures 5 and 6: execution-time growth of `listenForSubscriber` during
//! a full attack, and the execution-time CDF of all 54 interfaces over
//! 1000 calls each — the paper's protocol, at paper scale.

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};
use jgre_framework::{CallOptions, System};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let fig5 = experiments::fig5(ExperimentScale::paper());
    write_artifact("fig5_exec_growth", &fig5, &fig5.render());
    // The paper's plot climbs from ~5-10 ms toward ~60 ms near 50k calls.
    assert!(
        fig5.growth_factor() > 4.0,
        "growth factor {}",
        fig5.growth_factor()
    );

    let fig6 = experiments::fig6(ExperimentScale::paper(), 1_000);
    write_artifact("fig6_exec_cdf", &fig6, &fig6.render());
    // Figure 6's envelope: the CDF's mass sits below ~8 ms. Our tail runs
    // slightly past it because `midi.registerDeviceServer` is modelled at
    // 4 references per call (so 1000 calls store 4000 entries and its
    // growth term kicks in earlier than in the paper's run).
    assert!(
        fig6.percentile(90) <= 8_000,
        "p90 {}µs",
        fig6.percentile(90)
    );
    assert!(
        fig6.percentile(100) <= 14_000,
        "p100 {}µs",
        fig6.percentile(100)
    );
}

fn bench_ipc_call(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipc_call");
    group.bench_function("vulnerable_handler", |b| {
        let mut system = System::boot(3);
        let app = system.install_app("com.bench", []);
        b.iter(|| {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .expect("clipboard registered")
        });
    });
    group.bench_function("innocent_handler", |b| {
        let mut system = System::boot(3);
        let app = system.install_app("com.bench", []);
        b.iter(|| {
            system
                .call_service(app, "clipboard", "getState", CallOptions::default())
                .expect("innocent method exists")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ipc_call);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
