//! Figure 10: IPC latency vs payload size (1–500 KiB), stock driver vs
//! the defense's recording driver, plus a raw transaction kernel bench.

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_binder::{BinderDriver, Parcel};
use jgre_core::{experiments, ExperimentScale};
use jgre_sim::{Pid, SimClock, TraceSink, Uid};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let fig10 = experiments::fig10(ExperimentScale::paper(), 500);
    write_artifact("fig10_overhead", &fig10, &fig10.render());
    assert!(
        fig10.max_added_us() <= 1_247,
        "added delay {}µs exceeds the paper's 1.247 ms",
        fig10.max_added_us()
    );
    let pct = fig10.mean_overhead() * 100.0;
    assert!((40.0..52.0).contains(&pct), "overhead {pct:.1}%");
}

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("binder");
    for defense in [false, true] {
        group.bench_function(
            if defense {
                "transaction_with_recording"
            } else {
                "transaction_stock"
            },
            |b| {
                let clock = SimClock::new();
                let mut driver = BinderDriver::new(clock, TraceSink::disabled());
                driver.set_defense_recording(defense);
                driver.set_log_enabled(false);
                let node = driver.create_node(Pid::new(412), "echo");
                let mut parcel = Parcel::new();
                parcel.write_string("payload").write_blob(64 * 1024);
                b.iter(|| {
                    driver
                        .record_transaction(
                            Pid::new(9_000),
                            Uid::new(10_000),
                            node,
                            "IEcho",
                            "deliver",
                            std::hint::black_box(&parcel),
                        )
                        .expect("node is alive")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transactions);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
