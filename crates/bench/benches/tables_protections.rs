//! Tables II and III at paper scale: helper-class protections fall to
//! direct Binder calls; per-process limits hold except for the
//! `enqueueToast` package spoof.

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};
use jgre_framework::{CallOptions, System};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let t2 = experiments::table2(ExperimentScale::paper());
    write_artifact("table2_helper_bypass", &t2, &t2.render());
    assert_eq!(t2.rows.len(), 9);
    assert!(t2.rows.iter().all(|r| r.direct_binder_bypasses));

    let t3 = experiments::table3(ExperimentScale::paper());
    write_artifact("table3_per_process_limits", &t3, &t3.render());
    assert_eq!(t3.rows.len(), 4);
    assert_eq!(t3.rows.iter().filter(|r| r.protected).count(), 3);
}

fn bench_protection_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("protections");
    group.bench_function("helper_checked_call", |b| {
        let mut system = System::boot(9);
        let app = system.install_app("com.bench", [jgre_corpus::spec::Permission::WakeLock]);
        b.iter(|| {
            // The helper path includes the client-side bookkeeping; the
            // call keeps succeeding because each iteration uses the same
            // app and the helper releases above its cap via errors we
            // ignore here.
            let _ = system.call_service(app, "wifi", "acquireWifiLock", CallOptions::benign());
        });
    });
    group.bench_function("server_limited_call", |b| {
        let mut system = System::boot(9);
        let app = system.install_app("com.bench", []);
        b.iter(|| {
            system
                .call_service(app, "display", "registerCallback", CallOptions::default())
                .expect("display registered")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_protection_paths);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
