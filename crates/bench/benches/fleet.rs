//! T-FLEET: throughput of the sharded campaign engine.
//!
//! Pins three properties of `jgre_core::fleet` on a 10⁴-device campaign:
//!
//! 1. **Determinism** — the 1-thread and 4-thread summaries are equal,
//!    down to the serialized bytes (the shard-count invariance the
//!    proptest checks on small fleets, re-asserted at scale).
//! 2. **Throughput floor** — the single-threaded engine sustains at
//!    least 25 devices/sec at quick scale; the measured rate (hundreds
//!    on a laptop core) goes into the artifact so regressions show up
//!    as a number, not just a pass/fail.
//! 3. **Scaling** — with ≥ 4 hardware threads available, 4 workers beat
//!    1 worker by ≥ 2×. On smaller machines (CI runners with 1–2 cores)
//!    the speedup assert is skipped — sharding cannot beat physics — but
//!    both configurations still run and must agree.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::fleet::FleetConfig;
use jgre_core::{run_campaign, ExperimentScale, FleetSummary};
use serde::Serialize;

const PIN_DEVICES: u64 = 10_000;

fn campaign(devices: u64, threads: usize) -> FleetSummary {
    run_campaign(&FleetConfig {
        devices,
        threads,
        ..FleetConfig::new(ExperimentScale::quick())
    })
}

#[derive(Debug, Serialize)]
struct FleetArtifact {
    devices: u64,
    hardware_threads: usize,
    single_thread_s: f64,
    four_thread_s: f64,
    devices_per_sec_1t: f64,
    devices_per_sec_4t: f64,
    speedup: f64,
    speedup_asserted: bool,
    detected: u64,
    exhausted: u64,
}

fn bench_fleet(c: &mut Criterion) {
    // Criterion samples on a small campaign so iteration stays cheap; the
    // 10⁴-device pin below runs each configuration once.
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.bench_function("campaign_500_devices_1t", |b| {
        b.iter(|| campaign(black_box(500), 1));
    });
    group.finish();

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let start = Instant::now();
    let summary_1t = campaign(PIN_DEVICES, 1);
    let single_thread_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let summary_4t = campaign(PIN_DEVICES, 4);
    let four_thread_s = start.elapsed().as_secs_f64();

    // Shard-count invariance at scale: same summary, same bytes.
    assert_eq!(
        summary_1t, summary_4t,
        "1-thread and 4-thread campaigns must produce identical summaries"
    );
    assert_eq!(
        serde_json::to_string(&summary_1t).unwrap(),
        serde_json::to_string(&summary_4t).unwrap(),
        "summary serialization must be byte-identical across thread counts"
    );

    let devices_per_sec_1t = PIN_DEVICES as f64 / single_thread_s;
    let devices_per_sec_4t = PIN_DEVICES as f64 / four_thread_s;
    let speedup = single_thread_s / four_thread_s;
    let speedup_asserted = hardware_threads >= 4;

    let artifact = FleetArtifact {
        devices: PIN_DEVICES,
        hardware_threads,
        single_thread_s,
        four_thread_s,
        devices_per_sec_1t,
        devices_per_sec_4t,
        speedup,
        speedup_asserted,
        detected: summary_1t.detected,
        exhausted: summary_1t.exhausted,
    };
    let rendered = format!(
        "fleet campaign throughput ({PIN_DEVICES} devices, quick scale, {hardware_threads} hw threads)\n\
         1 worker:  {single_thread_s:>7.2} s  ({devices_per_sec_1t:>7.0} devices/sec)\n\
         4 workers: {four_thread_s:>7.2} s  ({devices_per_sec_4t:>7.0} devices/sec)\n\
         speedup:   {speedup:>7.2}x{}\n",
        if speedup_asserted {
            ""
        } else {
            "  (not asserted: < 4 hardware threads)"
        }
    );
    println!("{rendered}");

    assert!(
        devices_per_sec_1t >= 25.0,
        "single-threaded fleet throughput collapsed: {devices_per_sec_1t:.0} devices/sec"
    );
    if speedup_asserted {
        assert!(
            speedup >= 2.0,
            "4 workers must beat 1 worker by >= 2x on >= 4 hardware threads, got {speedup:.2}x"
        );
    }
    if artifacts_enabled() {
        write_artifact("fleet_throughput", &artifact, &rendered);
    }
}

criterion_group!(benches, bench_fleet);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
