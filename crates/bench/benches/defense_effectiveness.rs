//! §V-C at paper scale: the JGRE Defender must stop all 57 identified
//! attacks without a single soft reboot.

use criterion::{criterion_group, Criterion};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_core::{experiments, ExperimentScale};

fn generate_artifacts() {
    if !artifacts_enabled() {
        return;
    }
    let e = experiments::defense_effectiveness(ExperimentScale::paper());
    write_artifact("defense_effectiveness", &e, &e.render());
    assert_eq!(e.runs.len(), 57);
    assert_eq!(
        e.defended,
        57,
        "undefended: {:?}",
        e.runs
            .iter()
            .filter(|r| !(r.victim_survived && r.attacker_killed))
            .map(|r| r.interface.clone())
            .collect::<Vec<_>>()
    );
}

fn bench_effectiveness_quick(c: &mut Criterion) {
    let mut group = c.benchmark_group("defense");
    group.sample_size(10);
    group.bench_function("all_57_vectors_quick_scale", |b| {
        b.iter(|| experiments::defense_effectiveness(ExperimentScale::quick()));
    });
    group.finish();
}

criterion_group!(benches, bench_effectiveness_quick);

fn main() {
    generate_artifacts();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
