//! T-PATHSENSE: the cost of the per-branch predicate lattice. The
//! intraprocedural solver is timed against a bench-local boolean-guard
//! baseline — the pre-predicate era's state shape — over the amplified
//! corpus (same lowering, same worklist). The acceptance bar from
//! DESIGN.md §10 is predicate lattice < 2x the boolean solver.

use std::collections::{BTreeMap, BTreeSet};
use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use jgre_analysis::dataflow::JoinSemiLattice;
use jgre_analysis::{intra_solver_cost, solve_forward, Cfg, ForwardAnalysis, Stmt};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_corpus::body::{FieldKind, Place, Var};
use jgre_corpus::{spec::AospSpec, CodeModel, MethodId};
use serde::Serialize;

/// Replicates every method `copies` times with suffixed class names and
/// offset call ids — the same amplification as the incremental bench, so
/// both solver benchmarks report over the same ~15k-method corpus.
fn amplify(base: &CodeModel, copies: usize) -> CodeModel {
    let n = base.methods.len();
    let mut model = base.clone();
    for j in 1..copies {
        for def in &base.methods {
            let mut copy = def.clone();
            copy.id = MethodId((def.id.0 as usize + j * n) as u32);
            copy.class = format!("{}__copy{j}", def.class);
            for callee in copy.calls.iter_mut().chain(copy.handler_posts.iter_mut()) {
                *callee = MethodId((callee.0 as usize + j * n) as u32);
            }
            model.methods.push(copy);
        }
    }
    model
}

/// The boolean-era abstract state: one `guard` bit where the production
/// lattice tracks a `PredSet` per path and per site. Var states are the
/// production ordering collapsed to a rank byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct BoolState {
    vars: BTreeMap<Var, (u8, bool)>,
    cleared: BTreeSet<String>,
    key_use: BTreeSet<Var>,
    called: BTreeMap<MethodId, bool>,
    guard: bool,
    handler: bool,
}

impl JoinSemiLattice for BoolState {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.clone();
        for (v, (state, guard)) in &other.vars {
            match self.vars.get_mut(v) {
                None => {
                    self.vars.insert(*v, (*state, *guard));
                }
                Some(cur) => {
                    if *state > cur.0 {
                        *cur = (*state, *guard);
                    } else if *state == cur.0 {
                        cur.1 &= *guard;
                    }
                }
            }
        }
        self.cleared = self.cleared.intersection(&other.cleared).cloned().collect();
        self.key_use.extend(other.key_use.iter().copied());
        for (callee, guard) in &other.called {
            match self.called.get_mut(callee) {
                None => {
                    self.called.insert(*callee, *guard);
                }
                Some(cur) => *cur &= *guard,
            }
        }
        self.guard &= other.guard;
        self.handler |= other.handler;
        *self != before
    }
}

// Rank bytes mirroring the production VarState order.
const RELEASED: u8 = 0;
const LIVE: u8 = 1;
const ESCAPED_SCALAR: u8 = 2;
const ESCAPED_BOUNDED: u8 = 3;
const ESCAPED_UNBOUNDED: u8 = 4;

struct BoolAnalysis;

impl ForwardAnalysis for BoolAnalysis {
    type State = BoolState;

    fn boundary(&self) -> BoolState {
        BoolState::default()
    }

    fn transfer(&self, stmt: &Stmt, state: &mut BoolState) {
        let escalate = |state: &mut BoolState, v: Var, to: u8| {
            let guard = state.guard;
            let entry = state.vars.entry(v).or_insert((LIVE, guard));
            if to > entry.0 {
                *entry = (to, guard);
            } else if to == entry.0 {
                entry.1 &= guard;
            }
        };
        match stmt {
            Stmt::AllocJgr { dst, .. } => {
                state.vars.insert(*dst, (LIVE, state.guard));
            }
            Stmt::ReleaseJgr { src: Place::Var(v) } => {
                state.vars.insert(*v, (RELEASED, state.guard));
            }
            Stmt::ReleaseJgr {
                src: Place::Field(f),
            } => {
                state.cleared.insert(f.clone());
            }
            Stmt::StoreField { src, field, kind } => match kind {
                FieldKind::Collection { bounded: false } => {
                    escalate(state, *src, ESCAPED_UNBOUNDED);
                }
                FieldKind::Collection { bounded: true } => {
                    escalate(state, *src, ESCAPED_BOUNDED);
                    state.guard = true;
                }
                FieldKind::MapKeyReadOnly => {
                    state.key_use.insert(*src);
                }
                FieldKind::Scalar => {
                    let replaced = state.cleared.remove(field);
                    let to = if replaced {
                        ESCAPED_SCALAR
                    } else {
                        ESCAPED_UNBOUNDED
                    };
                    escalate(state, *src, to);
                }
            },
            Stmt::StoreLocal { .. } => {}
            Stmt::Call {
                callee,
                via_handler,
            } => {
                let guard = state.guard;
                match state.called.get_mut(callee) {
                    None => {
                        state.called.insert(*callee, guard);
                    }
                    Some(cur) => *cur &= guard,
                }
                state.handler |= *via_handler;
            }
        }
    }
    // No transfer_edge: the boolean era was edge-insensitive.
}

/// Lowers and solves every body with the boolean baseline; returns the
/// total reachable-block count as a cheap checksum to defeat DCE.
fn bool_solver_cost(model: &CodeModel) -> u64 {
    let mut reached = 0u64;
    for def in &model.methods {
        let cfg = Cfg::lower(&model.method_body(def.id));
        let solution = solve_forward(&cfg, &BoolAnalysis);
        reached += solution.exit.iter().flatten().count() as u64;
    }
    reached
}

fn min_time_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Debug, Serialize)]
struct PathsenseArtifact {
    methods: usize,
    predicate_ms: f64,
    boolean_ms: f64,
    overhead: f64,
}

fn bench_pathsense(c: &mut Criterion) {
    let base = CodeModel::synthesize_with_error_paths(&AospSpec::android_6_0_1());
    let model = amplify(&base, 4);

    let mut group = c.benchmark_group("pathsense");
    group.sample_size(10);
    group.bench_function("predicate_lattice", |b| {
        b.iter(|| intra_solver_cost(black_box(&model)));
    });
    group.bench_function("boolean_guard_baseline", |b| {
        b.iter(|| bool_solver_cost(black_box(&model)));
    });
    group.finish();

    let predicate_ms = min_time_ms(3, || {
        black_box(intra_solver_cost(&model));
    });
    let boolean_ms = min_time_ms(3, || {
        black_box(bool_solver_cost(&model));
    });
    let artifact = PathsenseArtifact {
        methods: model.methods.len(),
        predicate_ms,
        boolean_ms,
        overhead: predicate_ms / boolean_ms,
    };
    let rendered = format!(
        "path-sensitive solver cost ({} methods)\n\
         predicate lattice: {predicate_ms:>8.3} ms\n\
         boolean baseline:  {boolean_ms:>8.3} ms\n\
         overhead:          {:>8.2}x\n",
        artifact.methods, artifact.overhead
    );
    println!("{rendered}");
    assert!(
        artifact.overhead < 2.0,
        "predicate lattice must stay under 2x the boolean solver, got {:.2}x",
        artifact.overhead
    );
    if artifacts_enabled() {
        write_artifact("pathsense_overhead", &artifact, &rendered);
    }
}

criterion_group!(benches, bench_pathsense);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
