//! T-DATAFLOW: times the dataflow leak-check stack — body synthesis +
//! CFG lowering, the whole-corpus fixpoint analysis, the dataflow
//! detector — against the legacy heuristic detector it replaced, plus
//! witness construction and the SARIF lint export.

use criterion::{criterion_group, Criterion};
use jgre_analysis::leakcheck::LeakChecker;
use jgre_analysis::{
    Cfg, DataflowDetector, IpcMethodExtractor, JgrEntryExtractor, LintReport,
    VulnerableIpcDetector, Witness,
};
use jgre_corpus::{spec::AospSpec, CodeModel};

fn bench_dataflow(c: &mut Criterion) {
    let spec = AospSpec::android_6_0_1();
    let model = CodeModel::synthesize(&spec);
    let ipc = IpcMethodExtractor::new(&model).extract();
    let entries = JgrEntryExtractor::new(&model).extract();

    let mut group = c.benchmark_group("dataflow");
    group.bench_function("lower_all_cfgs", |b| {
        b.iter(|| {
            let model = std::hint::black_box(&model);
            model
                .methods
                .iter()
                .map(|def| Cfg::lower(&model.method_body(def.id)).blocks.len())
                .sum::<usize>()
        });
    });
    group.bench_function("leakcheck_fixpoint", |b| {
        b.iter(|| LeakChecker::new(std::hint::black_box(&model)).analyze());
    });
    group.bench_function("dataflow_detector", |b| {
        b.iter(|| DataflowDetector::new(std::hint::black_box(&model), &entries).detect(&ipc));
    });
    group.bench_function("legacy_detector_baseline", |b| {
        b.iter(|| VulnerableIpcDetector::new(std::hint::black_box(&model), &entries).detect(&ipc));
    });
    let flow = DataflowDetector::new(&model, &entries).detect(&ipc);
    group.bench_function("witness_build_all_risky", |b| {
        b.iter(|| {
            let mut built = 0usize;
            for row in std::hint::black_box(&flow.verdicts) {
                if !row.verdict.is_risky() {
                    continue;
                }
                let Some(root) = row.ipc.java else { continue };
                for site in &row.sites {
                    built += usize::from(Witness::build(&model, root, site).is_some());
                }
            }
            built
        });
    });
    group.bench_function("lint_report_sarif", |b| {
        let report = LintReport::generate(&model, &spec);
        b.iter(|| report.to_sarif(std::hint::black_box(&model)));
    });
    group.finish();
}

criterion_group!(benches, bench_dataflow);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
