//! Micro-benchmarks of the substrate hot paths: reference-table
//! operations, heap collection, the monitor's per-event cost, and the
//! end-to-end dispatch of a single IPC call. These are the kernels whose
//! throughput bounds every experiment above.

use std::rc::Rc;

use criterion::{criterion_group, BenchmarkId, Criterion};
use jgre_art::{Heap, IndirectRefTable, RefKind, Runtime};
use jgre_defense::JgrMonitor;
use jgre_framework::{CallOptions, System};
use jgre_sim::{Pid, SimClock, TraceSink};

fn bench_irt(c: &mut Criterion) {
    let mut group = c.benchmark_group("irt");
    group.bench_function("add_remove_cycle", |b| {
        let mut heap = Heap::new();
        let mut table = IndirectRefTable::new(RefKind::Global, 1 << 20);
        let obj = heap.alloc("x");
        b.iter(|| {
            let r = table
                .add(std::hint::black_box(obj))
                .expect("below capacity");
            table.remove(r).expect("just added");
        });
    });
    group.bench_function("frame_push_pop_8_locals", |b| {
        let mut heap = Heap::new();
        let mut table = IndirectRefTable::new(RefKind::Local, 512);
        let objs: Vec<_> = (0..8).map(|_| heap.alloc("local")).collect();
        b.iter(|| {
            let cookie = table.push_frame();
            for &o in &objs {
                table.add(o).expect("frame has room");
            }
            table.pop_frame(cookie).expect("balanced")
        });
    });
    group.finish();
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc");
    group.sample_size(20);
    for garbage in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("collect", garbage), &garbage, |b, &n| {
            b.iter_batched(
                || {
                    let mut rt = Runtime::new(Pid::new(1), SimClock::new(), TraceSink::disabled());
                    for _ in 0..n {
                        rt.alloc("garbage");
                    }
                    rt
                },
                |mut rt| rt.collect_garbage(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    c.bench_function("monitor_event_while_recording", |b| {
        let monitor = Rc::new(JgrMonitor::new(1, 1 << 30).expect("bench thresholds are valid"));
        let mut rt = Runtime::new(Pid::new(1), SimClock::new(), TraceSink::disabled());
        rt.register_observer(monitor.clone());
        // Cross the record threshold so the hot (recording) path runs.
        let o = rt.alloc("seed");
        let seed_ref = rt.add_global(o).unwrap();
        let _ = seed_ref;
        let obj = rt.alloc("churn");
        b.iter(|| {
            let r = rt.add_global(std::hint::black_box(obj)).expect("huge cap");
            rt.delete_global(r).expect("just added");
        });
    });
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.bench_function("full_ipc_call_no_jgr", |b| {
        let mut system = System::boot(1);
        let app = system.install_app("com.bench", []);
        b.iter(|| {
            system
                .call_service(app, "clipboard", "getState", CallOptions::default())
                .expect("innocent method exists")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_irt, bench_gc, bench_monitor, bench_dispatch);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
