//! The incremental summary engine's headline numbers: cold (first run
//! with a cache dir — computes everything and populates the file) vs
//! warm (second run, pure Tier A hit) vs a one-method edit (Tier B
//! partial invalidation), plus the uncached baseline for reference.
//! The acceptance bar from DESIGN.md §7 is warm ≥ 10x faster than cold
//! on an unchanged corpus, asserted here on manually timed runs so the
//! artifact records the actual ratio, not just criterion's per-bench
//! medians.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, BatchSize, Criterion};
use jgre_analysis::{AnalysisOptions, LeakChecker, CACHE_FILE};
use jgre_bench::{artifacts_enabled, write_artifact};
use jgre_corpus::{spec::AospSpec, CodeModel, MethodId, ParamUsage};
use serde::Serialize;

/// Replicates every method `copies` times with suffixed class names and
/// offset call ids, so the summary engine sees a corpus several times
/// the AOSP seed while every fact fingerprint stays distinct. The
/// replicas are plain Java methods (the `(class, name)` specials in
/// body synthesis no longer match), but their binder params still drive
/// real allocation-site dataflow.
fn amplify(base: &CodeModel, copies: usize) -> CodeModel {
    let n = base.methods.len();
    let mut model = base.clone();
    for j in 1..copies {
        for def in &base.methods {
            let mut copy = def.clone();
            copy.id = MethodId((def.id.0 as usize + j * n) as u32);
            copy.class = format!("{}__copy{j}", def.class);
            for callee in copy.calls.iter_mut().chain(copy.handler_posts.iter_mut()) {
                *callee = MethodId((callee.0 as usize + j * n) as u32);
            }
            model.methods.push(copy);
        }
    }
    model
}

/// Flip the first binder param of one replica: the smallest edit that
/// actually changes a fact fingerprint and a summary.
fn edit_one_method(model: &CodeModel) -> CodeModel {
    let mut edited = model.clone();
    let target = edited
        .methods
        .iter()
        .position(|d| d.class.ends_with("__copy1") && !d.binder_params.is_empty())
        .expect("amplified corpus has a replica with binder params");
    let usage = &mut edited.methods[target].binder_params[0];
    *usage = if matches!(usage, ParamUsage::StoredInCollection) {
        ParamUsage::LocalOnly
    } else {
        ParamUsage::StoredInCollection
    };
    edited
}

fn min_time_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Debug, Serialize)]
struct IncrementalArtifact {
    methods: usize,
    cold_ms: f64,
    warm_ms: f64,
    one_method_edit_ms: f64,
    uncached_ms: f64,
    warm_speedup: f64,
    edit_speedup: f64,
}

fn bench_incremental(c: &mut Criterion) {
    let base = CodeModel::synthesize(&AospSpec::android_6_0_1());
    let model = amplify(&base, 4);
    let edited = edit_one_method(&model);

    let dir: PathBuf = std::env::temp_dir().join(format!("jgre-bench-inc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cached = AnalysisOptions::with_cache_dir(&dir);
    let cold_options = AnalysisOptions::default();

    let checker = LeakChecker::new(&model);
    let from_scratch = checker.analyze_with(&cold_options);
    checker.analyze_with(&cached);
    let pristine = std::fs::read(dir.join(CACHE_FILE)).expect("cache populated");
    let warm = checker.analyze_with(&cached);
    assert_eq!(
        warm.summaries, from_scratch.summaries,
        "warm summaries must equal from-scratch"
    );
    assert_eq!(warm.stats.cache_misses, 0, "second run must be a pure hit");

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    // Cold = the first run against an empty cache dir: computes every
    // summary, derives every SCC key, and writes the file.
    group.bench_function("cold", |b| {
        b.iter_batched(
            || std::fs::remove_file(dir.join(CACHE_FILE)).unwrap(),
            |()| black_box(&checker).analyze_with(&cached),
            BatchSize::PerIteration,
        );
    });
    group.bench_function("warm", |b| {
        b.iter(|| black_box(&checker).analyze_with(&cached));
    });
    // Each edited run rewrites the cache file for the edited corpus, so
    // the pristine bytes are restored outside the timed region.
    group.bench_function("one_method_edit", |b| {
        b.iter_batched(
            || std::fs::write(dir.join(CACHE_FILE), &pristine).unwrap(),
            |()| LeakChecker::new(black_box(&edited)).analyze_with(&cached),
            BatchSize::PerIteration,
        );
    });
    group.bench_function("uncached", |b| {
        b.iter(|| black_box(&checker).analyze_with(&cold_options));
    });
    group.finish();

    // The acceptance ratio, measured directly (the vendored criterion
    // exposes no estimates): best-of-k to shave scheduler noise.
    let cold_ms = min_time_ms(3, || {
        std::fs::remove_file(dir.join(CACHE_FILE)).unwrap();
        black_box(checker.analyze_with(&cached));
    });
    let warm_ms = min_time_ms(5, || {
        black_box(checker.analyze_with(&cached));
    });
    let edit_ms = min_time_ms(3, || {
        std::fs::write(dir.join(CACHE_FILE), &pristine).unwrap();
        black_box(LeakChecker::new(&edited).analyze_with(&cached));
    });
    let uncached_ms = min_time_ms(3, || {
        black_box(checker.analyze_with(&cold_options));
    });
    std::fs::remove_dir_all(&dir).ok();

    let artifact = IncrementalArtifact {
        methods: model.methods.len(),
        cold_ms,
        warm_ms,
        one_method_edit_ms: edit_ms,
        uncached_ms,
        warm_speedup: cold_ms / warm_ms,
        edit_speedup: cold_ms / edit_ms,
    };
    let rendered = format!(
        "incremental summary cache ({} methods)\n\
         cold (populate):  {cold_ms:>8.3} ms\n\
         warm (pure hit):  {warm_ms:>8.3} ms  ({:.1}x)\n\
         one-method edit:  {edit_ms:>8.3} ms  ({:.1}x)\n\
         uncached:         {uncached_ms:>8.3} ms\n",
        artifact.methods, artifact.warm_speedup, artifact.edit_speedup
    );
    println!("{rendered}");
    assert!(
        artifact.warm_speedup >= 10.0,
        "warm re-analysis must be >= 10x faster than cold, got {:.1}x",
        artifact.warm_speedup
    );
    if artifacts_enabled() {
        write_artifact("incremental_cache", &artifact, &rendered);
    }
}

criterion_group!(benches, bench_incremental);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
