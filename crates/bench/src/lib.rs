//! Shared plumbing for the benchmark harness.
//!
//! Each bench target in `benches/` does two jobs:
//!
//! 1. **regenerate the paper artifact** at paper scale (full 51200-entry
//!    tables, 4000/12000 thresholds) and write it to `artifacts/` at the
//!    workspace root — both a rendered `.txt` and the raw `.json`;
//! 2. **measure the underlying kernels** with Criterion at quick scale, so
//!    `cargo bench` also tracks the performance of the simulator and of
//!    the defense's algorithms.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Directory the artifacts land in: `<workspace>/artifacts`.
pub fn artifact_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("artifacts");
    dir
}

/// Writes `artifacts/<name>.txt` (the rendered table/series) and
/// `artifacts/<name>.json` (the raw data).
///
/// # Panics
///
/// Panics when the artifact directory cannot be created or written —
/// a broken harness should fail loudly, not silently skip artifacts.
pub fn write_artifact<T: Serialize>(name: &str, data: &T, rendered: &str) {
    let dir = artifact_dir();
    fs::create_dir_all(&dir).expect("create artifacts dir");
    fs::write(dir.join(format!("{name}.txt")), rendered).expect("write rendered artifact");
    let json = serde_json::to_string_pretty(data).expect("experiment structs serialise");
    fs::write(dir.join(format!("{name}.json")), json).expect("write json artifact");
    eprintln!("[artifact] {name}: {}", dir.join(name).display());
}

/// Whether paper-scale artifact generation is enabled. Set
/// `JGRE_SKIP_ARTIFACTS=1` to time kernels only.
pub fn artifacts_enabled() -> bool {
    std::env::var_os("JGRE_SKIP_ARTIFACTS").is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_dir_is_inside_workspace() {
        let dir = artifact_dir();
        assert!(dir.ends_with("artifacts"));
        assert!(dir.parent().unwrap().join("Cargo.toml").exists());
    }
}
