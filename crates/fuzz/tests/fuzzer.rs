//! End-to-end fuzzer tests: determinism across thread counts, the
//! golden minimized reproducer, and the differential ground-truth
//! rediscovery bound.

use jgre_core::ExperimentScale;
use jgre_fuzz::{
    differential, run_fuzz, AttackSurface, FuzzConfig, LeakSignature, LEAK_THRESHOLD, PROBE_CALLS,
};

/// Budget for a probe sweep plus spoof re-probes over `methods` methods.
fn sweep_budget(methods: usize) -> u64 {
    methods as u64 * u64::from(PROBE_CALLS) * 2
}

#[test]
fn clipboard_campaign_minimizes_to_golden_repro() {
    let mut config = FuzzConfig::new(ExperimentScale::quick());
    config.services = Some(vec!["clipboard".to_owned()]);
    config.iters = 4_096;
    let report = run_fuzz(&config);

    let finding = report
        .findings
        .iter()
        .find(|f| f.method == "addPrimaryClipChangedListener")
        .expect("clipboard listener leak rediscovered");
    assert_eq!(finding.signature, LeakSignature::RetainPerCall);
    assert_eq!(finding.host, "system");
    assert!(finding.growth >= LEAK_THRESHOLD);
    // The golden minimized reproducer: both parcel ops are load-bearing
    // (package string + live callback binder), and 51 calls is the
    // smallest count whose GC-surviving growth exceeds the largest sound
    // per-process cap (MAX_ACTIVE_LOCKS = 50).
    assert_eq!(finding.minimized.ops, vec!["package", "callback-binder"]);
    assert_eq!(finding.minimized.calls, 51);
    // Leak probes never crash the host.
    assert_eq!(report.host_aborts, 0);
}

#[test]
fn same_seed_is_byte_identical_across_thread_counts() {
    let services = vec![
        "accessibility".to_owned(),
        "clipboard".to_owned(),
        "notification".to_owned(),
        "wifi".to_owned(),
    ];
    let run = |threads: usize| {
        let mut config = FuzzConfig::new(ExperimentScale::quick());
        config.seed = 7;
        config.services = Some(services.clone());
        config.iters = 6_000;
        config.threads = threads;
        run_fuzz(&config).to_json()
    };
    let single = run(1);
    assert_eq!(single, run(1), "same seed, same threads: not reproducible");
    assert_eq!(single, run(2), "thread count leaked into the report");
    assert_eq!(single, run(4), "thread count leaked into the report");
}

#[test]
fn attack_surface_partition_is_exact() {
    let sweep = |surface: AttackSurface| {
        let mut config = FuzzConfig::new(ExperimentScale::quick());
        config.attack_surface = surface;
        config.iters = 0; // plan-only: just count the admitted surface
        run_fuzz(&config)
    };
    let all = sweep(AttackSurface::All);
    let sdk = sweep(AttackSurface::Sdk);
    let hidden = sweep(AttackSurface::Hidden);
    assert!(all.methods > 0);
    assert_eq!(sdk.methods + hidden.methods, all.methods);
    assert!(sdk.methods > 0 && hidden.methods > 0);
}

#[test]
fn differential_rediscovers_ground_truth_without_static_hints() {
    let spec = jgre_corpus::AospSpec::android_6_0_1();
    let total_methods: usize = spec
        .services
        .iter()
        .chain(spec.prebuilt_apps.iter().flat_map(|a| a.services.iter()))
        .map(|s| s.methods.len())
        .sum();

    let scale = ExperimentScale::quick();
    let mut config = FuzzConfig::new(scale);
    config.iters = sweep_budget(total_methods);
    config.threads = 4;
    let report = run_fuzz(&config);

    // The fuzzer rediscovers every one of the paper's 54 vulnerable
    // system-service interfaces black-box (acceptance requires >= 90%;
    // the deterministic probe sweep reaches all of them).
    let ground_truth: Vec<(String, String)> = spec
        .vulnerable_service_interfaces()
        .map(|(s, m)| (s.name.clone(), m.name.clone()))
        .collect();
    assert_eq!(ground_truth.len(), 54);
    let found: std::collections::BTreeSet<(String, String)> = report
        .findings
        .iter()
        .map(|f| (f.service.clone(), f.method.clone()))
        .collect();
    let missed: Vec<_> = ground_truth.iter().filter(|p| !found.contains(p)).collect();
    assert!(
        missed.is_empty(),
        "ground truth not rediscovered: {missed:?}"
    );

    // Zero findings on the benign corpus: everything reported is either
    // a ground-truth system leak, a vulnerable prebuilt-app interface,
    // or the enqueueToast spoof bypass — nothing else.
    let prebuilt: std::collections::BTreeSet<(String, String)> = spec
        .vulnerable_prebuilt_interfaces()
        .map(|(_, s, m)| (s.name.clone(), m.name.clone()))
        .collect();
    for f in &report.findings {
        let pair = (f.service.clone(), f.method.clone());
        let expected = ground_truth.contains(&pair)
            || prebuilt.contains(&pair)
            || (f.signature == LeakSignature::SpoofBypass
                && f.service == "notification"
                && f.method == "enqueueToast");
        assert!(expected, "false finding on benign surface: {f:?}");
    }

    // The spoof escalation rediscovers Code-Snippet 3 dynamically.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.signature == LeakSignature::SpoofBypass && f.method == "enqueueToast"),
        "enqueueToast spoof bypass not rediscovered"
    );

    // The probe sweep never crashes a host.
    assert_eq!(report.host_aborts, 0);

    // Differential stage: the dynamic findings and the static lint agree
    // on the system surface; prebuilt-app leaks are the expected
    // fuzz-only fixtures; any lint-only remainder must be dynamically
    // refuted (no silent fuzz coverage gaps at this budget).
    let spec_model = jgre_corpus::CodeModel::synthesize(&spec);
    let lint = jgre_analysis::LintReport::generate(&spec_model, &spec);
    let diff = differential(&report, &lint.diagnostics, scale, config.seed);
    assert_eq!(diff.agreed.len(), 54);
    for fixture in &diff.fuzz_only {
        assert!(
            fixture.host == "app" || fixture.signature == "spoof-bypass",
            "unexpected fuzz-only fixture: {fixture:?}"
        );
    }
    assert!(
        diff.lint_only.iter().all(|f| !f.dynamically_confirmed),
        "lint-only leak confirmed dynamically — fuzz coverage gap: {:?}",
        diff.lint_only
    );
}
