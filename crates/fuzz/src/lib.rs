//! Coverage-guided Parcel fuzzer over the simulated Binder surface.
//!
//! `jgre fuzz` exercises every registered service through the hardened
//! raw-transaction dispatch ([`jgre_framework::System::transact_raw`]),
//! mutating transaction codes and parcel payloads — wrong arity,
//! type-confused reads, oversized blobs, stale and foreign binder
//! handles, truncated parcels, spoofed package strings — and steering
//! its corpus by per-`(service, method, outcome)` edge coverage plus
//! JGR-growth feedback.
//!
//! The pipeline is:
//!
//! 1. **Probe sweep** ([`engine`]): a GC-verified leak oracle per
//!    method, rediscovering the paper's leaking interfaces black-box.
//! 2. **Spoof escalation**: server-limit edges earn a spoofed re-probe
//!    (the Code-Snippet 3 `enqueueToast` bypass).
//! 3. **Mutation storm** ([`input`]): malformed shapes that must all
//!    land on typed fail-stop rejections, never a panic.
//! 4. **Minimization** ([`report`]): delta-debugged shortest
//!    reproducers, deduplicated by `(service, method, signature)`.
//! 5. **Differential check** ([`differential`]): cross-validation
//!    against the static lint — fuzz-only findings become sift-rule
//!    regression fixtures, lint-only predictions are replayed
//!    dynamically.
//!
//! Everything is deterministic per `(seed, iters, surface, scale)`:
//! the JSON report is byte-identical across `--threads` values, which
//! the CI smoke job enforces with a literal byte diff.

pub mod differential;
pub mod engine;
pub mod input;
pub mod report;

pub use differential::{
    differential, AgreedFinding, DifferentialReport, FuzzArtifact, FuzzOnlyFinding, LintOnlyFinding,
};
pub use engine::{
    replay_probe, run_fuzz, AttackSurface, FuzzConfig, LEAK_THRESHOLD, PROBE_CALLS, SOUND_CAP_MAX,
};
pub use input::{FuzzInput, ParcelOp};
pub use report::{CoverageSummary, Finding, FuzzReport, LeakSignature, MinimizedRepro};
