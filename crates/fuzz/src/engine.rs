//! The coverage-guided campaign: probe sweep, spoof escalation, mutation
//! storm, and delta-debug minimization — all deterministic per seed.
//!
//! # Determinism contract
//!
//! Work is sharded **per service**: shard *s* draws its mutation decisions
//! from `SimRng::stream(seed, STREAM_BASE + s)` and boots every trial
//! device at `stream_seed(seed, trial_stream(s, seq))`, so a shard's
//! results depend only on `(seed, s)`. Worker threads deal shards
//! round-robin (the fleet's `run_wave` pattern) and the merge folds
//! shards in index order, so the report is byte-identical for every
//! `--threads` value.
//!
//! # The leak oracle
//!
//! A probe sends [`PROBE_CALLS`] well-formed transactions from a fresh
//! app, forces a GC on the host, and reads the surviving JGR growth —
//! the paper's dynamic verification (§IV-C). Growth beyond
//! [`LEAK_THRESHOLD`] cannot be explained by any sound per-process cap
//! in the image (the largest is `MAX_ACTIVE_LOCKS = 50`), so the method
//! retains per call without bound. A probe that instead observes the
//! server-limit rejection edge earns a **spoof re-probe** with the
//! `"android"` package — the coverage-guided escalation that rediscovers
//! `enqueueToast`'s Code-Snippet 3 flaw without static hints.

use std::collections::{BTreeMap, BTreeSet};

use jgre_binder::{NodeId, Parcel};
use jgre_core::fleet::DeviceArena;
use jgre_core::{DefendedDevice, ExperimentScale};
use jgre_corpus::spec::{AospSpec, MethodSpec, Permission, Protection, ProtectionLevel};
use jgre_framework::{CallOutcome, CallStatus, FrameworkError};
use jgre_sim::{stream_seed, SimRng, Uid};

use crate::input::{FuzzInput, ParcelOp};
use crate::report::{CoverageSummary, Finding, FuzzReport, LeakSignature, MinimizedRepro};

/// Well-formed calls per leak probe: enough to overshoot every sound
/// per-process cap with margin, small enough to stay far below the
/// defender's quick-scale kill trigger.
pub const PROBE_CALLS: u32 = 64;

/// The largest sound per-process cap on the image (`MAX_ACTIVE_LOCKS`
/// = 50 in `WifiManager.java`). GC-surviving growth beyond it cannot be
/// a capped interface.
pub const SOUND_CAP_MAX: usize = 50;

/// Probe growth at or above this is reported as a leak: strictly above
/// [`SOUND_CAP_MAX`] with margin for paired-release noise.
pub const LEAK_THRESHOLD: usize = SOUND_CAP_MAX + 6;

/// Offset separating shard RNG streams from trial-device seed streams.
const STREAM_BASE: u64 = 0x8000_0000;

/// Which slice of the IPC surface the fuzzer sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackSurface {
    /// Every exported method.
    All,
    /// SDK-mediated methods: permission-gated or protection-wrapped.
    Sdk,
    /// Hidden methods: no permission, no protection — reachable only via
    /// raw transactions.
    Hidden,
}

impl AttackSurface {
    /// Parses the CLI selector.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "all" => Some(Self::All),
            "sdk" => Some(Self::Sdk),
            "hidden" => Some(Self::Hidden),
            _ => None,
        }
    }

    /// Stable label echoed into the report.
    pub fn label(self) -> &'static str {
        match self {
            Self::All => "all",
            Self::Sdk => "sdk",
            Self::Hidden => "hidden",
        }
    }

    fn admits(self, m: &MethodSpec) -> bool {
        let mediated = m.permission.is_some() || !matches!(m.protection, Protection::None);
        match self {
            Self::All => true,
            Self::Sdk => mediated,
            Self::Hidden => !mediated,
        }
    }
}

/// Fuzzer configuration. The report depends on every field except
/// `threads`.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed.
    pub seed: u64,
    /// Budgeted fuzz execs (transactions) across the whole surface,
    /// split across services proportionally to their method counts.
    pub iters: u64,
    /// Worker threads (shards deal round-robin; no effect on output).
    pub threads: usize,
    /// Surface selector.
    pub attack_surface: AttackSurface,
    /// Device scale for every trial boot.
    pub scale: ExperimentScale,
    /// Restrict the sweep to these services (tests pin single-service
    /// campaigns this way); `None` sweeps everything.
    pub services: Option<Vec<String>>,
}

impl FuzzConfig {
    /// Defaults: the scale's seed, a budget sized for a full probe sweep
    /// over the ~2430-method surface (64 calls each) plus spoof re-probes
    /// and a mutation tail, one thread, the whole surface.
    pub fn new(scale: ExperimentScale) -> Self {
        Self {
            seed: scale.seed,
            iters: 320_000,
            threads: 1,
            attack_surface: AttackSurface::All,
            scale,
            services: None,
        }
    }
}

/// One method the plan targets.
struct MethodPlan {
    name: String,
    code: u32,
}

/// One service shard: its admitted methods, the permissions a fuzz app
/// requests up front, and its fixed exec budget.
struct ServicePlan {
    name: String,
    host: &'static str,
    methods: Vec<MethodPlan>,
    grantable: Vec<Permission>,
    budget: u64,
    /// Global exec index where this shard's budget window starts — what
    /// makes `discovered_at_exec` thread-count independent.
    exec_offset: u64,
}

/// Builds the shard plan from the public surface of the image: service
/// names, method tables in transaction-code order, and manifest-level
/// permission requirements. No retention behaviour, protection
/// soundness, or flaw information flows in — discovery stays dynamic.
fn build_plan(config: &FuzzConfig) -> Vec<ServicePlan> {
    let spec = AospSpec::android_6_0_1();
    let mut surface: Vec<(&'static str, &jgre_corpus::spec::ServiceSpec)> = Vec::new();
    for svc in &spec.services {
        surface.push(("system", svc));
    }
    for app in &spec.prebuilt_apps {
        for svc in &app.services {
            surface.push(("app", svc));
        }
    }
    surface.sort_by(|a, b| a.1.name.cmp(&b.1.name));
    let mut plans: Vec<ServicePlan> = surface
        .into_iter()
        .filter(|(_, svc)| match &config.services {
            Some(keep) => keep.iter().any(|k| k == &svc.name),
            None => true,
        })
        .filter_map(|(host, svc)| {
            let methods: Vec<MethodPlan> = svc
                .methods
                .iter()
                .enumerate()
                .filter(|(_, m)| config.attack_surface.admits(m))
                .map(|(i, m)| MethodPlan {
                    name: m.name.clone(),
                    code: i as u32 + jgre_framework::FIRST_CALL_TRANSACTION,
                })
                .collect();
            if methods.is_empty() {
                return None;
            }
            let grantable: BTreeSet<Permission> = svc
                .methods
                .iter()
                .filter_map(|m| m.permission)
                .filter(|p| p.level() != ProtectionLevel::Signature)
                .collect();
            Some(ServicePlan {
                name: svc.name.clone(),
                host,
                methods,
                grantable: grantable.into_iter().collect(),
                budget: 0,
                exec_offset: 0,
            })
        })
        .collect();
    // Budget proportional to method count; the remainder tops up the
    // first shards. Fixed a priori, so it is identical for every thread
    // count.
    let total_methods: u64 = plans.iter().map(|p| p.methods.len() as u64).sum();
    let mut assigned = 0u64;
    for plan in &mut plans {
        plan.budget = (config.iters * plan.methods.len() as u64)
            .checked_div(total_methods)
            .unwrap_or(0);
        assigned += plan.budget;
    }
    let mut leftover = config.iters.saturating_sub(assigned);
    for plan in &mut plans {
        if leftover == 0 {
            break;
        }
        plan.budget += 1;
        leftover -= 1;
    }
    let mut offset = 0u64;
    for plan in &mut plans {
        plan.exec_offset = offset;
        offset += plan.budget;
    }
    plans
}

/// Everything one shard produced; merged in shard order.
#[derive(Default)]
struct ShardOutcome {
    edges: BTreeSet<(String, String, String)>,
    completed: BTreeSet<(String, String)>,
    outcomes: BTreeMap<String, u64>,
    rejects: BTreeMap<String, u64>,
    findings: Vec<Finding>,
    execs: u64,
    minimize_execs: u64,
    host_aborts: u64,
    detections: u64,
}

/// One probe/minimization trial on a freshly booted device.
struct Trial {
    growth: usize,
    outcomes: Vec<String>,
    aborts: u64,
    detections: u64,
    rejects: BTreeMap<String, u64>,
}

/// Seed stream of trial `seq` within shard `shard` (disjoint from the
/// shard decision streams at [`STREAM_BASE`]).
const fn trial_stream(shard: usize, seq: u64) -> u64 {
    (shard as u64) << 24 | (seq & 0xFF_FFFF)
}

fn error_label(e: &FrameworkError) -> &'static str {
    match e {
        FrameworkError::UnknownApp => "unknown-app",
        FrameworkError::UnknownService(_) => "unknown-service",
        FrameworkError::UnknownMethod { .. } => "unknown-method",
        FrameworkError::PermissionDenied { .. } => "permission-denied",
        FrameworkError::HelperLimitExceeded { .. } => "helper-limit",
        FrameworkError::ServiceDead => "service-dead",
        FrameworkError::Binder(_) => "binder",
        FrameworkError::Art(_) => "art",
        _ => "other",
    }
}

fn outcome_label(result: &Result<CallOutcome, FrameworkError>) -> String {
    match result {
        Ok(o) => match o.status {
            CallStatus::Completed if o.host_aborted => "completed-abort".to_owned(),
            CallStatus::Completed => "completed".to_owned(),
            CallStatus::RejectedByServerLimit => "server-limit".to_owned(),
            CallStatus::Rejected(r) => format!("rejected:{}", r.reason()),
        },
        Err(e) => format!("err:{}", error_label(e)),
    }
}

/// Builds the parcel from the input's recipe and sends the transaction.
fn exec_once(
    device: &mut DefendedDevice,
    app: Uid,
    service: &str,
    input: &FuzzInput,
) -> Result<CallOutcome, FrameworkError> {
    let mut parcel = Parcel::new();
    for op in &input.ops {
        match op {
            ParcelOp::Package => {
                let pkg = device
                    .system()
                    .package_of(app)
                    .unwrap_or("com.fuzz")
                    .to_owned();
                parcel.write_string(pkg);
            }
            ParcelOp::SpoofedPackage => {
                parcel.write_string("android");
            }
            ParcelOp::CallbackBinder => {
                let node = device.system_mut().create_callback_node(app)?;
                parcel.write_strong_binder(node);
            }
            ParcelOp::StaleBinder => {
                // The driver hands out node ids from a counter; u64::MAX
                // was never and will never be issued.
                parcel.write_strong_binder(NodeId::new(u64::MAX));
            }
            ParcelOp::JunkI32 => {
                parcel.write_i32(0x7F7F_7F7F);
            }
            ParcelOp::JunkI64 => {
                parcel.write_i64(0x7F7F_7F7F_7F7F_7F7F);
            }
            ParcelOp::Blob(size) => {
                parcel.write_blob(*size);
            }
        }
    }
    device.transact_raw(app, service, input.code, &mut parcel)
}

/// Boots a fresh device, installs a fresh fuzz app, replays `input`, and
/// reads the GC-surviving JGR growth of the service host.
fn run_trial(
    arena: &mut DeviceArena,
    config: &FuzzConfig,
    plan: &ServicePlan,
    input: &FuzzInput,
    shard: usize,
    trial_seq: &mut u64,
) -> Trial {
    let seed = stream_seed(config.seed, trial_stream(shard, *trial_seq));
    *trial_seq += 1;
    let device = arena.boot(config.scale.with_seed(seed));
    let app = device.system_mut().install_app(
        format!("com.fuzz.{}", plan.name),
        plan.grantable.iter().copied(),
    );
    let host = device
        .system()
        .service_info(&plan.name)
        .expect("plan services exist on the booted image")
        .host;
    device.system_mut().gc_process(host);
    let before = device.system().jgr_count(host).unwrap_or(0);
    let mut outcomes = Vec::with_capacity(input.calls as usize);
    let mut aborts = 0u64;
    for _ in 0..input.calls {
        let result = exec_once(device, app, &plan.name, input);
        if matches!(&result, Ok(o) if o.host_aborted) {
            aborts += 1;
        }
        outcomes.push(outcome_label(&result));
    }
    // Re-resolve the host: an abort mid-trial soft-reboots the image and
    // the service re-registers under a new pid.
    let host = device
        .system()
        .service_info(&plan.name)
        .map_or(host, |info| info.host);
    device.system_mut().gc_process(host);
    let after = device.system().jgr_count(host).unwrap_or(0);
    Trial {
        growth: after.saturating_sub(before),
        outcomes,
        aborts,
        detections: device.detections().len() as u64,
        rejects: device
            .system()
            .reject_counts()
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect(),
    }
}

fn absorb_trial(out: &mut ShardOutcome, service: &str, method: &str, trial: &Trial) {
    for label in &trial.outcomes {
        *out.outcomes.entry(label.clone()).or_insert(0) += 1;
        out.edges
            .insert((service.to_owned(), method.to_owned(), label.clone()));
        if label == "completed" || label == "completed-abort" {
            out.completed
                .insert((service.to_owned(), method.to_owned()));
        }
    }
    for (reason, count) in &trial.rejects {
        *out.rejects.entry(reason.clone()).or_insert(0) += count;
    }
    out.execs += trial.outcomes.len() as u64;
    out.host_aborts += trial.aborts;
    out.detections += trial.detections;
}

/// Delta-debugs a leaking input to its shortest reproducer: greedy op
/// removal (each surviving op is load-bearing), then a binary search for
/// the fewest calls whose growth still exceeds [`SOUND_CAP_MAX`].
fn minimize(
    arena: &mut DeviceArena,
    config: &FuzzConfig,
    plan: &ServicePlan,
    base: &FuzzInput,
    shard: usize,
    trial_seq: &mut u64,
    out: &mut ShardOutcome,
) -> MinimizedRepro {
    let mut leaks = |input: &FuzzInput, seq: &mut u64, out: &mut ShardOutcome| {
        let trial = run_trial(arena, config, plan, input, shard, seq);
        out.minimize_execs += input.calls as u64;
        trial.growth > SOUND_CAP_MAX
    };
    let mut ops = base.ops.clone();
    let mut idx = 0;
    while idx < ops.len() {
        let mut candidate = ops.clone();
        candidate.remove(idx);
        let input = FuzzInput {
            code: base.code,
            ops: candidate.clone(),
            calls: base.calls,
        };
        if leaks(&input, trial_seq, out) {
            ops = candidate;
        } else {
            idx += 1;
        }
    }
    // Growth can never exceed the call count, so fewer than
    // SOUND_CAP_MAX + 1 calls cannot prove unboundedness.
    let mut lo = SOUND_CAP_MAX as u32 + 1;
    let mut hi = base.calls.max(lo);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let input = FuzzInput {
            code: base.code,
            ops: ops.clone(),
            calls: mid,
        };
        if leaks(&input, trial_seq, out) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    MinimizedRepro {
        code: base.code,
        ops: ops.iter().map(|op| op.label()).collect(),
        calls: hi,
    }
}

/// Runs one service shard end to end: probe sweep, spoof re-probes,
/// mutation storm.
fn fuzz_service(
    arena: &mut DeviceArena,
    config: &FuzzConfig,
    plan: &ServicePlan,
    shard: usize,
) -> ShardOutcome {
    let mut out = ShardOutcome::default();
    let mut rng = SimRng::stream(config.seed, STREAM_BASE + shard as u64);
    let mut trial_seq = 0u64;
    let mut budget = plan.budget;

    // Phase 1 — probe sweep: the GC-verified leak oracle per method.
    let mut spoof_candidates: Vec<&MethodPlan> = Vec::new();
    let mut leak_findings: Vec<(usize, &MethodPlan, Trial, FuzzInput, LeakSignature)> = Vec::new();
    for m in &plan.methods {
        if budget < u64::from(PROBE_CALLS) {
            break;
        }
        budget -= u64::from(PROBE_CALLS);
        let mut input = FuzzInput::well_formed(m.code);
        input.calls = PROBE_CALLS;
        let trial = run_trial(arena, config, plan, &input, shard, &mut trial_seq);
        let spent = plan.budget - budget;
        if trial.growth >= LEAK_THRESHOLD {
            leak_findings.push((
                spent as usize,
                m,
                trial,
                input,
                LeakSignature::RetainPerCall,
            ));
        } else {
            if trial.outcomes.iter().any(|l| l == "server-limit") {
                // Coverage feedback: a capped interface earns a spoofed
                // re-probe — the Code-Snippet 3 escalation.
                spoof_candidates.push(m);
            }
            absorb_trial(&mut out, &plan.name, &m.name, &trial);
        }
    }
    for (spent, m, trial, input, signature) in leak_findings {
        absorb_trial(&mut out, &plan.name, &m.name, &trial);
        let minimized = minimize(arena, config, plan, &input, shard, &mut trial_seq, &mut out);
        out.findings.push(Finding {
            service: plan.name.clone(),
            method: m.name.clone(),
            host: plan.host.to_owned(),
            signature,
            growth: trial.growth,
            probe_calls: input.calls,
            minimized,
            discovered_at_exec: plan.exec_offset + spent as u64,
        });
    }

    // Phase 1b — spoofed re-probes of server-capped methods.
    for m in spoof_candidates {
        if budget < u64::from(PROBE_CALLS) {
            break;
        }
        budget -= u64::from(PROBE_CALLS);
        let mut input = FuzzInput::spoofed(m.code);
        input.calls = PROBE_CALLS;
        let trial = run_trial(arena, config, plan, &input, shard, &mut trial_seq);
        let spent = plan.budget - budget;
        absorb_trial(&mut out, &plan.name, &m.name, &trial);
        if trial.growth >= LEAK_THRESHOLD {
            let minimized = minimize(arena, config, plan, &input, shard, &mut trial_seq, &mut out);
            out.findings.push(Finding {
                service: plan.name.clone(),
                method: m.name.clone(),
                host: plan.host.to_owned(),
                signature: LeakSignature::SpoofBypass,
                growth: trial.growth,
                probe_calls: input.calls,
                minimized,
                discovered_at_exec: plan.exec_offset + spent,
            });
        }
    }

    // Phase 2 — mutation storm: spend the leftover budget on malformed
    // shapes, steered by edge novelty and JGR-growth feedback.
    if budget > 0 {
        let seed = stream_seed(config.seed, trial_stream(shard, trial_seq));
        let device = arena.boot(config.scale.with_seed(seed));
        let app = device.system_mut().install_app(
            format!("com.fuzz.{}", plan.name),
            plan.grantable.iter().copied(),
        );
        let method_count = device
            .system()
            .method_count(&plan.name)
            .unwrap_or(plan.methods.len()) as u32;
        let mut corpus: Vec<FuzzInput> = plan
            .methods
            .iter()
            .map(|m| FuzzInput::well_formed(m.code))
            .collect();
        let mut prev_jgr = 0usize;
        while budget > 0 {
            budget -= 1;
            let mut input = match corpus.is_empty() {
                false if rng.chance(0.7) => {
                    let idx: usize = rng.range(0..corpus.len());
                    corpus[idx].clone()
                }
                _ => FuzzInput::well_formed(rng.range(1..=method_count.max(1))),
            };
            let mutations = 1 + rng.range(0..=2u32);
            for _ in 0..mutations {
                input.mutate(&mut rng, method_count);
            }
            let result = exec_once(device, app, &plan.name, &input);
            let method_label = device
                .system()
                .method_for_code(&plan.name, input.code)
                .map_or_else(|| format!("#{}", input.code), str::to_owned);
            let label = outcome_label(&result);
            let mut interesting =
                out.edges
                    .insert((plan.name.clone(), method_label.clone(), label.clone()));
            *out.outcomes.entry(label.clone()).or_insert(0) += 1;
            if label == "completed" || label == "completed-abort" {
                out.completed.insert((plan.name.clone(), method_label));
            }
            out.execs += 1;
            if let Ok(o) = &result {
                if o.host_aborted {
                    out.host_aborts += 1;
                }
                if o.host_jgr_count > prev_jgr {
                    interesting = true;
                }
                prev_jgr = o.host_jgr_count;
            }
            if interesting && corpus.len() < 256 {
                corpus.push(input);
            }
        }
        out.detections += device.detections().len() as u64;
        for (reason, count) in device.system().reject_counts() {
            *out.rejects.entry((*reason).to_owned()).or_insert(0) += count;
        }
    }
    out
}

/// Replays a single well-formed leak probe against one
/// `(service, method)` pair on a freshly booted device and returns the
/// GC-surviving JGR growth, or `None` if the pair does not exist on the
/// image. The differential stage uses this to dynamically confirm or
/// refute lint-only predictions.
pub fn replay_probe(
    service: &str,
    method: &str,
    scale: ExperimentScale,
    seed: u64,
) -> Option<usize> {
    let spec = AospSpec::android_6_0_1();
    let svc = spec
        .services
        .iter()
        .chain(spec.prebuilt_apps.iter().flat_map(|a| a.services.iter()))
        .find(|s| s.name == service)?;
    let idx = svc.methods.iter().position(|m| m.name == method)?;
    let code = idx as u32 + jgre_framework::FIRST_CALL_TRANSACTION;
    let grantable: BTreeSet<Permission> = svc
        .methods
        .iter()
        .filter_map(|m| m.permission)
        .filter(|p| p.level() != ProtectionLevel::Signature)
        .collect();
    let mut device = DefendedDevice::boot(scale.with_seed(seed));
    let app = device
        .system_mut()
        .install_app(format!("com.fuzz.replay.{service}"), grantable);
    let host = device.system().service_info(service)?.host;
    device.system_mut().gc_process(host);
    let before = device.system().jgr_count(host).unwrap_or(0);
    let mut input = FuzzInput::well_formed(code);
    input.calls = PROBE_CALLS;
    for _ in 0..input.calls {
        let _ = exec_once(&mut device, app, service, &input);
    }
    let host = device
        .system()
        .service_info(service)
        .map_or(host, |info| info.host);
    device.system_mut().gc_process(host);
    let after = device.system().jgr_count(host).unwrap_or(0);
    Some(after.saturating_sub(before))
}

/// Runs the whole campaign and folds the shards into a deterministic
/// [`FuzzReport`] — byte-identical for every `threads` value.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let plans = build_plan(config);
    let workers = config.threads.max(1).min(plans.len().max(1));
    let mut shard_outcomes: Vec<(usize, ShardOutcome)> = if workers <= 1 {
        let mut arena = DeviceArena::new();
        plans
            .iter()
            .enumerate()
            .map(|(s, plan)| (s, fuzz_service(&mut arena, config, plan, s)))
            .collect()
    } else {
        let plans_ref = &plans;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|t| {
                    scope.spawn(move || {
                        let mut arena = DeviceArena::new();
                        let mut partial = Vec::new();
                        let mut shard = t;
                        while shard < plans_ref.len() {
                            partial.push((
                                shard,
                                fuzz_service(&mut arena, config, &plans_ref[shard], shard),
                            ));
                            shard += workers;
                        }
                        partial
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fuzz worker panicked"))
                .collect()
        })
    };
    shard_outcomes.sort_by_key(|(s, _)| *s);

    let mut edges = BTreeSet::new();
    let mut completed = BTreeSet::new();
    let mut outcomes = BTreeMap::new();
    let mut rejects = BTreeMap::new();
    let mut findings = Vec::new();
    let mut execs = 0u64;
    let mut minimize_execs = 0u64;
    let mut host_aborts = 0u64;
    let mut detections = 0u64;
    for (_, shard) in shard_outcomes {
        edges.extend(shard.edges);
        completed.extend(shard.completed);
        for (label, count) in shard.outcomes {
            *outcomes.entry(label).or_insert(0) += count;
        }
        for (reason, count) in shard.rejects {
            *rejects.entry(reason).or_insert(0) += count;
        }
        findings.extend(shard.findings);
        execs += shard.execs;
        minimize_execs += shard.minimize_execs;
        host_aborts += shard.host_aborts;
        detections += shard.detections;
    }
    findings.sort_by(|a, b| {
        (&a.service, &a.method, a.signature).cmp(&(&b.service, &b.method, b.signature))
    });
    let execs_to_first_leak = findings.iter().map(|f| f.discovered_at_exec).min();
    let pairs: usize = plans.iter().map(|p| p.methods.len()).sum();
    FuzzReport {
        seed: config.seed,
        iters: config.iters,
        attack_surface: config.attack_surface.label().to_owned(),
        services: plans.len(),
        methods: pairs,
        execs,
        minimize_execs,
        coverage: CoverageSummary {
            edges: edges.len(),
            completed_pairs: completed.len(),
            pairs,
            outcomes,
        },
        rejects,
        host_aborts,
        detections,
        execs_to_first_leak,
        findings,
    }
}
