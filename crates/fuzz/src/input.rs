//! The fuzzer's input model: a parcel recipe plus a transaction code.
//!
//! An input is **byte-replayable**: executing the same [`FuzzInput`]
//! against a device booted at the same seed produces the same outcomes,
//! because every op writes deterministic parcel values and a failed
//! `read_*` leaves the cursor at the failing position (the parcel's
//! cursor determinism contract).

use jgre_sim::SimRng;
use serde::{Deserialize, Serialize};

/// One value the client writes into the transaction parcel.
///
/// The well-formed wire format the framework marshals is
/// `[Package, CallbackBinder]` (methods that take no callback simply
/// never read the second slot — unread trailing data is ignored, as in
/// `android.os.Parcel`). Every other op is a deviation the hardened
/// dispatch must reject with a typed reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParcelOp {
    /// The caller's real package name.
    Package,
    /// The `"android"` package string — the Code-Snippet 3 spoof.
    SpoofedPackage,
    /// A freshly created, live callback binder.
    CallbackBinder,
    /// A `NodeId` the driver never handed out (stale/foreign handle).
    StaleBinder,
    /// A 32-bit integer where something else may belong (type confusion).
    JunkI32,
    /// A 64-bit integer (type confusion / junk padding).
    JunkI64,
    /// An opaque payload blob of the given size in bytes.
    Blob(usize),
}

impl ParcelOp {
    /// Stable label used in minimized-repro JSON.
    pub fn label(self) -> String {
        match self {
            ParcelOp::Package => "package".to_owned(),
            ParcelOp::SpoofedPackage => "spoofed-package".to_owned(),
            ParcelOp::CallbackBinder => "callback-binder".to_owned(),
            ParcelOp::StaleBinder => "stale-binder".to_owned(),
            ParcelOp::JunkI32 => "i32".to_owned(),
            ParcelOp::JunkI64 => "i64".to_owned(),
            ParcelOp::Blob(size) => format!("blob:{size}"),
        }
    }
}

/// A replayable fuzz input: which transaction to send, what to put in
/// the parcel, and how many times to send it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzInput {
    /// Raw transaction code (1-based; out-of-table codes are themselves
    /// a mutation).
    pub code: u32,
    /// Parcel recipe, written front to back.
    pub ops: Vec<ParcelOp>,
    /// How many times the transaction is sent back to back.
    pub calls: u32,
}

impl FuzzInput {
    /// The well-formed input for a method: the exact shape the framework
    /// itself marshals.
    pub fn well_formed(code: u32) -> Self {
        Self {
            code,
            ops: vec![ParcelOp::Package, ParcelOp::CallbackBinder],
            calls: 1,
        }
    }

    /// The spoofed variant: same shape, but the package string claims to
    /// be `"android"`.
    pub fn spoofed(code: u32) -> Self {
        Self {
            code,
            ops: vec![ParcelOp::SpoofedPackage, ParcelOp::CallbackBinder],
            calls: 1,
        }
    }

    /// Applies one random structural mutation, drawn from `rng`.
    ///
    /// The menu covers the malformed shapes the hardened dispatch must
    /// survive: wrong arity (drop an op), type confusion (swap an op for
    /// an integer), stale/foreign binders, oversized blobs, truncation
    /// (drop the tail), junk padding, spoofed package strings, and
    /// out-of-table transaction codes. `method_count` bounds the valid
    /// code range so the unknown-code mutation lands just outside it.
    pub fn mutate(&mut self, rng: &mut SimRng, method_count: u32) {
        match rng.range(0..=7u32) {
            0 if !self.ops.is_empty() => {
                // Wrong arity: drop a random op.
                let idx: usize = rng.range(0..self.ops.len());
                self.ops.remove(idx);
            }
            1 if !self.ops.is_empty() => {
                // Type confusion: overwrite a random op with an integer.
                let idx: usize = rng.range(0..self.ops.len());
                self.ops[idx] = if rng.chance(0.5) {
                    ParcelOp::JunkI32
                } else {
                    ParcelOp::JunkI64
                };
            }
            2 => {
                // Stale/foreign binder in place of the live callback.
                match self
                    .ops
                    .iter_mut()
                    .find(|op| **op == ParcelOp::CallbackBinder)
                {
                    Some(op) => *op = ParcelOp::StaleBinder,
                    None => self.ops.push(ParcelOp::StaleBinder),
                }
            }
            3 => {
                // Oversized payload: blow the 1 MB transaction buffer.
                self.ops.push(ParcelOp::Blob(2 * 1024 * 1024));
            }
            4 => {
                // Truncation: drop the tail of the recipe.
                let keep: usize = rng.range(0..=self.ops.len());
                self.ops.truncate(keep);
            }
            5 => {
                // Unknown transaction code, just past the method table
                // (or code 0, below FIRST_CALL_TRANSACTION).
                self.code = if rng.chance(0.5) {
                    0
                } else {
                    method_count + 1 + rng.range(0..=2u32)
                };
            }
            6 => {
                // Package spoof (Code-Snippet 3).
                match self.ops.iter_mut().find(|op| **op == ParcelOp::Package) {
                    Some(op) => *op = ParcelOp::SpoofedPackage,
                    None => self.ops.insert(0, ParcelOp::SpoofedPackage),
                }
            }
            _ => {
                // Junk padding at a random position.
                let idx: usize = rng.range(0..=self.ops.len());
                let op = if rng.chance(0.5) {
                    ParcelOp::JunkI32
                } else {
                    ParcelOp::Blob(rng.range(0..=4096usize))
                };
                self.ops.insert(idx, op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let mutate_all = |seed: u64| {
            let mut rng = SimRng::seed(seed);
            let mut input = FuzzInput::well_formed(1);
            for _ in 0..16 {
                input.mutate(&mut rng, 8);
            }
            input
        };
        assert_eq!(mutate_all(7), mutate_all(7));
        assert_ne!(mutate_all(7), mutate_all(8));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ParcelOp::Package.label(), "package");
        assert_eq!(ParcelOp::Blob(42).label(), "blob:42");
    }
}
