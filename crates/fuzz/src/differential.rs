//! Differential stage: cross-check the dynamic fuzz findings against the
//! static lint's predictions.
//!
//! The two analyses have complementary blind spots. The lint reasons
//! over framework source models, so it cannot see services the model
//! omits (prebuilt-app exports) but never needs to execute anything; the
//! fuzzer only believes what it observed, so it cannot flag a leak its
//! budget never reached but never reports a method that did not actually
//! grow the JGR table. Disagreements are therefore the interesting
//! output:
//!
//! - **fuzz-only** findings are dynamically proven leaks the sift rules
//!   missed — each is emitted as a regression fixture the lint test
//!   suite pins so the rule gap stays visible until closed.
//! - **lint-only** predictions are replayed dynamically with a
//!   well-formed leak probe; a probe that refutes the prediction marks a
//!   static false positive, a probe that confirms it marks a fuzz
//!   coverage gap.

use std::collections::BTreeSet;

use jgre_analysis::{predicted_leaks, Diagnostic};
use jgre_core::ExperimentScale;
use serde::{Deserialize, Serialize};

use crate::engine::{replay_probe, LEAK_THRESHOLD};
use crate::report::{FuzzReport, MinimizedRepro};

/// A leak both analyses agree on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgreedFinding {
    /// Service name.
    pub service: String,
    /// Method name.
    pub method: String,
}

/// A dynamically proven leak the static lint missed — a sift-rule
/// regression fixture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzOnlyFinding {
    /// Service name.
    pub service: String,
    /// Method name.
    pub method: String,
    /// Host kind (`"system"` or `"app"`); prebuilt-app hosts are the
    /// expected lint blind spot.
    pub host: String,
    /// Leak signature label (`retain-per-call` / `spoof-bypass`).
    pub signature: String,
    /// The minimized reproducer the fixture replays.
    pub minimized: MinimizedRepro,
}

/// A lint prediction the fuzzer did not report, replayed dynamically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintOnlyFinding {
    /// Service name.
    pub service: String,
    /// Method name.
    pub method: String,
    /// Whether the dynamic replay confirmed the leak (fuzz coverage gap)
    /// or refuted it (static false positive).
    pub dynamically_confirmed: bool,
    /// GC-surviving growth the replay probe observed (0 when the pair
    /// does not exist on the booted image).
    pub growth: usize,
}

/// The full differential report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DifferentialReport {
    /// Leaks both analyses found, sorted by (service, method).
    pub agreed: Vec<AgreedFinding>,
    /// Dynamically proven leaks the lint missed (regression fixtures).
    pub fuzz_only: Vec<FuzzOnlyFinding>,
    /// Lint predictions the fuzzer missed, with replay verdicts.
    pub lint_only: Vec<LintOnlyFinding>,
}

impl DifferentialReport {
    /// Serializes the deterministic JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("differential report serialises")
    }

    /// Lint predictions the dynamic replay refuted — static false
    /// positives.
    pub fn refuted(&self) -> impl Iterator<Item = &LintOnlyFinding> {
        self.lint_only.iter().filter(|f| !f.dynamically_confirmed)
    }

    /// Renders the human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "differential: {} agreed, {} fuzz-only, {} lint-only",
            self.agreed.len(),
            self.fuzz_only.len(),
            self.lint_only.len()
        );
        for f in &self.fuzz_only {
            let _ = writeln!(
                out,
                "  fuzz-only  {:<44} {:<15} host {}  (sift-rule fixture)",
                format!("{}.{}", f.service, f.method),
                f.signature,
                f.host
            );
        }
        for f in &self.lint_only {
            let verdict = if f.dynamically_confirmed {
                "confirmed (fuzz coverage gap)"
            } else {
                "refuted (static false positive)"
            };
            let _ = writeln!(
                out,
                "  lint-only  {:<44} growth {:>4}  {}",
                format!("{}.{}", f.service, f.method),
                f.growth,
                verdict
            );
        }
        out
    }
}

/// The combined artifact `jgre fuzz --out` writes: the fuzz report plus
/// its differential cross-check, serialized together so one file pins
/// both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzArtifact {
    /// The campaign report.
    pub fuzz: FuzzReport,
    /// The lint cross-check.
    pub differential: DifferentialReport,
}

impl FuzzArtifact {
    /// Serializes the deterministic JSON the CI smoke job byte-diffs.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fuzz artifact serialises")
    }

    /// Renders both sections.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.fuzz.render(), self.differential.render())
    }
}

/// Cross-checks a fuzz report against the lint diagnostics. Lint-only
/// pairs are replayed dynamically on a device booted at
/// `scale.with_seed(seed)`; everything is deterministic given the
/// inputs.
pub fn differential(
    fuzz: &FuzzReport,
    diagnostics: &[Diagnostic],
    scale: ExperimentScale,
    seed: u64,
) -> DifferentialReport {
    let lint: BTreeSet<(String, String)> = predicted_leaks(diagnostics);
    let dynamic: BTreeSet<(String, String)> = fuzz
        .findings
        .iter()
        .map(|f| (f.service.clone(), f.method.clone()))
        .collect();
    let agreed = lint
        .intersection(&dynamic)
        .map(|(s, m)| AgreedFinding {
            service: s.clone(),
            method: m.clone(),
        })
        .collect();
    let fuzz_only = fuzz
        .findings
        .iter()
        .filter(|f| !lint.contains(&(f.service.clone(), f.method.clone())))
        .map(|f| FuzzOnlyFinding {
            service: f.service.clone(),
            method: f.method.clone(),
            host: f.host.clone(),
            signature: f.signature.label().to_owned(),
            minimized: f.minimized.clone(),
        })
        .collect();
    let lint_only = lint
        .difference(&dynamic)
        .map(|(s, m)| {
            let growth = replay_probe(s, m, scale, seed).unwrap_or(0);
            LintOnlyFinding {
                service: s.clone(),
                method: m.clone(),
                dynamically_confirmed: growth >= LEAK_THRESHOLD,
                growth,
            }
        })
        .collect();
    DifferentialReport {
        agreed,
        fuzz_only,
        lint_only,
    }
}
