//! Deterministic fuzz report: findings, coverage, rejection accounting.
//!
//! Every field is derived from `(seed, iters, attack surface, scale)`
//! alone — no wall-clock, no thread count — so two runs with the same
//! configuration serialize to identical bytes regardless of `--threads`.
//! The CI smoke job byte-diffs exactly this JSON.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// How a leaking interface manifested dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LeakSignature {
    /// Every well-formed call grew the host's JGR table and survived GC:
    /// unbounded per-call retention (Table I / Table II rows).
    RetainPerCall,
    /// The per-process limit held for honest callers but a spoofed
    /// `"android"` package bypassed it (Table III row 1,
    /// `enqueueToast`'s Code-Snippet 3 flaw).
    SpoofBypass,
}

impl LeakSignature {
    /// Stable label used in JSON and dedup keys.
    pub fn label(self) -> &'static str {
        match self {
            LeakSignature::RetainPerCall => "retain-per-call",
            LeakSignature::SpoofBypass => "spoof-bypass",
        }
    }
}

/// The shortest reproducing input a finding was minimized to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinimizedRepro {
    /// Raw transaction code to send.
    pub code: u32,
    /// Parcel recipe as stable op labels (see `ParcelOp::label`).
    pub ops: Vec<String>,
    /// Fewest back-to-back calls whose GC-surviving growth still exceeds
    /// the largest sound per-process cap — the unboundedness proof.
    pub calls: u32,
}

/// One GC-verified leaking interface, deduplicated by
/// `(service, method, signature)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Registered service name.
    pub service: String,
    /// Leaking method.
    pub method: String,
    /// Host kind: `"system"` for `system_server`, `"app"` for services
    /// exported by prebuilt apps.
    pub host: String,
    /// How the leak manifested.
    pub signature: LeakSignature,
    /// GC-surviving JGR growth the discovery probe observed.
    pub growth: usize,
    /// Calls the discovery probe made.
    pub probe_calls: u32,
    /// Delta-debugged shortest reproducer.
    pub minimized: MinimizedRepro,
    /// Global exec index (thread-count independent) at which the
    /// discovery probe completed.
    pub discovered_at_exec: u64,
}

/// Edge-coverage summary over `(service, method, outcome)` triples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageSummary {
    /// Distinct `(service, method, outcome)` edges observed.
    pub edges: usize,
    /// `(service, method)` pairs whose handler ran to completion.
    pub completed_pairs: usize,
    /// `(service, method)` pairs in the fuzzed surface.
    pub pairs: usize,
    /// Execs per terminal outcome label, across the whole run.
    pub outcomes: BTreeMap<String, u64>,
}

impl CoverageSummary {
    /// Completed-pair coverage as a percentage of the fuzzed surface.
    pub fn completed_pct(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            100.0 * self.completed_pairs as f64 / self.pairs as f64
        }
    }
}

/// The full deterministic fuzz report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Campaign seed.
    pub seed: u64,
    /// Requested exec budget.
    pub iters: u64,
    /// Attack-surface selector (`all`, `sdk`, `hidden`).
    pub attack_surface: String,
    /// Services in the fuzzed surface.
    pub services: usize,
    /// Methods in the fuzzed surface.
    pub methods: usize,
    /// Budgeted fuzz execs actually spent (probes + mutations).
    pub execs: u64,
    /// Extra replay execs spent minimizing findings (not budgeted).
    pub minimize_execs: u64,
    /// Coverage feedback the corpus was steered by.
    pub coverage: CoverageSummary,
    /// Per-reason fail-stop rejection counters, summed over every device
    /// the campaign booted (the driver ledger's keys).
    pub rejects: BTreeMap<String, u64>,
    /// Execs whose handler aborted the host (JGR exhaustion findings of
    /// the exhaustion kind — never a simulator panic).
    pub host_aborts: u64,
    /// Defender detections observed across the campaign.
    pub detections: u64,
    /// Global exec index of the first leak discovery, if any.
    pub execs_to_first_leak: Option<u64>,
    /// GC-verified leaking interfaces, sorted by (service, method,
    /// signature).
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Serializes the deterministic JSON the CI smoke job byte-diffs.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fuzz report serialises")
    }

    /// Renders the human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: seed {}  iters {}  surface {}  — {} services, {} methods",
            self.seed, self.iters, self.attack_surface, self.services, self.methods
        );
        let _ = writeln!(
            out,
            "execs {}  (+{} minimizing)  edges {}  completed {}/{} pairs ({:.1}%)",
            self.execs,
            self.minimize_execs,
            self.coverage.edges,
            self.coverage.completed_pairs,
            self.coverage.pairs,
            self.coverage.completed_pct()
        );
        let _ = writeln!(
            out,
            "host aborts {}  detections {}  first leak at exec {}",
            self.host_aborts,
            self.detections,
            self.execs_to_first_leak
                .map_or_else(|| "-".to_owned(), |e| e.to_string())
        );
        if !self.coverage.outcomes.is_empty() {
            let _ = writeln!(out, "outcomes:");
            for (label, count) in &self.coverage.outcomes {
                let _ = writeln!(out, "  {count:>9}  {label}");
            }
        }
        if !self.rejects.is_empty() {
            let _ = writeln!(out, "rejections:");
            for (reason, count) in &self.rejects {
                let _ = writeln!(out, "  {count:>9}  {reason}");
            }
        }
        let _ = writeln!(out, "findings: {}", self.findings.len());
        for f in &self.findings {
            let _ = writeln!(
                out,
                "  {:<44} {:<15} growth {:>4}  min {{code {}, [{}], {} calls}}",
                format!("{}.{}", f.service, f.method),
                f.signature.label(),
                f.growth,
                f.minimized.code,
                f.minimized.ops.join(", "),
                f.minimized.calls
            );
        }
        out
    }
}
