//! Serialization round-trips for the fault-injection plan.
//!
//! `FaultPlan` travels: it is embedded in chaos-matrix artifacts, CLI
//! JSON output, and (via the crash-consistent defender's journal crate)
//! on-disk state. Any field that fails to round-trip through JSON would
//! silently re-run a different experiment, so every representable plan —
//! including the budget sentinels and the optional crash pin — must come
//! back bit-identical.

use jgre_sim::{CrashPoint, FaultIntensity, FaultKind, FaultPlan, SimDuration};
use proptest::prelude::*;

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let point = prop_oneof![
        Just(None),
        Just(Some(CrashPoint::PollStart)),
        Just(Some(CrashPoint::PostScoring)),
        Just(Some(CrashPoint::Kill)),
        Just(Some(CrashPoint::JournalAppend)),
        Just(Some(CrashPoint::Checkpoint)),
    ];
    // The compat proptest has no float ranges; per-mill integers cover
    // the probability space densely enough and exercise non-dyadic
    // floats (0.001 has no finite binary expansion).
    let probs = proptest::collection::vec(0u32..=1_000, 10);
    let durations = proptest::collection::vec(0u64..=5_000_000, 4);
    let budgets = || prop_oneof![Just(0u32), 1u32..=100, Just(u32::MAX)];
    (probs, durations, budgets(), budgets(), point).prop_map(
        |(p, d, kill_fail_budget, crash_budget, crash_point)| FaultPlan {
            ipc_drop: f64::from(p[0]) / 1_000.0,
            ipc_duplicate: f64::from(p[1]) / 1_000.0,
            ipc_delay: f64::from(p[2]) / 1_000.0,
            ipc_delay_max: SimDuration::from_micros(d[0]),
            ipc_reorder: f64::from(p[3]) / 1_000.0,
            jgr_truncate: f64::from(p[4]) / 1_000.0,
            jgr_corrupt: f64::from(p[5]) / 1_000.0,
            jgr_corrupt_max: SimDuration::from_micros(d[1]),
            clock_jitter: f64::from(p[6]) / 1_000.0,
            clock_jitter_max: SimDuration::from_micros(d[2]),
            kill_fail: f64::from(p[7]) / 1_000.0,
            kill_fail_budget,
            kill_respawn: f64::from(p[8]) / 1_000.0,
            crash: f64::from(p[9]) / 1_000.0,
            crash_budget,
            crash_point,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compact and pretty JSON both reproduce the exact plan, including
    /// `u32::MAX` budget sentinels and the crash-point pin.
    #[test]
    fn fault_plan_round_trips_through_json(plan in plan_strategy()) {
        let compact = serde_json::to_string(&plan).expect("plans serialize");
        let back: FaultPlan = serde_json::from_str(&compact).expect("plans deserialize");
        prop_assert_eq!(back, plan);

        let pretty = serde_json::to_string_pretty(&plan).expect("plans serialize");
        let back: FaultPlan = serde_json::from_str(&pretty).expect("plans deserialize");
        prop_assert_eq!(back, plan);
    }
}

#[test]
fn every_intensity_of_every_kind_round_trips() {
    for kind in FaultKind::ALL {
        for intensity in [
            FaultIntensity::Off,
            FaultIntensity::Light,
            FaultIntensity::Moderate,
            FaultIntensity::Severe,
        ] {
            let plan = FaultPlan::single(kind, intensity);
            let json = serde_json::to_string(&plan).unwrap();
            let back: FaultPlan = serde_json::from_str(&json).unwrap();
            assert_eq!(
                back,
                plan,
                "{}/{} must round-trip",
                kind.name(),
                intensity.name()
            );
        }
    }
}

#[test]
fn kind_names_parse_back() {
    for kind in FaultKind::ALL {
        assert_eq!(FaultKind::parse(kind.name()), Some(kind));
    }
    assert_eq!(
        FaultKind::parse("defender-crash"),
        Some(FaultKind::DefenderCrash)
    );
    assert_eq!(FaultKind::parse("no-such-fault"), None);
}
