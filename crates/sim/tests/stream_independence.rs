//! Independence and stability of per-device RNG streams.
//!
//! Fleet campaigns key every device's randomness off
//! `stream_seed(campaign_seed, device_id)`. Two properties carry the
//! whole campaign determinism story:
//!
//! * **Independence** — adjacent device ids (and adjacent campaign
//!   seeds) must produce unrelated streams. A lazy derivation like
//!   `campaign_seed + device_id` fails this: stream `i+1` is stream `i`
//!   shifted by one draw, so half the fleet replays the other half's
//!   randomness. The window test below catches exactly that class of
//!   bug — any 8-draw overlap anywhere in the first 64 draws.
//! * **Stability** — the derivation is part of the on-disk format of
//!   every recorded `FleetSummary`. The pin test freezes stream 0's
//!   seed and first draws; if it ever fails, the change is breaking and
//!   every golden campaign artifact must be regenerated.

use std::collections::HashSet;

use jgre_sim::{stream_seed, SimRng};

fn draws(campaign_seed: u64, stream: u64, n: usize) -> Vec<u64> {
    let mut rng = SimRng::stream(campaign_seed, stream);
    (0..n).map(|_| rng.range(0u64..u64::MAX)).collect()
}

#[test]
fn adjacent_streams_share_no_eight_draw_window() {
    for campaign_seed in [0u64, 1, 2_017, 0xDEAD_BEEF, u64::MAX] {
        for stream in 0..8u64 {
            let a = draws(campaign_seed, stream, 64);
            let b = draws(campaign_seed, stream + 1, 64);
            let windows: HashSet<&[u64]> = a.windows(8).collect();
            for w in b.windows(8) {
                assert!(
                    !windows.contains(w),
                    "streams {stream} and {} of campaign {campaign_seed} share \
                     an 8-draw window — device randomness is correlated",
                    stream + 1
                );
            }
        }
    }
}

#[test]
fn adjacent_campaign_seeds_share_no_eight_draw_window() {
    for campaign_seed in [0u64, 2_016, 2_017] {
        for stream in 0..4u64 {
            let a = draws(campaign_seed, stream, 64);
            let b = draws(campaign_seed + 1, stream, 64);
            let windows: HashSet<&[u64]> = a.windows(8).collect();
            for w in b.windows(8) {
                assert!(
                    !windows.contains(w),
                    "campaigns {campaign_seed} and {} replay stream {stream}",
                    campaign_seed + 1
                );
            }
        }
    }
}

#[test]
fn stream_seeds_are_distinct_across_a_fleet() {
    let seeds: HashSet<u64> = (0..10_000).map(|i| stream_seed(2_017, i)).collect();
    assert_eq!(
        seeds.len(),
        10_000,
        "stream seeds collided within one campaign"
    );
}

/// Regression pin: the derivation feeding every fleet campaign.
///
/// These constants are the observed output of `stream_seed` /
/// `SimRng::stream` — not derived from anything else in the workspace.
/// If this test fails, the RNG or the derivation changed, every recorded
/// `FleetSummary` is invalidated, and golden artifacts must be
/// regenerated deliberately (never by updating these values casually).
#[test]
fn stream_zero_first_draws_are_pinned() {
    assert_eq!(stream_seed(2_017, 0), 0x9CAA_38C1_E374_B74A);
    assert_eq!(
        draws(2_017, 0, 4),
        vec![
            0x3358_059C_6089_73FB,
            0x4A8B_D6C7_293A_8E5E,
            0x7CE3_5985_F83A_61DE,
            0x8A54_D9B5_7029_477F,
        ]
    );
}
