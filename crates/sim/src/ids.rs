//! Process, user, and thread identities shared across the simulated system.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw kernel-style numeric id.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric id.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_newtype!(
    /// A process id in the simulated kernel.
    ///
    /// ```
    /// use jgre_sim::Pid;
    /// assert_eq!(Pid::new(412).to_string(), "pid:412");
    /// ```
    Pid,
    "pid:"
);

id_newtype!(
    /// An Android user id. Third-party apps get uids starting at 10000,
    /// mirroring `Process.FIRST_APPLICATION_UID`; the paper's Figure 9
    /// reports attackers as uids 10059–10063.
    ///
    /// ```
    /// use jgre_sim::Uid;
    /// assert!(Uid::new(10061).is_app());
    /// assert!(!Uid::SYSTEM.is_app());
    /// ```
    Uid,
    "uid:"
);

id_newtype!(
    /// A thread id within the simulated system.
    Tid,
    "tid:"
);

impl Uid {
    /// The `system` uid (1000 on Android).
    pub const SYSTEM: Uid = Uid(1000);

    /// First uid handed to installed applications
    /// (`Process.FIRST_APPLICATION_UID`).
    pub const FIRST_APPLICATION: Uid = Uid(10_000);

    /// Whether this uid belongs to an installed application rather than a
    /// system component.
    pub const fn is_app(self) -> bool {
        self.0 >= Self::FIRST_APPLICATION.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uid_classification() {
        assert!(Uid::new(10_000).is_app());
        assert!(Uid::new(99_999).is_app());
        assert!(!Uid::new(0).is_app());
        assert!(!Uid::SYSTEM.is_app());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pid::new(1).to_string(), "pid:1");
        assert_eq!(Uid::SYSTEM.to_string(), "uid:1000");
        assert_eq!(Tid::new(7).to_string(), "tid:7");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(Pid::new(3) < Pid::new(4));
        assert_eq!(Uid::from(5u32).raw(), 5);
    }
}
