//! Deterministic telemetry event sources for the streaming defender.
//!
//! A live device emits two interleaved streams the defense correlates:
//! Binder-log records (who called which IPC type, when) and JGR-add
//! events on the victim process. [`EventSource`] synthesizes that merged
//! stream at a configurable sustained rate, reproducibly from a seed:
//! one attacker hammers a single interface whose calls produce JGR adds
//! after a tight characteristic delay (the paper's `Delay ∈ [d, d+Δ]`
//! signature), while a population of benign apps spreads calls — and the
//! occasional uncorrelated add — across many interfaces.
//!
//! Events come out strictly time-ordered (ties resolve call-before-add,
//! matching the Binder-then-IRT ordering of the real device), so the
//! stream can be framed, shipped through a ring buffer, and scored
//! incrementally without a re-sort. The same configuration and seed
//! always produce the identical sequence — the property the `jgre serve`
//! byte-reproducibility smoke test rests on.

use serde::{Deserialize, Serialize};

use crate::{EventQueue, SimDuration, SimRng, SimTime, Uid};

/// What one telemetry event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceEventKind {
    /// A Binder-log record: app `uid` invoked interface `interface`.
    Call {
        /// The calling app.
        uid: Uid,
        /// Dense interface index (0 = the attacked interface; benign
        /// interfaces follow). [`EventSource::interface_label`] renders it.
        interface: u32,
    },
    /// A JGR add observed on the victim process.
    Add,
}

/// One telemetry event of the merged stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceEvent {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Payload.
    pub kind: SourceEventKind,
}

/// Tuning of one synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceConfig {
    /// RNG seed; the stream is a pure function of the whole config.
    pub seed: u64,
    /// Sustained call arrival rate (calls per virtual second, attacker +
    /// benign combined; adds arrive on top).
    pub events_per_sec: u64,
    /// Virtual length of the stream.
    pub duration: SimDuration,
    /// Fraction of calls issued by the attacker (`0.0..=1.0`).
    pub attacker_share: f64,
    /// The attacker's characteristic IPC→JGR delay.
    pub attack_delay: SimDuration,
    /// Uniform jitter applied to the attack delay (stays within the
    /// scorer's Δ band when smaller than it).
    pub attack_jitter: SimDuration,
    /// Benign apps sharing the remaining call budget round-robin.
    pub benign_apps: u32,
    /// Benign interfaces the benign apps rotate over.
    pub benign_interfaces: u32,
    /// Chance a benign call is followed by an uncorrelated JGR add
    /// (spread uniformly over 0–20 ms, so it votes thinly).
    pub benign_add_chance: f64,
}

impl Default for SourceConfig {
    fn default() -> Self {
        Self {
            seed: 2_017,
            events_per_sec: 10_000,
            duration: SimDuration::from_secs(1),
            attacker_share: 0.25,
            attack_delay: SimDuration::from_micros(500),
            attack_jitter: SimDuration::from_micros(40),
            benign_apps: 8,
            benign_interfaces: 12,
            benign_add_chance: 0.05,
        }
    }
}

impl SourceConfig {
    /// The attacker's uid (first application uid).
    pub fn attacker_uid(&self) -> Uid {
        Uid::FIRST_APPLICATION
    }

    /// The `i`-th benign app's uid (attacker + 1 + i).
    pub fn benign_uid(&self, i: u32) -> Uid {
        Uid::new(Uid::FIRST_APPLICATION.raw() + 1 + i)
    }
}

/// A deterministic, time-ordered iterator of [`SourceEvent`]s.
///
/// # Example
///
/// ```
/// use jgre_sim::source::{EventSource, SourceConfig};
///
/// let events: Vec<_> = EventSource::new(SourceConfig::default()).collect();
/// let replay: Vec<_> = EventSource::new(SourceConfig::default()).collect();
/// assert_eq!(events, replay, "same seed, same stream");
/// assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "time-ordered");
/// ```
#[derive(Debug)]
pub struct EventSource {
    config: SourceConfig,
    rng: SimRng,
    /// Pending events, keyed by time; the FIFO tie-break of [`EventQueue`]
    /// plus call-scheduled-before-add gives the call-before-add ordering.
    queue: EventQueue<SourceEventKind>,
    next_call_at: u64,
    gap_us: u64,
    calls_issued: u64,
    benign_cursor: u32,
}

impl EventSource {
    /// Creates the source; the first events are already scheduled.
    ///
    /// # Panics
    ///
    /// Panics when `events_per_sec` is zero or `attacker_share` is outside
    /// `[0, 1]`.
    pub fn new(config: SourceConfig) -> Self {
        assert!(config.events_per_sec > 0, "events_per_sec must be positive");
        assert!(
            (0.0..=1.0).contains(&config.attacker_share),
            "attacker_share out of range: {}",
            config.attacker_share
        );
        let gap_us = (1_000_000 / config.events_per_sec).max(1);
        Self {
            config,
            rng: SimRng::seed(config.seed),
            queue: EventQueue::new(),
            next_call_at: gap_us,
            gap_us,
            calls_issued: 0,
            benign_cursor: 0,
        }
    }

    /// The configuration the stream derives from.
    pub fn config(&self) -> &SourceConfig {
        &self.config
    }

    /// Human label of interface index `i` (`0` is the attacked one).
    pub fn interface_label(&self, interface: u32) -> String {
        if interface == 0 {
            "IVictim.attackSurface".to_owned()
        } else {
            format!("IBenign{interface}.method")
        }
    }

    /// Schedules the next call (and any add it triggers) into the queue.
    fn schedule_next_call(&mut self) {
        let at = self.next_call_at;
        if at > self.config.duration.as_micros() {
            return;
        }
        // ±20% arrival jitter keeps the long-run rate while breaking
        // lockstep with the scorer's bin edges.
        self.next_call_at = at + self.rng.jitter(self.gap_us, self.gap_us / 5);
        self.calls_issued += 1;
        let attacker_turn = self.rng.chance(self.config.attacker_share);
        if attacker_turn {
            let uid = self.config.attacker_uid();
            self.queue.schedule(
                SimTime::from_micros(at),
                SourceEventKind::Call { uid, interface: 0 },
            );
            let delay = self.rng.jitter(
                self.config.attack_delay.as_micros(),
                self.config.attack_jitter.as_micros(),
            );
            self.queue.schedule(
                SimTime::from_micros(at + delay.max(1)),
                SourceEventKind::Add,
            );
        } else {
            let apps = self.config.benign_apps.max(1);
            let interfaces = self.config.benign_interfaces.max(1);
            self.benign_cursor = self.benign_cursor.wrapping_add(1);
            let uid = self.config.benign_uid(self.benign_cursor % apps);
            let interface = 1 + self.benign_cursor % interfaces;
            self.queue.schedule(
                SimTime::from_micros(at),
                SourceEventKind::Call { uid, interface },
            );
            if self.config.benign_add_chance > 0.0 && self.rng.chance(self.config.benign_add_chance)
            {
                // Uncorrelated housekeeping add: lands anywhere in the next
                // 20 ms, so its votes spread across the delay histogram.
                let delay = self.rng.range(1..=20_000u64);
                self.queue
                    .schedule(SimTime::from_micros(at + delay), SourceEventKind::Add);
            }
        }
    }
}

impl Iterator for EventSource {
    type Item = SourceEvent;

    fn next(&mut self) -> Option<SourceEvent> {
        // Keep at least one future call scheduled so pending adds merge in
        // time order with calls that have not been generated yet.
        loop {
            let horizon_empty = self.queue.is_empty();
            let next_pending_after_call = self
                .queue
                .peek_time()
                .is_none_or(|t| t.as_micros() >= self.next_call_at);
            if (horizon_empty || next_pending_after_call)
                && self.next_call_at <= self.config.duration.as_micros()
            {
                self.schedule_next_call();
                continue;
            }
            break;
        }
        let (at, kind) = self.queue.pop()?;
        Some(SourceEvent { at, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(config: SourceConfig) -> Vec<SourceEvent> {
        EventSource::new(config).collect()
    }

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let config = SourceConfig::default();
        let a = collect(config);
        let b = collect(config);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "time-ordered");
    }

    #[test]
    fn rate_is_approximately_honoured() {
        let config = SourceConfig {
            events_per_sec: 5_000,
            duration: SimDuration::from_secs(2),
            ..SourceConfig::default()
        };
        let calls = collect(config)
            .iter()
            .filter(|e| matches!(e.kind, SourceEventKind::Call { .. }))
            .count() as f64;
        let expected = 10_000.0;
        assert!(
            (calls - expected).abs() / expected < 0.15,
            "calls {calls} vs expected {expected}"
        );
    }

    #[test]
    fn attacker_adds_trail_attacker_calls_by_the_delay() {
        let config = SourceConfig {
            attacker_share: 1.0,
            benign_add_chance: 0.0,
            ..SourceConfig::default()
        };
        let events = collect(config);
        let mut last_call: Option<SimTime> = None;
        for e in &events {
            match e.kind {
                SourceEventKind::Call { uid, interface } => {
                    assert_eq!(uid, config.attacker_uid());
                    assert_eq!(interface, 0);
                    last_call = Some(e.at);
                }
                SourceEventKind::Add => {
                    let call = last_call.expect("add after its call");
                    let delay = e.at.saturating_since(call).as_micros();
                    assert!(
                        delay <= config.attack_delay.as_micros() + config.attack_jitter.as_micros(),
                        "delay {delay}"
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = collect(SourceConfig::default());
        let b = collect(SourceConfig {
            seed: 99,
            ..SourceConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn labels_are_stable() {
        let source = EventSource::new(SourceConfig::default());
        assert_eq!(source.interface_label(0), "IVictim.attackSurface");
        assert_eq!(source.interface_label(3), "IBenign3.method");
    }
}
