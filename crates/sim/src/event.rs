//! A stable timed event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs that pops events in time order,
/// breaking ties in FIFO insertion order.
///
/// The FIFO tie-break matters for determinism: two events scheduled for the
/// same microsecond (a Binder transaction and the JGR add it triggers, say)
/// must always replay in the same order.
///
/// # Example
///
/// ```
/// use jgre_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), "late");
/// q.schedule(SimTime::from_micros(5), "first");
/// q.schedule(SimTime::from_micros(5), "second");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["first", "second", "late"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then the lowest
        // sequence number) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards every pending event and restarts the FIFO tie-break
    /// counter, keeping the heap's allocation.
    ///
    /// Arena-style reuse: a queue cleared between simulation runs behaves
    /// exactly like a freshly constructed one (same tie-break order for
    /// identical schedules), without reallocating.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for micros in [30u64, 10, 20] {
            q.schedule(SimTime::from_micros(micros), micros);
        }
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(10)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for label in 0..100 {
            q.schedule(t, label);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cleared_queue_behaves_like_new() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(4), "stale");
        q.clear();
        assert!(q.is_empty());
        // Same schedule, same tie-break order as a fresh queue.
        let t = SimTime::from_micros(1);
        q.schedule(t, "first");
        q.schedule(t, "second");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second"]);
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
