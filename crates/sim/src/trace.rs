//! A lightweight in-memory trace used by experiments for post-hoc analysis.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::{Pid, SimTime, Uid};

/// A single labelled trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened on the virtual timeline.
    pub at: SimTime,
    /// Process the event is attributed to, when applicable.
    pub pid: Option<Pid>,
    /// Uid the event is attributed to, when applicable.
    pub uid: Option<Uid>,
    /// Event kind, e.g. `"jgr.add"` or `"binder.transact"`.
    pub kind: String,
    /// Free-form detail, e.g. the IPC interface name.
    pub detail: String,
}

/// A shared, append-only trace sink.
///
/// Cloning a `TraceSink` produces another handle on the same buffer, so a
/// sink can be threaded through the runtime, the Binder driver, and the
/// defense monitor while the experiment keeps one handle to read back.
///
/// # Example
///
/// ```
/// use jgre_sim::{SimTime, TraceSink};
///
/// let sink = TraceSink::new();
/// let writer = sink.clone();
/// writer.record(SimTime::ZERO, None, None, "jgr.add", "clipboard listener");
/// assert_eq!(sink.len(), 1);
/// assert_eq!(sink.snapshot()[0].kind, "jgr.add");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    events: Rc<RefCell<Vec<TraceEvent>>>,
    enabled: Rc<RefCell<bool>>,
}

impl TraceSink {
    /// Creates an enabled, empty sink.
    pub fn new() -> Self {
        Self {
            events: Rc::new(RefCell::new(Vec::new())),
            enabled: Rc::new(RefCell::new(true)),
        }
    }

    /// Creates a sink that drops everything; useful for benchmarks where
    /// tracing overhead would pollute measurements.
    pub fn disabled() -> Self {
        let sink = Self::new();
        *sink.enabled.borrow_mut() = false;
        sink
    }

    /// Whether records are currently kept.
    pub fn is_enabled(&self) -> bool {
        *self.enabled.borrow()
    }

    /// Appends a record (no-op when disabled).
    pub fn record(
        &self,
        at: SimTime,
        pid: Option<Pid>,
        uid: Option<Uid>,
        kind: &str,
        detail: impl Into<String>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.events.borrow_mut().push(TraceEvent {
            at,
            pid,
            uid,
            kind: kind.to_owned(),
            detail: detail.into(),
        });
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether the sink holds no records.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Copies out all records.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// Copies out records whose `kind` matches exactly.
    pub fn of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Drops all records.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_shared_across_clones() {
        let sink = TraceSink::new();
        let w = sink.clone();
        w.record(SimTime::ZERO, Some(Pid::new(1)), None, "a", "x");
        w.record(SimTime::from_micros(5), None, Some(Uid::SYSTEM), "b", "y");
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.of_kind("b").len(), 1);
    }

    #[test]
    fn disabled_sink_drops_records() {
        let sink = TraceSink::disabled();
        sink.record(SimTime::ZERO, None, None, "a", "x");
        assert!(sink.is_empty());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn clear_empties() {
        let sink = TraceSink::new();
        sink.record(SimTime::ZERO, None, None, "a", "x");
        sink.clear();
        assert!(sink.is_empty());
    }
}
