//! Seeded randomness for reproducible workloads.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source.
///
/// All stochastic behaviour in the simulation (benign app inter-arrival
/// times, execution-time jitter, workload shuffles) draws from a `SimRng`
/// derived from a single experiment seed, so every table and figure can be
/// regenerated bit-for-bit.
///
/// # Example
///
/// ```
/// use jgre_sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.range(0u64..100), b.range(0u64..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

/// One round of the splitmix64 finalizer: full 64-bit avalanche, so a
/// single flipped input bit scrambles every output bit.
const fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `stream` within campaign `campaign_seed`.
///
/// Fleet campaigns give every simulated device its own RNG stream keyed by
/// `(campaign_seed, device_id)`. Two splitmix64 finalizer rounds separated
/// by a golden-gamma advance diffuse both inputs, so adjacent device ids
/// (and adjacent campaign seeds) produce statistically unrelated streams —
/// the property `crates/sim/tests/stream_independence.rs` pins. The
/// mapping is part of the fleet determinism contract: changing it changes
/// every campaign's byte-identical summary, so a regression test pins
/// stream 0's first draws.
///
/// # Example
///
/// ```
/// use jgre_sim::{stream_seed, SimRng};
///
/// let mut dev0 = SimRng::stream(2017, 0);
/// let mut dev1 = SimRng::stream(2017, 1);
/// assert_ne!(dev0.range(0u64..u64::MAX), dev1.range(0u64..u64::MAX));
/// assert_eq!(stream_seed(2017, 0), stream_seed(2017, 0));
/// ```
pub const fn stream_seed(campaign_seed: u64, stream: u64) -> u64 {
    let mixed_campaign = splitmix64(campaign_seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let advanced = mixed_campaign.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(advanced)
}

impl SimRng {
    /// Creates an RNG from an experiment seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates the RNG for stream `stream` of campaign `campaign_seed` —
    /// see [`stream_seed`].
    pub fn stream(campaign_seed: u64, stream: u64) -> Self {
        Self::seed(stream_seed(campaign_seed, stream))
    }

    /// Derives an independent child RNG; used to give each simulated app its
    /// own stream so that adding apps does not perturb existing ones.
    pub fn fork(&mut self, salt: u64) -> Self {
        let base = self.inner.next_u64();
        Self::seed(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }

    /// Samples a value in `[base - spread, base + spread]`, clamped at zero,
    /// modelling measurement jitter around a nominal cost.
    pub fn jitter(&mut self, base: u64, spread: u64) -> u64 {
        if spread == 0 {
            return base;
        }
        let lo = base.saturating_sub(spread);
        let hi = base + spread;
        self.inner.gen_range(lo..=hi)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.inner.gen_range(0..slice.len());
            Some(&slice[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..32 {
            assert_eq!(a.range(0u32..1000), b.range(0u32..1000));
        }
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let mut root1 = SimRng::seed(1);
        let mut root2 = SimRng::seed(1);
        let mut f1 = root1.fork(9);
        let mut f2 = root2.fork(9);
        assert_eq!(f1.range(0u64..u64::MAX), f2.range(0u64..u64::MAX));
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::seed(3);
        for _ in 0..200 {
            let v = rng.jitter(100, 20);
            assert!((80..=120).contains(&v), "jitter {v} out of band");
        }
        assert_eq!(rng.jitter(55, 0), 55);
        // Base smaller than spread must clamp at zero rather than underflow.
        let v = rng.jitter(3, 10);
        assert!(v <= 13);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = SimRng::seed(5);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
        assert_eq!(rng.choose(&[7u8]), Some(&7));
    }
}
