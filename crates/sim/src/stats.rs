//! Small summary-statistics helpers for experiment post-processing.
//!
//! The experiment runners repeatedly need percentiles, means, and CDF
//! slices over sampled series (execution times, JGR counts, response
//! delays). This module centralises that arithmetic so every figure uses
//! the same definitions.

use serde::{Deserialize, Serialize};

/// Summary of a numeric sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Minimum value.
    pub min: u64,
    /// Maximum value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub median: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Collects values and answers percentile/summary queries.
///
/// # Example
///
/// ```
/// use jgre_sim::Samples;
///
/// let mut s = Samples::new();
/// for v in 1..=100u64 {
///     s.record(v);
/// }
/// assert_eq!(s.percentile(50), 50);
/// assert_eq!(s.percentile(100), 100);
/// let summary = s.summary().unwrap();
/// assert_eq!(summary.count, 100);
/// assert_eq!(summary.min, 1);
/// assert!((summary.mean - 50.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<u64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates from existing values.
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.record(v);
        }
        s
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (nearest-rank on the sorted data).
    ///
    /// # Panics
    ///
    /// Panics if the collection is empty or `p > 100`.
    pub fn percentile(&mut self, p: u32) -> u64 {
        assert!(p <= 100, "percentile out of range: {p}");
        assert!(!self.values.is_empty(), "percentile of an empty sample set");
        self.ensure_sorted();
        let idx = (self.values.len() - 1) * p as usize / 100;
        self.values[idx]
    }

    /// Full summary, or `None` when empty.
    pub fn summary(&mut self) -> Option<Summary> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let count = self.values.len();
        let sum: u128 = self.values.iter().map(|&v| v as u128).sum();
        Some(Summary {
            count,
            min: self.values[0],
            max: self.values[count - 1],
            mean: sum as f64 / count as f64,
            median: self.values[(count - 1) / 2],
            p90: self.values[(count - 1) * 90 / 100],
            p99: self.values[(count - 1) * 99 / 100],
        })
    }

    /// The empirical CDF as `(value, cumulative probability)` points,
    /// thinned to at most `max_points`.
    pub fn cdf(&mut self, max_points: usize) -> Vec<(u64, f64)> {
        if self.values.is_empty() || max_points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.values.len();
        let stride = n.div_ceil(max_points).max(1);
        let mut points: Vec<(u64, f64)> = (0..n)
            .step_by(stride)
            .map(|i| (self.values[i], (i + 1) as f64 / n as f64))
            .collect();
        // Always include the endpoint so the CDF reaches 1.0.
        if points.last().map(|&(v, _)| v) != Some(self.values[n - 1])
            || points.last().map(|&(_, p)| p) != Some(1.0)
        {
            points.push((self.values[n - 1], 1.0));
        }
        points
    }
}

impl Extend<u64> for Samples {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for Samples {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Self::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_set() {
        let mut s: Samples = (1..=10u64).collect();
        let summary = s.summary().unwrap();
        assert_eq!(summary.count, 10);
        assert_eq!(summary.min, 1);
        assert_eq!(summary.max, 10);
        assert_eq!(summary.median, 5);
        assert!((summary.mean - 5.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_order_independent() {
        let mut a = Samples::from_values([5, 1, 9, 3, 7]);
        let mut b = Samples::from_values([9, 7, 5, 3, 1]);
        for p in [0, 25, 50, 75, 100] {
            assert_eq!(a.percentile(p), b.percentile(p));
        }
    }

    #[test]
    fn cdf_reaches_one_and_is_monotone() {
        let mut s: Samples = (0..1000u64).collect();
        let cdf = s.cdf(50);
        assert!(cdf.len() <= 51);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn empty_behaviour() {
        let mut s = Samples::new();
        assert!(s.summary().is_none());
        assert!(s.cdf(10).is_empty());
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn percentile_of_empty_panics() {
        Samples::new().percentile(50);
    }

    #[test]
    fn record_after_query_resorts() {
        let mut s = Samples::from_values([10, 20]);
        assert_eq!(s.percentile(100), 20);
        s.record(5);
        assert_eq!(s.percentile(0), 5);
        assert_eq!(s.len(), 3);
    }
}
