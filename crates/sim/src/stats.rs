//! Small summary-statistics helpers for experiment post-processing.
//!
//! The experiment runners repeatedly need percentiles, means, and CDF
//! slices over sampled series (execution times, JGR counts, response
//! delays). This module centralises that arithmetic so every figure uses
//! the same definitions.

use serde::{Deserialize, Serialize};

/// Summary of a numeric sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Minimum value.
    pub min: u64,
    /// Maximum value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub median: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Collects values and answers percentile/summary queries.
///
/// # Example
///
/// ```
/// use jgre_sim::Samples;
///
/// let mut s = Samples::new();
/// for v in 1..=100u64 {
///     s.record(v);
/// }
/// assert_eq!(s.percentile(50), 50);
/// assert_eq!(s.percentile(100), 100);
/// let summary = s.summary().unwrap();
/// assert_eq!(summary.count, 100);
/// assert_eq!(summary.min, 1);
/// assert!((summary.mean - 50.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<u64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates from existing values.
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.record(v);
        }
        s
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (nearest-rank on the sorted data).
    ///
    /// # Panics
    ///
    /// Panics if the collection is empty or `p > 100`.
    pub fn percentile(&mut self, p: u32) -> u64 {
        assert!(p <= 100, "percentile out of range: {p}");
        assert!(!self.values.is_empty(), "percentile of an empty sample set");
        self.ensure_sorted();
        let idx = (self.values.len() - 1) * p as usize / 100;
        self.values[idx]
    }

    /// Full summary, or `None` when empty.
    pub fn summary(&mut self) -> Option<Summary> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let count = self.values.len();
        let sum: u128 = self.values.iter().map(|&v| v as u128).sum();
        Some(Summary {
            count,
            min: self.values[0],
            max: self.values[count - 1],
            mean: sum as f64 / count as f64,
            median: self.values[(count - 1) / 2],
            p90: self.values[(count - 1) * 90 / 100],
            p99: self.values[(count - 1) * 99 / 100],
        })
    }

    /// The empirical CDF as `(value, cumulative probability)` points,
    /// thinned to at most `max_points`.
    pub fn cdf(&mut self, max_points: usize) -> Vec<(u64, f64)> {
        if self.values.is_empty() || max_points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.values.len();
        let stride = n.div_ceil(max_points).max(1);
        let mut points: Vec<(u64, f64)> = (0..n)
            .step_by(stride)
            .map(|i| (self.values[i], (i + 1) as f64 / n as f64))
            .collect();
        // Always include the endpoint so the CDF reaches 1.0.
        if points.last().map(|&(v, _)| v) != Some(self.values[n - 1])
            || points.last().map(|&(_, p)| p) != Some(1.0)
        {
            points.push((self.values[n - 1], 1.0));
        }
        points
    }
}

/// Number of log₂ bins in a [`Histogram`]: bin 0 holds zeros, bin `k`
/// holds values in `[2^(k-1), 2^k)`, bin 64 holds `[2^63, u64::MAX]`.
pub const HISTOGRAM_BINS: usize = 65;

/// A fixed-size, order-independently mergeable histogram.
///
/// Fleet-scale campaigns aggregate millions of sampled durations without
/// materialising them: every value lands in one of [`HISTOGRAM_BINS`]
/// log₂-spaced bins, and two histograms merge by adding bins. Because
/// recording and merging are commutative and associative, the result is
/// byte-identical no matter how the sample stream was sharded across
/// workers — the property the fleet determinism harness relies on.
///
/// # Example
///
/// ```
/// use jgre_sim::Histogram;
///
/// let mut a = Histogram::new();
/// let mut b = Histogram::new();
/// a.record(3);
/// b.record(1_000);
/// let mut merged = a.clone();
/// merged.merge(&b);
/// assert_eq!(merged.count(), 2);
/// assert_eq!(merged.min(), Some(3));
/// assert_eq!(merged.max(), Some(1_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bin counts (`bins[0]` = zeros, `bins[k]` = `[2^(k-1), 2^k)`).
    bins: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            bins: vec![0; HISTOGRAM_BINS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bin index `value` falls into.
    pub fn bin_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive-exclusive value range of bin `index` (the last bin is
    /// clamped at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics when `index >= HISTOGRAM_BINS`.
    pub fn bin_range(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BINS, "bin {index} out of range");
        match index {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            k => (1 << (k - 1), 1 << k),
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.bins[Self::bin_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`. Merging is commutative
    /// and associative, so shard partials can be folded in any order.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bin containing the `p`-th percentile
    /// (nearest-rank over bins), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    pub fn percentile_bound(&self, p: u32) -> Option<u64> {
        assert!(p <= 100, "percentile out of range: {p}");
        self.quantile(f64::from(p) / 100.0)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`).
    ///
    /// Log₂ bins cannot resolve the exact order statistic, so the answer
    /// is the upper edge of the bin holding the nearest-rank sample —
    /// an estimate that never under-reports a latency. The observed
    /// maximum tightens the top populated bin.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(
            (0.0..=1.0).contains(&q) && !q.is_nan(),
            "quantile out of range: {q}"
        );
        if self.count == 0 {
            return None;
        }
        // Same nearest-rank convention as `Samples::percentile`.
        let rank = ((self.count - 1) as f64 * q) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                let (_, hi) = Self::bin_range(i);
                return Some(hi.saturating_sub(1).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Upper-bound estimate of the median (`quantile(0.5)`).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Upper-bound estimate of the 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The populated bins as `(lo, hi_exclusive, count)` rows, for
    /// rendering.
    pub fn populated_bins(&self) -> Vec<(u64, u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = Self::bin_range(i);
                (lo, hi, n)
            })
            .collect()
    }
}

impl Extend<u64> for Samples {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for Samples {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Self::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_set() {
        let mut s: Samples = (1..=10u64).collect();
        let summary = s.summary().unwrap();
        assert_eq!(summary.count, 10);
        assert_eq!(summary.min, 1);
        assert_eq!(summary.max, 10);
        assert_eq!(summary.median, 5);
        assert!((summary.mean - 5.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_order_independent() {
        let mut a = Samples::from_values([5, 1, 9, 3, 7]);
        let mut b = Samples::from_values([9, 7, 5, 3, 1]);
        for p in [0, 25, 50, 75, 100] {
            assert_eq!(a.percentile(p), b.percentile(p));
        }
    }

    #[test]
    fn cdf_reaches_one_and_is_monotone() {
        let mut s: Samples = (0..1000u64).collect();
        let cdf = s.cdf(50);
        assert!(cdf.len() <= 51);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn empty_behaviour() {
        let mut s = Samples::new();
        assert!(s.summary().is_none());
        assert!(s.cdf(10).is_empty());
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn percentile_of_empty_panics() {
        Samples::new().percentile(50);
    }

    #[test]
    fn histogram_bins_and_summary() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(Histogram::bin_of(0), 0);
        assert_eq!(Histogram::bin_of(1), 1);
        assert_eq!(Histogram::bin_of(2), 2);
        assert_eq!(Histogram::bin_of(3), 2);
        assert_eq!(Histogram::bin_of(1024), 11);
        assert_eq!(Histogram::bin_of(u64::MAX), 64);
        let rows = h.populated_bins();
        assert_eq!(rows.iter().map(|&(_, _, n)| n).sum::<u64>(), 7);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let values: Vec<u64> = (0..200).map(|i| i * 37 % 4096).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        // Shard the same stream three ways; every fold order must agree.
        for shards in [1usize, 2, 7] {
            let mut partials = vec![Histogram::new(); shards];
            for (i, &v) in values.iter().enumerate() {
                partials[i % shards].record(v);
            }
            let mut forward = Histogram::new();
            for p in &partials {
                forward.merge(p);
            }
            let mut backward = Histogram::new();
            for p in partials.iter().rev() {
                backward.merge(p);
            }
            assert_eq!(forward, whole, "{shards} shards diverged");
            assert_eq!(backward, whole, "{shards} reverse-fold diverged");
        }
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Nearest-rank p50 of 1..=1000 is 500 (bin [256, 512)); p99 is
        // 990 (bin [512, 1024), tightened by the observed max).
        let p50 = h.p50().unwrap();
        assert!((500..512).contains(&p50), "p50 bound {p50}");
        let p99 = h.p99().unwrap();
        assert!((990..=1000).contains(&p99), "p99 bound {p99}");
        // The quantile never under-reports the true order statistic.
        for (q, exact) in [
            (0.0, 1u64),
            (0.25, 250),
            (0.5, 500),
            (0.99, 990),
            (1.0, 1000),
        ] {
            assert!(h.quantile(q).unwrap() >= exact, "q={q}");
        }
        // Accessors agree with the percentile_bound convention.
        assert_eq!(h.p50(), h.percentile_bound(50));
        assert_eq!(h.p99(), h.percentile_bound(99));
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn histogram_quantiles_empty_and_single() {
        assert!(Histogram::new().p50().is_none());
        assert!(Histogram::new().p99().is_none());
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.p50(), Some(42));
        assert_eq!(h.p99(), Some(42));
        assert_eq!(h.quantile(0.0), Some(42));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_quantile_rejects_out_of_range() {
        let mut h = Histogram::new();
        h.record(1);
        h.quantile(1.5);
    }

    #[test]
    fn histogram_percentile_bound_brackets_the_value() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile_bound(50).unwrap();
        // Nearest-rank p50 of 1..=1000 is 500; its bin is [256, 512).
        assert!((500..512).contains(&p50), "p50 bound {p50}");
        assert_eq!(h.percentile_bound(100), Some(1000));
        assert!(Histogram::new().percentile_bound(50).is_none());
    }

    #[test]
    fn record_after_query_resorts() {
        let mut s = Samples::from_values([10, 20]);
        assert_eq!(s.percentile(100), 20);
        s.record(5);
        assert_eq!(s.percentile(0), 5);
        assert_eq!(s.len(), 3);
    }
}
