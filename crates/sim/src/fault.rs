//! Seeded, deterministic fault injection.
//!
//! The defense stack of the paper assumes a pristine runtime: the Binder
//! driver's IPC log is complete and time-ordered, the runtime monitor's
//! JGR event log is lossless, and a kill always reclaims the victim's
//! references. Real devices violate all three (BinderCracker-style stress,
//! log buffer pressure, zombie processes), so this module lets an
//! experiment *break those assumptions on purpose* — reproducibly.
//!
//! A [`FaultPlan`] declares per-channel fault probabilities; a
//! [`FaultLayer`] (a cheaply clonable handle shared by the Binder driver,
//! the JGR monitor, and the process-kill path) draws every fault decision
//! from its own [`SimRng`] stream, so a given `(seed, plan)` pair replays
//! bit-for-bit and an all-zero plan consumes no randomness at all —
//! faultless runs are byte-identical to runs without the layer installed.
//!
//! # Example
//!
//! ```
//! use jgre_sim::{FaultIntensity, FaultKind, FaultLayer, FaultPlan};
//!
//! let plan = FaultPlan::single(FaultKind::IpcDrop, FaultIntensity::Moderate);
//! let layer = FaultLayer::new(plan, 7);
//! let twin = FaultLayer::new(plan, 7);
//! for _ in 0..64 {
//!     assert_eq!(layer.ipc_log_action(), twin.ipc_log_action());
//! }
//! assert!(layer.stats().total() > 0, "moderate drop rate must fire in 64 draws");
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimRng, SimTime};

/// The fault channels the layer can inject, one per defender assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// An IPC transaction is routed but its log record is lost.
    IpcDrop,
    /// An IPC log record is appended twice.
    IpcDuplicate,
    /// An IPC record is stamped late (written with a delayed timestamp).
    IpcDelay,
    /// An IPC record lands in the log before its predecessor.
    IpcReorder,
    /// The monitor loses a JGR event timestamp (truncated event log).
    JgrTruncate,
    /// The monitor records a JGR event with a corrupted timestamp.
    JgrCorrupt,
    /// Clock jitter skews the IPC record's correlation timestamp.
    ClockJitter,
    /// `am force-stop` fails: the target process survives the kill.
    KillFail,
    /// The killed app is immediately respawned by its sync adapters /
    /// sticky services.
    KillRespawn,
    /// The defender process itself dies at a poll/journal/kill boundary.
    /// Consumed by the crash-consistent harness; inert for an
    /// unsupervised defender.
    DefenderCrash,
}

impl FaultKind {
    /// Every fault kind, in matrix order.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::IpcDrop,
        FaultKind::IpcDuplicate,
        FaultKind::IpcDelay,
        FaultKind::IpcReorder,
        FaultKind::JgrTruncate,
        FaultKind::JgrCorrupt,
        FaultKind::ClockJitter,
        FaultKind::KillFail,
        FaultKind::KillRespawn,
        FaultKind::DefenderCrash,
    ];

    /// Stable kebab-case name (CLI flag values and artifact keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IpcDrop => "ipc-drop",
            FaultKind::IpcDuplicate => "ipc-duplicate",
            FaultKind::IpcDelay => "ipc-delay",
            FaultKind::IpcReorder => "ipc-reorder",
            FaultKind::JgrTruncate => "jgr-truncate",
            FaultKind::JgrCorrupt => "jgr-corrupt",
            FaultKind::ClockJitter => "clock-jitter",
            FaultKind::KillFail => "kill-fail",
            FaultKind::KillRespawn => "kill-respawn",
            FaultKind::DefenderCrash => "defender-crash",
        }
    }

    /// Parses a kebab-case name produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How hard a fault channel is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultIntensity {
    /// Channel disabled.
    Off,
    /// Rare faults (~2 % of opportunities).
    Light,
    /// The issue's head-line condition (~10 % of opportunities, one
    /// budgeted kill failure).
    Moderate,
    /// Hostile conditions (~30 % of opportunities, unbounded kill
    /// failures).
    Severe,
}

impl FaultIntensity {
    /// Every intensity above `Off`, ascending.
    pub const ACTIVE: [FaultIntensity; 3] = [
        FaultIntensity::Light,
        FaultIntensity::Moderate,
        FaultIntensity::Severe,
    ];

    /// The per-opportunity fault probability this intensity drives a
    /// channel at.
    pub fn probability(self) -> f64 {
        match self {
            FaultIntensity::Off => 0.0,
            FaultIntensity::Light => 0.02,
            FaultIntensity::Moderate => 0.10,
            FaultIntensity::Severe => 0.30,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FaultIntensity::Off => "off",
            FaultIntensity::Light => "light",
            FaultIntensity::Moderate => "moderate",
            FaultIntensity::Severe => "severe",
        }
    }

    /// Parses a name produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<FaultIntensity> {
        [
            FaultIntensity::Off,
            FaultIntensity::Light,
            FaultIntensity::Moderate,
            FaultIntensity::Severe,
        ]
        .into_iter()
        .find(|i| i.name() == s)
    }
}

impl fmt::Display for FaultIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the defender's control flow a [`FaultKind::DefenderCrash`]
/// fault may strike.
///
/// The crash channel is consulted only at these boundaries — the places
/// where a real defender process holds in-memory state that a write-ahead
/// journal must make recoverable. Each boundary is an *opportunity*; the
/// plan's [`crash`](FaultPlan::crash) probability and
/// [`crash_budget`](FaultPlan::crash_budget) decide whether it fires, and
/// [`crash_point`](FaultPlan::crash_point) can pin the channel to one
/// boundary so a schedule deterministically kills the defender at, say,
/// exactly the kill loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CrashPoint {
    /// An alarm was picked up but no work has happened yet.
    PollStart,
    /// Scoring finished; the kill list exists only in memory.
    PostScoring,
    /// Immediately before a kill attempt — earlier kills of the same pass
    /// have already mutated the system.
    Kill,
    /// Right before the decision record reaches the journal: the pass
    /// completed (kills applied, monitor reset) but nothing durable says
    /// so.
    JournalAppend,
    /// Right before a checkpoint is written.
    Checkpoint,
}

impl CrashPoint {
    /// Every crash boundary, in control-flow order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::PollStart,
        CrashPoint::PostScoring,
        CrashPoint::Kill,
        CrashPoint::JournalAppend,
        CrashPoint::Checkpoint,
    ];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::PollStart => "poll-start",
            CrashPoint::PostScoring => "post-scoring",
            CrashPoint::Kill => "kill",
            CrashPoint::JournalAppend => "journal-append",
            CrashPoint::Checkpoint => "checkpoint",
        }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Declarative fault configuration: one probability (and where needed a
/// magnitude) per channel. All probabilities are per-opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability an IPC record is dropped from the driver log.
    pub ipc_drop: f64,
    /// Probability an IPC record is appended twice.
    pub ipc_duplicate: f64,
    /// Probability an IPC record is stamped late.
    pub ipc_delay: f64,
    /// Maximum late-stamping skew.
    pub ipc_delay_max: SimDuration,
    /// Probability an IPC record is swapped with its predecessor.
    pub ipc_reorder: f64,
    /// Probability a JGR event timestamp is lost by the monitor.
    pub jgr_truncate: f64,
    /// Probability a JGR event timestamp is corrupted by the monitor.
    pub jgr_corrupt: f64,
    /// Maximum ± corruption applied to a corrupted JGR timestamp.
    pub jgr_corrupt_max: SimDuration,
    /// Probability an IPC record timestamp picks up clock jitter.
    pub clock_jitter: f64,
    /// Maximum ± jitter applied to a jittered IPC timestamp.
    pub clock_jitter_max: SimDuration,
    /// Probability a kill fails outright.
    pub kill_fail: f64,
    /// Budget of injected kill failures (`u32::MAX` = unbounded). The
    /// issue's moderate condition is exactly one failed kill.
    pub kill_fail_budget: u32,
    /// Probability a killed app respawns immediately.
    pub kill_respawn: f64,
    /// Probability the defender process dies at a crash boundary.
    pub crash: f64,
    /// Budget of injected defender crashes (`u32::MAX` = unbounded).
    pub crash_budget: u32,
    /// Restrict crashes to one boundary (`None` = any boundary may fire).
    pub crash_point: Option<CrashPoint>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The all-zero plan: no channel fires, no randomness is consumed.
    pub fn none() -> Self {
        Self {
            ipc_drop: 0.0,
            ipc_duplicate: 0.0,
            ipc_delay: 0.0,
            ipc_delay_max: SimDuration::from_millis(20),
            ipc_reorder: 0.0,
            jgr_truncate: 0.0,
            jgr_corrupt: 0.0,
            jgr_corrupt_max: SimDuration::from_millis(5),
            clock_jitter: 0.0,
            clock_jitter_max: SimDuration::from_millis(2),
            kill_fail: 0.0,
            kill_fail_budget: u32::MAX,
            kill_respawn: 0.0,
            crash: 0.0,
            crash_budget: u32::MAX,
            crash_point: None,
        }
    }

    /// A plan driving exactly one channel at the given intensity; every
    /// other channel stays off.
    pub fn single(kind: FaultKind, intensity: FaultIntensity) -> Self {
        let p = intensity.probability();
        let mut plan = Self::none();
        match kind {
            FaultKind::IpcDrop => plan.ipc_drop = p,
            FaultKind::IpcDuplicate => plan.ipc_duplicate = p,
            FaultKind::IpcDelay => plan.ipc_delay = p,
            FaultKind::IpcReorder => plan.ipc_reorder = p,
            FaultKind::JgrTruncate => plan.jgr_truncate = p,
            FaultKind::JgrCorrupt => plan.jgr_corrupt = p,
            FaultKind::ClockJitter => plan.clock_jitter = p,
            FaultKind::KillFail => {
                plan.kill_fail = 1.0;
                // One budgeted failure below severe; severe keeps failing
                // probabilistically without a budget.
                match intensity {
                    FaultIntensity::Off => plan.kill_fail = 0.0,
                    FaultIntensity::Light | FaultIntensity::Moderate => plan.kill_fail_budget = 1,
                    FaultIntensity::Severe => {
                        plan.kill_fail = 0.75;
                        plan.kill_fail_budget = u32::MAX;
                    }
                }
            }
            FaultKind::KillRespawn => plan.kill_respawn = (p * 5.0).min(1.0),
            FaultKind::DefenderCrash => match intensity {
                FaultIntensity::Off => plan.crash = 0.0,
                // One deterministic mid-incident death below severe — the
                // headline crash-and-recover condition.
                FaultIntensity::Light | FaultIntensity::Moderate => {
                    plan.crash = 1.0;
                    plan.crash_budget = 1;
                }
                // Severe: repeated probabilistic deaths, still bounded so
                // a sane supervisor restart budget cannot be exhausted.
                FaultIntensity::Severe => {
                    plan.crash = 0.6;
                    plan.crash_budget = 5;
                }
            },
        }
        plan
    }

    /// The issue's moderate headline condition: 10 % IPC-record loss and
    /// exactly one failed kill.
    pub fn moderate() -> Self {
        Self {
            ipc_drop: 0.10,
            kill_fail: 1.0,
            kill_fail_budget: 1,
            ..Self::none()
        }
    }

    /// Whether any channel can fire.
    pub fn is_active(&self) -> bool {
        [
            self.ipc_drop,
            self.ipc_duplicate,
            self.ipc_delay,
            self.ipc_reorder,
            self.jgr_truncate,
            self.jgr_corrupt,
            self.clock_jitter,
            self.kill_fail,
            self.kill_respawn,
            self.crash,
        ]
        .iter()
        .any(|&p| p > 0.0)
    }

    /// Validates every probability is a probability.
    ///
    /// # Errors
    ///
    /// Returns the offending channel name and value.
    pub fn validate(&self) -> Result<(), (&'static str, f64)> {
        for (name, p) in [
            ("ipc_drop", self.ipc_drop),
            ("ipc_duplicate", self.ipc_duplicate),
            ("ipc_delay", self.ipc_delay),
            ("ipc_reorder", self.ipc_reorder),
            ("jgr_truncate", self.jgr_truncate),
            ("jgr_corrupt", self.jgr_corrupt),
            ("clock_jitter", self.clock_jitter),
            ("kill_fail", self.kill_fail),
            ("kill_respawn", self.kill_respawn),
            ("crash", self.crash),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err((name, p));
            }
        }
        Ok(())
    }
}

/// What the driver should do with one IPC log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcLogAction {
    /// Append normally.
    Keep,
    /// Lose the record (the transaction itself still routed).
    Drop,
    /// Append the record twice.
    Duplicate,
    /// Append with the timestamp skewed late by the given amount.
    DelayBy(SimDuration),
    /// Append, then swap with the previous record.
    Reorder,
}

/// What the monitor should do with one JGR event timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JgrLogAction {
    /// Record normally.
    Record,
    /// Lose the timestamp (table-size tracking is unaffected).
    Lose,
    /// Record a timestamp skewed by the given signed amount of
    /// microseconds.
    CorruptBy(i64),
}

/// Counters of injected faults, by channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// IPC records dropped.
    pub ipc_dropped: u64,
    /// IPC records duplicated.
    pub ipc_duplicated: u64,
    /// IPC records stamped late.
    pub ipc_delayed: u64,
    /// IPC records reordered.
    pub ipc_reordered: u64,
    /// JGR timestamps lost.
    pub jgr_truncated: u64,
    /// JGR timestamps corrupted.
    pub jgr_corrupted: u64,
    /// IPC timestamps jittered.
    pub clock_jittered: u64,
    /// Kills that failed.
    pub kills_failed: u64,
    /// Kills followed by a respawn.
    pub kills_respawned: u64,
    /// Defender crashes injected at poll/journal/kill boundaries.
    pub defender_crashes: u64,
}

impl FaultStats {
    /// Total injected faults across every channel.
    pub fn total(&self) -> u64 {
        self.ipc_dropped
            + self.ipc_duplicated
            + self.ipc_delayed
            + self.ipc_reordered
            + self.jgr_truncated
            + self.jgr_corrupted
            + self.clock_jittered
            + self.kills_failed
            + self.kills_respawned
            + self.defender_crashes
    }
}

#[derive(Debug)]
struct Injector {
    plan: FaultPlan,
    rng: SimRng,
    stats: FaultStats,
    kill_failures_left: u32,
    crashes_left: u32,
}

impl Injector {
    /// Draws a probability gate. A zero probability never touches the RNG,
    /// so inactive channels leave the stream — and therefore every
    /// faultless run — untouched.
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.chance(p.min(1.0))
    }
}

/// Shared handle to a deterministic fault injector.
///
/// Clones share one RNG stream and one stats block, mirroring how
/// [`SimClock`](crate::SimClock) is shared across the driver, framework,
/// and defense. See the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct FaultLayer {
    inner: Rc<RefCell<Injector>>,
}

impl FaultLayer {
    /// Creates a layer for `plan`, with its own RNG stream derived from
    /// `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner: Rc::new(RefCell::new(Injector {
                plan,
                // Decorrelate from the workload stream that uses the raw
                // experiment seed: enabling faults must not shift benign
                // call timings.
                rng: SimRng::seed(seed ^ 0xFAB1_7FA0_17C0_FFEE),
                stats: FaultStats::default(),
                kill_failures_left: plan.kill_fail_budget,
                crashes_left: plan.crash_budget,
            })),
        }
    }

    /// A layer that never fires (the default wiring).
    pub fn inactive() -> Self {
        Self::new(FaultPlan::none(), 0)
    }

    /// The configured plan.
    pub fn plan(&self) -> FaultPlan {
        self.inner.borrow().plan
    }

    /// Whether any channel can fire.
    pub fn is_active(&self) -> bool {
        self.inner.borrow().plan.is_active()
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.inner.borrow().stats
    }

    /// Decides the fate of one IPC log record. Channels are evaluated in
    /// a fixed priority order (drop > duplicate > delay > reorder) so a
    /// record suffers at most one structural fault.
    pub fn ipc_log_action(&self) -> IpcLogAction {
        let mut i = self.inner.borrow_mut();
        let plan = i.plan;
        if i.roll(plan.ipc_drop) {
            i.stats.ipc_dropped += 1;
            return IpcLogAction::Drop;
        }
        if i.roll(plan.ipc_duplicate) {
            i.stats.ipc_duplicated += 1;
            return IpcLogAction::Duplicate;
        }
        if i.roll(plan.ipc_delay) {
            let max = i.plan.ipc_delay_max.as_micros().max(1);
            let skew = i.rng.range(1..=max);
            i.stats.ipc_delayed += 1;
            return IpcLogAction::DelayBy(SimDuration::from_micros(skew));
        }
        if i.roll(plan.ipc_reorder) {
            i.stats.ipc_reordered += 1;
            return IpcLogAction::Reorder;
        }
        IpcLogAction::Keep
    }

    /// Applies clock jitter to an IPC correlation timestamp.
    pub fn jitter_ipc_timestamp(&self, at: SimTime) -> SimTime {
        let mut i = self.inner.borrow_mut();
        let plan = i.plan;
        if !i.roll(plan.clock_jitter) {
            return at;
        }
        let max = i.plan.clock_jitter_max.as_micros().max(1) as i64;
        let skew = i.rng.range(-max..=max);
        i.stats.clock_jittered += 1;
        apply_skew(at, skew)
    }

    /// Decides the fate of one JGR event timestamp in the monitor's log.
    pub fn jgr_log_action(&self) -> JgrLogAction {
        let mut i = self.inner.borrow_mut();
        let plan = i.plan;
        if i.roll(plan.jgr_truncate) {
            i.stats.jgr_truncated += 1;
            return JgrLogAction::Lose;
        }
        if i.roll(plan.jgr_corrupt) {
            let max = i.plan.jgr_corrupt_max.as_micros().max(1) as i64;
            let skew = i.rng.range(-max..=max);
            i.stats.jgr_corrupted += 1;
            return JgrLogAction::CorruptBy(skew);
        }
        JgrLogAction::Record
    }

    /// Whether this kill attempt fails (respects the failure budget).
    pub fn kill_fails(&self) -> bool {
        let mut i = self.inner.borrow_mut();
        let p = i.plan.kill_fail;
        if i.kill_failures_left == 0 || !i.roll(p) {
            return false;
        }
        i.kill_failures_left = i.kill_failures_left.saturating_sub(1);
        i.stats.kills_failed += 1;
        true
    }

    /// Whether the defender dies at this boundary (respects the crash
    /// budget and the plan's optional boundary pin). Boundaries the plan
    /// pins away from, and a zero crash probability, never touch the RNG.
    pub fn crash_at(&self, point: CrashPoint) -> bool {
        let mut i = self.inner.borrow_mut();
        let plan = i.plan;
        if i.crashes_left == 0 || plan.crash_point.is_some_and(|p| p != point) {
            return false;
        }
        if !i.roll(plan.crash) {
            return false;
        }
        i.crashes_left = i.crashes_left.saturating_sub(1);
        i.stats.defender_crashes += 1;
        true
    }

    /// Whether a successful kill is immediately followed by a respawn.
    pub fn kill_respawns(&self) -> bool {
        let mut i = self.inner.borrow_mut();
        let p = i.plan.kill_respawn;
        if i.roll(p) {
            i.stats.kills_respawned += 1;
            return true;
        }
        false
    }
}

/// Applies a signed microsecond skew to a timestamp, clamping at zero.
pub fn apply_skew(at: SimTime, skew_us: i64) -> SimTime {
    let raw = at.as_micros();
    let skewed = if skew_us >= 0 {
        raw.saturating_add(skew_us as u64)
    } else {
        raw.saturating_sub(skew_us.unsigned_abs())
    };
    SimTime::from_micros(skewed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_layer_never_fires_and_never_draws() {
        let layer = FaultLayer::inactive();
        for _ in 0..256 {
            assert_eq!(layer.ipc_log_action(), IpcLogAction::Keep);
            assert_eq!(layer.jgr_log_action(), JgrLogAction::Record);
            assert!(!layer.kill_fails());
            assert!(!layer.kill_respawns());
            assert!(!layer.crash_at(CrashPoint::PollStart));
            let t = SimTime::from_micros(12_345);
            assert_eq!(layer.jitter_ipc_timestamp(t), t);
        }
        assert_eq!(layer.stats().total(), 0);
        assert!(!layer.is_active());
    }

    #[test]
    fn same_seed_same_plan_same_decisions() {
        let plan = FaultPlan {
            ipc_drop: 0.2,
            ipc_duplicate: 0.1,
            ipc_delay: 0.1,
            jgr_corrupt: 0.3,
            kill_fail: 0.5,
            ..FaultPlan::none()
        };
        let a = FaultLayer::new(plan, 99);
        let b = FaultLayer::new(plan, 99);
        for _ in 0..512 {
            assert_eq!(a.ipc_log_action(), b.ipc_log_action());
            assert_eq!(a.jgr_log_action(), b.jgr_log_action());
            assert_eq!(a.kill_fails(), b.kill_fails());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn kill_fail_budget_is_respected() {
        let plan = FaultPlan {
            kill_fail: 1.0,
            kill_fail_budget: 2,
            ..FaultPlan::none()
        };
        let layer = FaultLayer::new(plan, 0);
        assert!(layer.kill_fails());
        assert!(layer.kill_fails());
        for _ in 0..16 {
            assert!(!layer.kill_fails(), "budget of 2 exhausted");
        }
        assert_eq!(layer.stats().kills_failed, 2);
    }

    #[test]
    fn crash_budget_is_respected() {
        let plan = FaultPlan {
            crash: 1.0,
            crash_budget: 2,
            ..FaultPlan::none()
        };
        let layer = FaultLayer::new(plan, 0);
        assert!(layer.crash_at(CrashPoint::PollStart));
        assert!(layer.crash_at(CrashPoint::Kill));
        for point in CrashPoint::ALL {
            assert!(!layer.crash_at(point), "budget of 2 exhausted");
        }
        assert_eq!(layer.stats().defender_crashes, 2);
    }

    #[test]
    fn crash_point_pin_restricts_the_boundary() {
        let plan = FaultPlan {
            crash: 1.0,
            crash_point: Some(CrashPoint::Kill),
            ..FaultPlan::none()
        };
        let layer = FaultLayer::new(plan, 3);
        for point in CrashPoint::ALL {
            assert_eq!(layer.crash_at(point), point == CrashPoint::Kill, "{point}");
        }
        assert_eq!(layer.stats().defender_crashes, 1);
    }

    #[test]
    fn single_plans_drive_exactly_one_channel() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::single(kind, FaultIntensity::Severe);
            assert!(plan.is_active(), "{kind}");
            assert!(plan.validate().is_ok(), "{kind}");
            let off = FaultPlan::single(kind, FaultIntensity::Off);
            assert!(!off.is_active(), "{kind} at off intensity");
        }
    }

    #[test]
    fn kind_and_intensity_names_roundtrip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        for i in [
            FaultIntensity::Off,
            FaultIntensity::Light,
            FaultIntensity::Moderate,
            FaultIntensity::Severe,
        ] {
            assert_eq!(FaultIntensity::parse(i.name()), Some(i));
        }
        assert_eq!(FaultKind::parse("warp-core-breach"), None);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let plan = FaultPlan {
            ipc_drop: 1.5,
            ..FaultPlan::none()
        };
        assert_eq!(plan.validate(), Err(("ipc_drop", 1.5)));
        assert!(FaultPlan::moderate().validate().is_ok());
    }

    #[test]
    fn skew_clamps_at_zero() {
        assert_eq!(apply_skew(SimTime::from_micros(5), -10), SimTime::ZERO);
        assert_eq!(
            apply_skew(SimTime::from_micros(5), 10),
            SimTime::from_micros(15)
        );
    }
}
