//! Deterministic discrete-event simulation kernel for the JGRE reproduction.
//!
//! Everything in this workspace that needs a notion of *time*, *randomness*,
//! or *identity* goes through this crate so that whole-system runs are
//! reproducible from a single seed.
//!
//! The kernel is deliberately small:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time.
//! * [`SimClock`] — a monotonically advancing clock shared by reference.
//! * [`EventQueue`] — a stable (FIFO-on-tie) priority queue of timed events.
//! * [`SimRng`] — a seeded RNG with convenience samplers.
//! * [`Pid`], [`Uid`], [`Tid`] — process / user / thread identities used by
//!   the Binder, framework, and defense crates.
//! * [`TraceSink`] — an in-memory, bounded trace of labelled events used by
//!   experiments for post-hoc analysis.
//! * [`FaultLayer`] — a seeded, deterministic fault injector used by the
//!   chaos experiments to break the defender's assumptions on purpose.
//!
//! # Example
//!
//! ```
//! use jgre_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(1), "a");
//! let (t, e) = queue.pop().unwrap();
//! assert_eq!(e, "a");
//! assert_eq!(t.as_micros(), 1_000);
//! ```

#![deny(missing_docs)]

mod clock;
mod event;
mod fault;
mod ids;
mod rng;
pub mod source;
mod stats;
mod trace;

pub use clock::{SimClock, SimDuration, SimTime};
pub use event::EventQueue;
pub use fault::{
    apply_skew, CrashPoint, FaultIntensity, FaultKind, FaultLayer, FaultPlan, FaultStats,
    IpcLogAction, JgrLogAction,
};
pub use ids::{Pid, Tid, Uid};
pub use rng::{stream_seed, SimRng};
pub use stats::{Histogram, Samples, Summary, HISTOGRAM_BINS};
pub use trace::{TraceEvent, TraceSink};
