//! Virtual time: instants, durations, and a shared monotonic clock.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};
use std::rc::Rc;

use serde::{Deserialize, Serialize};

/// An instant on the simulation timeline, in microseconds since boot.
///
/// `SimTime` is a transparent newtype over `u64`; the microsecond resolution
/// matches what the paper measures (IPC execution times are reported in µs,
/// attack durations in seconds).
///
/// # Example
///
/// ```
/// use jgre_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The boot instant of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Returns the instant as microseconds since boot.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (truncated) milliseconds since boot.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as fractional seconds since boot.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference; returns [`SimDuration::ZERO`] when `earlier`
    /// is in fact later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulation time, in microseconds.
///
/// # Example
///
/// ```
/// use jgre_sim::SimDuration;
///
/// assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
/// assert_eq!(SimDuration::from_millis(2) * 4, SimDuration::from_millis(8));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked subtraction, `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// The clock is cheaply cloneable (`Rc`-backed) so that the Binder driver,
/// the framework, and the defense monitor all observe the same timeline.
/// The simulation is single-threaded by design — determinism is the point —
/// hence `Rc`/`Cell` rather than `Arc`/atomics.
///
/// # Example
///
/// ```
/// use jgre_sim::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let observer = clock.clone();
/// clock.advance(SimDuration::from_millis(10));
/// assert_eq!(observer.now().as_millis(), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Rc<Cell<SimTime>>,
}

impl SimClock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current instant.
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Advances the clock by `delta` and returns the new instant.
    pub fn advance(&self, delta: SimDuration) -> SimTime {
        let next = self.now.get() + delta;
        self.now.set(next);
        next
    }

    /// Moves the clock forward to `instant`.
    ///
    /// # Panics
    ///
    /// Panics if `instant` is earlier than the current time: the simulation
    /// clock is monotonic.
    pub fn advance_to(&self, instant: SimTime) {
        assert!(
            instant >= self.now.get(),
            "attempted to move the simulation clock backwards: {} -> {}",
            self.now.get(),
            instant
        );
        self.now.set(instant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 3_500_000);
        assert_eq!(t.as_millis(), 3_500);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn clock_is_shared_between_clones() {
        let clock = SimClock::new();
        let clone = clock.clone();
        clock.advance(SimDuration::from_micros(42));
        assert_eq!(clone.now().as_micros(), 42);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_time_travel() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        clock.advance_to(SimTime::from_micros(10));
    }

    #[test]
    fn duration_display_chooses_unit() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn duration_checked_sub() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_millis(7);
        assert_eq!(b.checked_sub(a), Some(SimDuration::from_millis(2)));
        assert_eq!(a.checked_sub(b), None);
    }
}
