//! End-to-end coverage of the error-path leak class (`JGRE004`): the
//! corpus extension fixture's conditional-release shapes must surface as
//! `ErrorPathRelease` findings with checkable witnesses, degrade to the
//! plain unbounded class when path sensitivity is off, and leave every
//! baseline verdict untouched.

use jgre_analysis::diagnostics::{LintReport, RuleId, Severity};
use jgre_analysis::{AnalysisOptions, LeakVerdict, PredSet};
use jgre_corpus::{error_path_cases, spec::AospSpec, CodeModel, ERROR_PATH_CLASS};

fn extended_report(options: &AnalysisOptions) -> (CodeModel, LintReport) {
    let spec = AospSpec::android_6_0_1();
    let model = CodeModel::synthesize_with_error_paths(&spec);
    let report = LintReport::generate_with(&model, &spec, options);
    (model, report)
}

#[test]
fn jgre004_fires_on_the_fixture_with_checkable_witnesses() {
    let (model, report) = extended_report(&AnalysisOptions::default());
    let jgre004: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == RuleId::ErrorPathRelease)
        .collect();
    assert!(
        jgre004.len() >= 3,
        "expected at least the three fixture cases, got {}",
        jgre004.len()
    );
    let expected: Vec<&str> = error_path_cases().iter().map(|(_, m)| *m).collect();
    for name in &expected {
        assert!(
            jgre004
                .iter()
                .any(|d| d.service == ERROR_PATH_CLASS && d.method == *name),
            "{name} missing from the JGRE004 findings"
        );
    }
    for d in &jgre004 {
        assert_eq!(d.rule.as_str(), "JGRE004");
        assert_eq!(d.rule.severity(), Severity::Error);
        assert_eq!(d.verdict, LeakVerdict::ErrorPathLeak);
        assert!(
            d.message.contains("on its error path only"),
            "{}",
            d.message
        );
        assert!(!d.witnesses.is_empty(), "{}.{}", d.service, d.method);
        for w in &d.witnesses {
            w.validate(&model)
                .unwrap_or_else(|e| panic!("{}.{}: broken witness: {e}", d.service, d.method));
        }
    }
}

#[test]
fn path_insensitive_mode_reclassifies_jgre004_as_jgre001() {
    let (_, report) = extended_report(&AnalysisOptions::default().path_insensitive());
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.rule != RuleId::ErrorPathRelease),
        "JGRE004 must not fire without predicate reading"
    );
    for (class, name) in error_path_cases() {
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.service == class && d.method == name)
            .unwrap_or_else(|| panic!("{name} dropped in insensitive mode"));
        assert_eq!(
            d.rule,
            RuleId::UnboundedRetention,
            "{name}: error-path leaks are a refinement of the unbounded class"
        );
    }
}

#[test]
fn fixture_controls_behave() {
    let (model, report) = extended_report(&AnalysisOptions::default());
    // The bound-checked control is a proven BoundedRetention warning.
    let bounded = report
        .diagnostics
        .iter()
        .find(|d| d.service == ERROR_PATH_CLASS && d.method == "boundedRegister")
        .expect("bounded control surfaces");
    assert_eq!(bounded.rule, RuleId::BoundedRetention);
    assert!(bounded.proven, "BOUND_CHECKED on every retaining site");
    // The null-check-gated store is a genuine JGRE001: the check guards
    // the store but not the retention.
    let null_gated = report
        .diagnostics
        .iter()
        .find(|d| d.service == ERROR_PATH_CLASS && d.method == "addNonNullObserver")
        .expect("null-gated store surfaces");
    assert_eq!(null_gated.rule, RuleId::UnboundedRetention);
    // The transient control releases on every path and must not appear.
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.service == ERROR_PATH_CLASS && d.method == "transientPing"),
        "transient control must be sifted"
    );
    // The null-checked site's predicate is recorded in the summary.
    let root = model
        .find_method(ERROR_PATH_CLASS, "addNonNullObserver")
        .unwrap();
    let analysis = jgre_analysis::LeakChecker::new(&model).analyze();
    assert!(analysis
        .summary(root)
        .sites
        .iter()
        .any(|s| s.preds.contains(PredSet::NULL_CHECKED)));
}

#[test]
fn extended_corpus_keeps_the_baseline_score() {
    let (_, report) = extended_report(&AnalysisOptions::default());
    assert_eq!(report.accuracy.true_positives, 54);
    assert_eq!(report.accuracy.false_positives, 0);
    assert_eq!(report.accuracy.false_negatives, 0);
}
