//! Robustness of the static pipeline: its findings must be a function of
//! the vulnerability-relevant structure only — injecting arbitrary
//! amounts of innocent code into the corpus never changes the risky set.

use jgre_analysis::{IpcMethodExtractor, JgrEntryExtractor, Pipeline, VulnerableIpcDetector};
use jgre_corpus::{spec::AospSpec, CodeModel, MethodDef, MethodId, ParamUsage};
use proptest::prelude::*;

fn risky_set(model: &CodeModel) -> Vec<(String, String)> {
    let ipc = IpcMethodExtractor::new(model).extract();
    let entries = JgrEntryExtractor::new(model).extract();
    let out = VulnerableIpcDetector::new(model, &entries).detect(&ipc);
    let mut set: Vec<(String, String)> = out
        .risky
        .iter()
        .map(|r| (r.ipc.service.clone(), r.ipc.method.clone()))
        .collect();
    set.sort();
    set
}

/// Appends a new method to an existing registered service class.
/// Registered service classes that actually expose an AIDL surface (the
/// SystemServer class itself registers services but implements none).
fn service_classes(model: &CodeModel) -> Vec<String> {
    model
        .classes
        .iter()
        .filter(|c| {
            c.name.starts_with("com.android.server.")
                && c.methods
                    .iter()
                    .any(|&m| model.method(m).overrides_aidl.is_some())
        })
        .map(|c| c.name.clone())
        .take(32)
        .collect()
}

fn inject_method(model: &mut CodeModel, class: &str, name: String, usage: Option<ParamUsage>) {
    let id = MethodId(model.methods.len() as u32);
    let def = MethodDef {
        id,
        class: class.to_owned(),
        name,
        // Injected methods override the class's AIDL interface so the
        // extractor picks them up as IPC surface.
        overrides_aidl: model
            .methods
            .iter()
            .find(|m| m.class == class && m.overrides_aidl.is_some())
            .and_then(|m| m.overrides_aidl.clone()),
        calls: Vec::new(),
        handler_posts: Vec::new(),
        registers_service: None,
        binder_params: usage.into_iter().collect(),
        permission_checks: Vec::new(),
    };
    model.methods.push(def);
    if let Some(c) = model.classes.iter_mut().find(|c| c.name == class) {
        c.methods.push(id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Injecting innocent IPC methods (no binder params, or transient /
    /// replace-single usage) anywhere leaves the risky set untouched.
    #[test]
    fn innocent_noise_never_changes_findings(
        injections in proptest::collection::vec((0usize..32, 0u8..3), 1..24)
    ) {
        let spec = AospSpec::android_6_0_1();
        let base_model = CodeModel::synthesize(&spec);
        let baseline = risky_set(&base_model);

        let mut noisy = base_model.clone();
        let classes = service_classes(&noisy);
        for (i, (class_pick, kind)) in injections.iter().enumerate() {
            let class = &classes[class_pick % classes.len()];
            let usage = match kind {
                0 => None,
                1 => Some(ParamUsage::LocalOnly),
                _ => Some(ParamUsage::AssignedToMemberField),
            };
            inject_method(&mut noisy, class, format!("injectedNoise{i}"), usage);
        }
        prop_assert_eq!(risky_set(&noisy), baseline);
    }

    /// Injecting a *retaining* method (StoredInCollection) grows the risky
    /// set by exactly that method — nothing else is perturbed.
    #[test]
    fn injected_leak_is_found_and_only_it(class_pick in 0usize..32) {
        let spec = AospSpec::android_6_0_1();
        let mut model = CodeModel::synthesize(&spec);
        let baseline = risky_set(&model);
        let classes = service_classes(&model);
        let class = &classes[class_pick % classes.len()];
        inject_method(
            &mut model,
            class,
            "injectedLeak".to_owned(),
            Some(ParamUsage::StoredInCollection),
        );
        let found = risky_set(&model);
        prop_assert_eq!(found.len(), baseline.len() + 1);
        prop_assert!(found.iter().any(|(_, m)| m == "injectedLeak"));
        for row in &baseline {
            prop_assert!(found.contains(row), "lost a baseline finding: {row:?}");
        }
    }
}

#[test]
fn static_report_is_deterministic_across_runs() {
    let spec = AospSpec::android_6_0_1();
    let a = Pipeline::new(CodeModel::synthesize(&spec)).run_static();
    let b = Pipeline::new(CodeModel::synthesize(&spec)).run_static();
    assert_eq!(a, b);
}
