//! Differential harness for the incremental summary engine: a random
//! corpus mutation sequence is replayed twice — once against a
//! persistent cache directory that survives every step, once cold from
//! scratch per step — and the `DataflowOutput` verdicts must be
//! structurally equal at *every* step. The vendored proptest has no
//! shrinking, so a divergence triggers a manual delta-debugging pass
//! that reports the minimal divergent edit script.

use std::path::PathBuf;

use jgre_analysis::{
    AnalysisOptions, DataflowDetector, DataflowOutput, IpcMethodExtractor, JgrEntryExtractor,
};
use jgre_corpus::{spec::AospSpec, CodeModel, MethodId, ParamUsage};
use proptest::prelude::*;

/// One corpus edit: `(kind, a, b)` with the operand indices taken modulo
/// whatever they select. Kinds: 0 add call edge, 1 remove last call
/// edge, 2 retarget first call edge, 3 toggle the first binder param
/// between released and retained, 4 rename the method, 5 cycle the first
/// binder param through the path-sensitive error-path usages.
type EditOp = (u8, usize, usize);

fn apply(model: &mut CodeModel, op: &EditOp, step: usize) {
    let n = model.methods.len();
    let (kind, a, b) = *op;
    match kind % 6 {
        0 => {
            let callee = MethodId((b % n) as u32);
            let def = &mut model.methods[a % n];
            if !def.calls.contains(&callee) {
                def.calls.push(callee);
            }
        }
        1 => {
            model.methods[a % n].calls.pop();
        }
        2 => {
            let callee = MethodId((b % n) as u32);
            if let Some(first) = model.methods[a % n].calls.first_mut() {
                *first = callee;
            }
        }
        3 => {
            let def = &mut model.methods[a % n];
            match def.binder_params.first_mut() {
                Some(usage) => {
                    *usage = if matches!(usage, ParamUsage::StoredInCollection) {
                        ParamUsage::LocalOnly
                    } else {
                        ParamUsage::StoredInCollection
                    };
                }
                None => def.binder_params.push(ParamUsage::LocalOnly),
            }
        }
        4 => {
            let def = &mut model.methods[a % n];
            // The step index keeps mutated names unique, so the cache's
            // (class, name) remapping never sees an ambiguous pair.
            def.name = format!("mut{step}_{}", def.name);
        }
        5 => {
            // Exercise the predicate lattice in the cache: branch-labeled
            // bodies whose summaries carry non-empty PredSets.
            let shapes = [
                ParamUsage::ReleaseSkippedOnError,
                ParamUsage::PermissionGatedRelease,
                ParamUsage::NullCheckGatedStore,
            ];
            let usage = shapes[b % shapes.len()];
            let def = &mut model.methods[a % n];
            match def.binder_params.first_mut() {
                Some(slot) => *slot = usage,
                None => def.binder_params.push(usage),
            }
        }
        _ => unreachable!(),
    }
}

fn detect(model: &CodeModel, options: &AnalysisOptions) -> DataflowOutput {
    let ipc = IpcMethodExtractor::new(model).extract();
    let entries = JgrEntryExtractor::new(model).extract();
    DataflowDetector::new(model, &entries).detect_with(&ipc, options)
}

/// Cache runs skip lowering for hit SCCs, so work counters legitimately
/// differ; verdict structure must not.
fn verdicts_equal(a: &DataflowOutput, b: &DataflowOutput) -> bool {
    a.detector == b.detector && a.verdicts == b.verdicts
}

fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jgre-inc-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Replays `ops` with a persistent cache vs cold per step; returns the
/// index of the first step whose verdicts diverge.
fn first_divergence(ops: &[EditOp]) -> Option<usize> {
    let spec = AospSpec::android_6_0_1();
    let mut model = CodeModel::synthesize(&spec);
    let dir = fresh_cache_dir("replay");
    let cached_options = AnalysisOptions::with_cache_dir(&dir);
    let cold_options = AnalysisOptions::default();
    let mut divergent = None;
    for (step, op) in ops.iter().enumerate() {
        apply(&mut model, op, step);
        let cached = detect(&model, &cached_options);
        let cold = detect(&model, &cold_options);
        if !verdicts_equal(&cached, &cold) {
            divergent = Some(step);
            break;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    divergent
}

/// Greedy delta debugging: drop ops one at a time as long as the replay
/// still diverges somewhere.
fn minimize(ops: &[EditOp], step: usize) -> Vec<EditOp> {
    let mut minimal = ops[..=step].to_vec();
    loop {
        let mut reduced = false;
        for i in 0..minimal.len() {
            let mut candidate = minimal.clone();
            candidate.remove(i);
            if first_divergence(&candidate).is_some() {
                minimal = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return minimal;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Incremental ≡ from-scratch under arbitrary mutation sequences.
    #[test]
    fn cached_replay_agrees_with_cold_at_every_step(
        ops in proptest::collection::vec((0u8..6, 0usize..4096, 0usize..4096), 1..8)
    ) {
        if let Some(step) = first_divergence(&ops) {
            let minimal = minimize(&ops, step);
            prop_assert!(
                false,
                "cache diverged from cold run at step {step}; \
                 minimal divergent edit script: {minimal:?}"
            );
        }
    }
}

/// A hand-picked sequence covering all six edit kinds, replayed with
/// warm-hit verification: after an edit, re-running unchanged must be a
/// pure Tier A hit again.
#[test]
fn scripted_edits_agree_and_rewarm() {
    let ops: Vec<EditOp> = vec![
        (0, 17, 4242), // add edge
        (3, 901, 0),   // toggle release
        (5, 901, 0),   // error-path shape (predicate lattice in cache)
        (4, 55, 0),    // rename
        (5, 120, 1),   // permission-gated shape
        (2, 17, 11),   // retarget
        (1, 17, 0),    // remove edge
    ];
    let spec = AospSpec::android_6_0_1();
    let mut model = CodeModel::synthesize(&spec);
    let dir = fresh_cache_dir("scripted");
    let cached_options = AnalysisOptions::with_cache_dir(&dir);
    // Prime the cache with the unmutated corpus so every step exercises
    // partial invalidation rather than a cold start.
    detect(&model, &cached_options);
    for (step, op) in ops.iter().enumerate() {
        apply(&mut model, op, step);
        let cached = detect(&model, &cached_options);
        let cold = detect(&model, &AnalysisOptions::default());
        assert!(
            verdicts_equal(&cached, &cold),
            "verdicts diverged after step {step} ({op:?})"
        );
        // An edit must not invalidate the whole cache: most SCCs are
        // outside the changed cone and still hit.
        assert!(
            cached.stats.cache_hits > cached.stats.cache_misses,
            "step {step}: only {} hits vs {} misses",
            cached.stats.cache_hits,
            cached.stats.cache_misses,
        );
        // Unchanged re-run: pure Tier A hit.
        let warm = detect(&model, &cached_options);
        assert_eq!(warm.stats.cache_misses, 0, "step {step} did not rewarm");
        assert!(verdicts_equal(&warm, &cold));
    }
    std::fs::remove_dir_all(&dir).ok();
}
