//! Agreement between the dataflow leak-check detector and the legacy
//! heuristic detector.
//!
//! On the pristine corpus the two must coincide exactly. On randomly
//! perturbed corpora any divergence must be Leak-side only: the dataflow
//! detector may flag a method the heuristics sift, never the reverse —
//! sifting is a proof of safety, and the dataflow pass is allowed to be
//! conservative but not unsound.

use std::collections::BTreeSet;

use jgre_analysis::{
    DataflowDetector, IpcMethodExtractor, JgrEntryExtractor, VulnerableIpcDetector,
};
use jgre_corpus::{spec::AospSpec, CodeModel, MethodDef, MethodId, ParamUsage};
use proptest::prelude::*;

/// `(service, method)` keys of the risky interfaces a detector reports.
type RiskySet = BTreeSet<(String, String)>;

fn risky_sets(model: &CodeModel) -> (RiskySet, RiskySet) {
    let ipc = IpcMethodExtractor::new(model).extract();
    let entries = JgrEntryExtractor::new(model).extract();
    let legacy = VulnerableIpcDetector::new(model, &entries).detect(&ipc);
    let flow = DataflowDetector::new(model, &entries).detect(&ipc);
    let key = |r: &jgre_analysis::RiskyInterface| (r.ipc.service.clone(), r.ipc.method.clone());
    (
        legacy.risky.iter().map(key).collect(),
        flow.detector.risky.iter().map(key).collect(),
    )
}

/// Service classes that expose an AIDL surface, for injection targets.
fn service_classes(model: &CodeModel) -> Vec<String> {
    model
        .classes
        .iter()
        .filter(|c| {
            c.name.starts_with("com.android.server.")
                && c.methods
                    .iter()
                    .any(|&m| model.method(m).overrides_aidl.is_some())
        })
        .map(|c| c.name.clone())
        .take(32)
        .collect()
}

/// Injects an IPC method with arbitrary parameter usages and optional
/// calls into the retaining plumbing.
fn inject_method(
    model: &mut CodeModel,
    class: &str,
    name: String,
    params: Vec<ParamUsage>,
    call_register: bool,
    post_thread: bool,
) {
    let id = MethodId(model.methods.len() as u32);
    let mut calls = Vec::new();
    let mut handler_posts = Vec::new();
    if call_register {
        if let Some(rcl) = model.find_method("android.os.RemoteCallbackList", "register") {
            calls.push(rcl);
        }
    }
    if post_thread {
        if let Some(thread) = model.find_method("java.lang.Thread", "start") {
            handler_posts.push(thread);
        }
    }
    let def = MethodDef {
        id,
        class: class.to_owned(),
        name,
        overrides_aidl: model
            .methods
            .iter()
            .find(|m| m.class == class && m.overrides_aidl.is_some())
            .and_then(|m| m.overrides_aidl.clone()),
        calls,
        handler_posts,
        registers_service: None,
        binder_params: params,
        permission_checks: Vec::new(),
    };
    model.methods.push(def);
    if let Some(c) = model.classes.iter_mut().find(|c| c.name == class) {
        c.methods.push(id);
    }
}

fn usage_from(code: u8) -> Option<ParamUsage> {
    match code % 6 {
        0 => None,
        1 => Some(ParamUsage::LocalOnly),
        2 => Some(ParamUsage::ReadOnlyMapKey),
        3 => Some(ParamUsage::AssignedToMemberField),
        4 => Some(ParamUsage::StoredInCollection),
        _ => Some(ParamUsage::StoredInCollectionBounded),
    }
}

#[test]
fn pristine_corpus_agrees_exactly() {
    let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    let (legacy, flow) = risky_sets(&model);
    assert_eq!(legacy, flow);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On arbitrarily perturbed corpora the heuristic risky set is a
    /// subset of the dataflow risky set: the dataflow pass never releases
    /// a method the sift heuristics consider risky.
    #[test]
    fn divergence_is_leak_side_only(
        injections in proptest::collection::vec(
            (0usize..32, proptest::collection::vec(0u8..6, 0..3), any::<bool>(), any::<bool>()),
            1..16,
        )
    ) {
        let mut model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let classes = service_classes(&model);
        for (i, (class_pick, usages, call_register, post_thread)) in
            injections.iter().enumerate()
        {
            let class = classes[class_pick % classes.len()].clone();
            let params: Vec<ParamUsage> =
                usages.iter().filter_map(|u| usage_from(*u)).collect();
            inject_method(
                &mut model,
                &class,
                format!("injectedMix{i}"),
                params,
                *call_register,
                *post_thread,
            );
        }
        let (legacy, flow) = risky_sets(&model);
        let sifted_but_risky: Vec<_> = legacy.difference(&flow).collect();
        prop_assert!(
            sifted_but_risky.is_empty(),
            "dataflow released methods the heuristics flag: {sifted_but_risky:?}"
        );
    }

    /// Per-method verdicts and sift reasons agree on perturbed corpora
    /// wherever both classify: a method sifted by both detectors gets the
    /// same reason from each.
    #[test]
    fn sift_reasons_agree_where_both_sift(
        injections in proptest::collection::vec((0usize..32, 0u8..6), 1..12)
    ) {
        let mut model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let classes = service_classes(&model);
        for (i, (class_pick, usage)) in injections.iter().enumerate() {
            let class = classes[class_pick % classes.len()].clone();
            inject_method(
                &mut model,
                &class,
                format!("injectedUsage{i}"),
                usage_from(*usage).into_iter().collect(),
                false,
                false,
            );
        }
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        let legacy = VulnerableIpcDetector::new(&model, &entries).detect(&ipc);
        let flow = DataflowDetector::new(&model, &entries).detect(&ipc);
        let legacy_sifted: std::collections::BTreeMap<_, _> = legacy
            .sifted
            .iter()
            .map(|(m, r)| ((m.service.clone(), m.method.clone()), *r))
            .collect();
        for (m, reason) in &flow.detector.sifted {
            let key = (m.service.clone(), m.method.clone());
            if let Some(legacy_reason) = legacy_sifted.get(&key) {
                prop_assert_eq!(
                    reason, legacy_reason,
                    "sift reason mismatch for {:?}", key
                );
            }
        }
    }
}
