//! Parallel-wave determinism: the SCC fan-out deals work to threads
//! round-robin and reassembles results positionally, so `analyze` must
//! produce byte-identical output for every thread count — here checked
//! 16 times across 1/2/8 workers, on both the raw `DataflowOutput` and
//! the serialized SARIF document.

use jgre_analysis::{
    AnalysisOptions, DataflowDetector, IpcMethodExtractor, JgrEntryExtractor, LintReport,
};
use jgre_corpus::{spec::AospSpec, CodeModel};

#[test]
fn sixteen_runs_across_thread_counts_are_identical() {
    let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    let ipc = IpcMethodExtractor::new(&model).extract();
    let entries = JgrEntryExtractor::new(&model).extract();
    let detector = DataflowDetector::new(&model, &entries);

    let baseline = detector.detect_with(&ipc, &AnalysisOptions::default().threads(1));
    for run in 0..16 {
        let threads = [1, 2, 8][run % 3];
        let out = detector.detect_with(&ipc, &AnalysisOptions::default().threads(threads));
        assert_eq!(
            out, baseline,
            "run {run} with {threads} threads diverged from the serial baseline"
        );
    }
}

#[test]
fn sarif_bytes_are_stable_across_thread_counts() {
    let spec = AospSpec::android_6_0_1();
    let model = CodeModel::synthesize(&spec);
    let serial = LintReport::generate_with(&model, &spec, &AnalysisOptions::default().threads(1));
    let serial_sarif = serde_json::to_string_pretty(&serial.to_sarif(&model)).unwrap();
    for threads in [2, 8] {
        let report =
            LintReport::generate_with(&model, &spec, &AnalysisOptions::default().threads(threads));
        assert_eq!(report, serial, "{threads}-thread report diverged");
        let sarif = serde_json::to_string_pretty(&report.to_sarif(&model)).unwrap();
        assert_eq!(sarif, serial_sarif, "{threads}-thread SARIF bytes diverged");
    }
}

#[test]
fn run_wave_preserves_item_order_for_any_thread_count() {
    let items: Vec<usize> = (0..97).map(|i| i * 3).collect();
    let serial = jgre_analysis::run_wave(&items, 1, |i| i * i);
    for threads in [2, 3, 8, 64] {
        let parallel = jgre_analysis::run_wave(&items, threads, |i| i * i);
        assert_eq!(parallel, serial, "{threads} threads reordered the wave");
    }
    // Degenerate inputs.
    assert!(jgre_analysis::run_wave(&[], 8, |i| i).is_empty());
    assert_eq!(jgre_analysis::run_wave(&[5], 8, |i| i + 1), vec![(5, 6)]);
}
