//! End-to-end: the four-step pipeline must re-derive every §IV headline
//! statistic of the paper from the code model and the simulated device.

use jgre_analysis::{Pipeline, ServiceKind, VerificationStatus, VerifierConfig};
use jgre_corpus::{spec::AospSpec, CodeModel};
use jgre_framework::System;

fn full_report() -> jgre_analysis::AnalysisReport {
    let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    let mut device = System::boot(42);
    Pipeline::new(model).run_full(
        &mut device,
        VerifierConfig {
            calls: 150,
            gc_every: 50,
        },
    )
}

#[test]
fn paper_section_4_headline_counts() {
    let report = full_report();

    // §IV: "32 out of 104 (30.8%) system services contain 54 vulnerable
    // IPC interfaces".
    assert_eq!(report.services_total, 104);
    assert_eq!(report.confirmed_service_interfaces().len(), 54);
    assert_eq!(report.confirmed_services().len(), 32);

    // "22 system services can be successfully attacked without any
    // permission support."
    assert_eq!(report.zero_permission_services().len(), 22);

    // "we find 2 pre-built core apps contain 3 vulnerable IPC interfaces"
    let prebuilt = report.confirmed_prebuilt_interfaces();
    assert_eq!(prebuilt.len(), 3);
    let pkgs: std::collections::BTreeSet<_> = prebuilt
        .iter()
        .map(|r| match &r.kind {
            ServiceKind::PrebuiltApp(p) => p.clone(),
            other => panic!("unexpected kind {other:?}"),
        })
        .collect();
    assert_eq!(pkgs.len(), 2, "PicoTts and Bluetooth");

    // Table V: 3 of 1000 Play apps.
    assert_eq!(report.third_party_interfaces().len(), 3);

    // §III-B: 147 native paths, 67 filtered as init-only.
    assert_eq!(report.native_paths.total_paths, 147);
    assert_eq!(report.native_paths.init_only_paths, 67);
    assert_eq!(report.native_paths.exploitable_paths, 80);
}

#[test]
fn sound_bounds_are_cleared_and_flawed_bound_is_bypassed() {
    let report = full_report();

    // Table III: display + the two input interfaces survive verification.
    let cleared: std::collections::BTreeSet<_> = report
        .rows
        .iter()
        .filter(|r| r.status == VerificationStatus::Cleared)
        .map(|r| format!("{}.{}", r.service, r.method))
        .collect();
    assert_eq!(
        cleared,
        [
            "display.registerCallback",
            "input.registerInputDevicesChangedListener",
            "input.registerTabletModeChangedListener",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    );

    // enqueueToast is confirmed, but only via the package spoof.
    let toast = report
        .rows
        .iter()
        .find(|r| r.service == "notification" && r.method == "enqueueToast")
        .expect("toast must be risky");
    assert_eq!(toast.status, VerificationStatus::Confirmed);
    assert!(toast.bypassed_protection);

    // An unprotected interface is confirmed without any bypass.
    let clip = report
        .rows
        .iter()
        .find(|r| r.service == "clipboard" && r.method == "addPrimaryClipChangedListener")
        .expect("clipboard must be risky");
    assert_eq!(clip.status, VerificationStatus::Confirmed);
    assert!(!clip.bypassed_protection);
}

#[test]
fn permission_split_of_unprotected_services() {
    // §IV-B: among the 26 unprotected vulnerable services, 19 need no
    // permission, 4 need normal, 3 need dangerous. We recover the split
    // from the analysis report joined with the ground-truth protection
    // info (the report itself does not carry protection provenance).
    use jgre_corpus::spec::{Protection, ProtectionLevel};
    let spec = AospSpec::android_6_0_1();
    let report = full_report();
    let mut per_service: std::collections::BTreeMap<
        &str,
        Vec<&jgre_analysis::ConfirmedVulnerability>,
    > = Default::default();
    for row in report.confirmed_service_interfaces() {
        let m = spec
            .service(&row.service)
            .and_then(|s| s.method(&row.method))
            .expect("confirmed rows exist in the spec");
        if matches!(m.protection, Protection::None) {
            per_service
                .entry(spec.service(&row.service).map(|s| s.name.as_str()).unwrap())
                .or_default()
                .push(row);
        }
    }
    assert_eq!(per_service.len(), 26);
    let mut split = (0, 0, 0);
    for rows in per_service.values() {
        let min_level = rows
            .iter()
            .map(|r| {
                r.permissions
                    .iter()
                    .map(|p| match p.level() {
                        ProtectionLevel::Normal => 1,
                        ProtectionLevel::Dangerous => 2,
                        ProtectionLevel::Signature => 3,
                    })
                    .max()
                    .unwrap_or(0)
            })
            .min()
            .unwrap();
        match min_level {
            0 => split.0 += 1,
            1 => split.1 += 1,
            _ => split.2 += 1,
        }
    }
    assert_eq!(split, (19, 4, 3));
}
