//! Soundness envelope for path sensitivity: reading branch predicates
//! may *refine* findings (relabel an unbounded leak as error-path-only,
//! prove a bounded cap) but must never add a leak the boolean-era
//! analysis missed, and must never drop a true positive. The proptest
//! replays random corpus mutations and checks the risky set under the
//! predicate reading is a subset of the path-insensitive one, with every
//! refinement explainable row by row.

use std::collections::BTreeSet;

use jgre_analysis::{
    AnalysisOptions, DataflowDetector, DataflowOutput, IpcMethodExtractor, JgrEntryExtractor,
    LeakVerdict, LintReport,
};
use jgre_corpus::{spec::AospSpec, CodeModel, MethodId, ParamUsage};
use proptest::prelude::*;

type EditOp = (u8, usize, usize);

/// Same mutation vocabulary as the incremental-agreement harness, so
/// both differential properties roam the same corpus neighbourhood.
fn apply(model: &mut CodeModel, op: &EditOp, step: usize) {
    let n = model.methods.len();
    let (kind, a, b) = *op;
    match kind % 6 {
        0 => {
            let callee = MethodId((b % n) as u32);
            let def = &mut model.methods[a % n];
            if !def.calls.contains(&callee) {
                def.calls.push(callee);
            }
        }
        1 => {
            model.methods[a % n].calls.pop();
        }
        2 => {
            let callee = MethodId((b % n) as u32);
            if let Some(first) = model.methods[a % n].calls.first_mut() {
                *first = callee;
            }
        }
        3 => {
            let def = &mut model.methods[a % n];
            match def.binder_params.first_mut() {
                Some(usage) => {
                    *usage = if matches!(usage, ParamUsage::StoredInCollection) {
                        ParamUsage::LocalOnly
                    } else {
                        ParamUsage::StoredInCollection
                    };
                }
                None => def.binder_params.push(ParamUsage::LocalOnly),
            }
        }
        4 => {
            let def = &mut model.methods[a % n];
            def.name = format!("mut{step}_{}", def.name);
        }
        5 => {
            let shapes = [
                ParamUsage::ReleaseSkippedOnError,
                ParamUsage::PermissionGatedRelease,
                ParamUsage::NullCheckGatedStore,
            ];
            let usage = shapes[b % shapes.len()];
            let def = &mut model.methods[a % n];
            match def.binder_params.first_mut() {
                Some(slot) => *slot = usage,
                None => def.binder_params.push(usage),
            }
        }
        _ => unreachable!(),
    }
}

fn detect(model: &CodeModel, options: &AnalysisOptions) -> DataflowOutput {
    let ipc = IpcMethodExtractor::new(model).extract();
    let entries = JgrEntryExtractor::new(model).extract();
    DataflowDetector::new(model, &entries).detect_with(&ipc, options)
}

fn risky_set(out: &DataflowOutput) -> BTreeSet<(String, String)> {
    out.detector
        .risky
        .iter()
        .map(|r| (r.ipc.service.clone(), r.ipc.method.clone()))
        .collect()
}

/// Checks the refinement relation on one corpus; returns a description
/// of the first violation.
fn check_refinement(model: &CodeModel) -> Result<(), String> {
    let sensitive = detect(model, &AnalysisOptions::default());
    let insensitive = detect(model, &AnalysisOptions::default().path_insensitive());
    let s_risky = risky_set(&sensitive);
    let i_risky = risky_set(&insensitive);
    if let Some(extra) = s_risky.difference(&i_risky).next() {
        return Err(format!(
            "predicate reading invented a finding: {extra:?} risky only path-sensitively"
        ));
    }
    // Row-by-row: the only verdict the predicate reading may change is
    // UnboundedLeak -> ErrorPathLeak.
    for (s, i) in sensitive.verdicts.iter().zip(&insensitive.verdicts) {
        if (s.ipc.service.as_str(), s.ipc.method.as_str())
            != (i.ipc.service.as_str(), i.ipc.method.as_str())
        {
            return Err("verdict rows not aligned across modes".into());
        }
        let refined =
            s.verdict == LeakVerdict::ErrorPathLeak && i.verdict == LeakVerdict::UnboundedLeak;
        if s.verdict != i.verdict && !refined {
            return Err(format!(
                "{}.{}: illegal verdict change {:?} -> {:?}",
                s.ipc.service, s.ipc.method, i.verdict, s.verdict
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Path-sensitive findings are a subset of path-insensitive ones
    /// under arbitrary corpus mutations; every divergence is the
    /// documented unbounded -> error-path refinement.
    #[test]
    fn sensitive_findings_are_a_refinement_of_insensitive(
        ops in proptest::collection::vec((0u8..6, 0usize..4096, 0usize..4096), 1..8)
    ) {
        let mut model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        for (step, op) in ops.iter().enumerate() {
            apply(&mut model, op, step);
        }
        if let Err(violation) = check_refinement(&model) {
            prop_assert!(false, "after {ops:?}: {violation}");
        }
    }
}

/// Against the labelled corpora, neither mode misses a true leak: the
/// recall guarantee the subset property alone cannot give.
#[test]
fn neither_mode_drops_a_true_positive() {
    let spec = AospSpec::android_6_0_1();
    for model in [
        CodeModel::synthesize(&spec),
        CodeModel::synthesize_with_error_paths(&spec),
    ] {
        for options in [
            AnalysisOptions::default(),
            AnalysisOptions::default().path_insensitive(),
        ] {
            let report = LintReport::generate_with(&model, &spec, &options);
            assert_eq!(
                report.accuracy.false_negatives,
                0,
                "missed leaks with {} methods, path_sensitive={}",
                model.methods.len(),
                options.path_sensitive
            );
        }
    }
}
