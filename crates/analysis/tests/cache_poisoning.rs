//! Negative tests for the on-disk summary cache: corrupt bytes, a
//! truncated file, a stale schema version, bad magic, and an empty file
//! must each be detected and recomputed around — bumping the
//! `cache_invalidated` counter, never panicking, and never changing a
//! verdict.

use std::fs;
use std::path::PathBuf;

use jgre_analysis::{
    AnalysisOptions, DataflowDetector, DataflowOutput, IpcMethod, IpcMethodExtractor,
    JgrEntryExtractor, JgrEntrySets, CACHE_FILE,
};
use jgre_corpus::{spec::AospSpec, CodeModel};

// magic (8) + version (4) + corpus fingerprint (8) + scc count (4) +
// Tier A length (4); see the cache module's layout doc.
const HEADER_LEN: usize = 28;
const VERSION_OFFSET: usize = 8;

struct Fixture {
    model: CodeModel,
    ipc: Vec<IpcMethod>,
    entries: JgrEntrySets,
    dir: PathBuf,
    pristine: Vec<u8>,
    cold: DataflowOutput,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        let dir = std::env::temp_dir().join(format!("jgre-poison-{}-{tag}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let detector = DataflowDetector::new(&model, &entries);
        let cold = detector.detect(&ipc);
        detector.detect_with(&ipc, &AnalysisOptions::with_cache_dir(&dir));
        let pristine = fs::read(dir.join(CACHE_FILE)).expect("cache file written");
        Fixture {
            model,
            ipc,
            entries,
            dir,
            pristine,
            cold,
        }
    }

    fn run_with_bytes(&self, bytes: &[u8]) -> DataflowOutput {
        fs::write(self.dir.join(CACHE_FILE), bytes).unwrap();
        DataflowDetector::new(&self.model, &self.entries)
            .detect_with(&self.ipc, &AnalysisOptions::with_cache_dir(&self.dir))
    }

    fn assert_recovered(&self, out: &DataflowOutput, scenario: &str) {
        assert_eq!(
            out.detector, self.cold.detector,
            "{scenario}: wrong verdicts"
        );
        assert_eq!(
            out.verdicts, self.cold.verdicts,
            "{scenario}: wrong verdicts"
        );
        assert!(
            out.stats.cache_invalidated >= 1,
            "{scenario}: invalidation not counted (stats: {:?})",
            out.stats
        );
        // The poisoned file must have been rewritten clean: the next run
        // is a pure warm hit again.
        let warm = DataflowDetector::new(&self.model, &self.entries)
            .detect_with(&self.ipc, &AnalysisOptions::with_cache_dir(&self.dir));
        assert_eq!(warm.stats.cache_misses, 0, "{scenario}: cache not repaired");
        assert_eq!(warm.stats.cache_invalidated, 0, "{scenario}: still corrupt");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.dir).ok();
    }
}

#[test]
fn corrupt_tier_a_byte_is_detected_and_recomputed() {
    let f = Fixture::new("flip");
    let tier_a_len =
        u32::from_le_bytes(f.pristine[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap()) as usize;
    assert!(tier_a_len > 0, "fixture stores a Tier A table");
    let mut bytes = f.pristine.clone();
    bytes[HEADER_LEN + tier_a_len / 2] ^= 0xff;
    let out = f.run_with_bytes(&bytes);
    f.assert_recovered(&out, "flipped Tier A byte");
}

#[test]
fn truncated_file_is_detected_and_recomputed() {
    let f = Fixture::new("trunc");
    let out = f.run_with_bytes(&f.pristine[..f.pristine.len() / 2]);
    f.assert_recovered(&out, "truncated file");
}

#[test]
fn stale_schema_version_is_rejected() {
    let f = Fixture::new("version");
    let mut bytes = f.pristine.clone();
    // A decrement models a file left behind by an older build.
    bytes[VERSION_OFFSET] = bytes[VERSION_OFFSET].wrapping_sub(1);
    let out = f.run_with_bytes(&bytes);
    f.assert_recovered(&out, "stale schema version");
}

#[test]
fn stale_schema_rejection_is_typed() {
    use jgre_analysis::cache;
    use jgre_analysis::{RejectReason, SCHEMA_VERSION};
    let f = Fixture::new("typed");
    // A boolean-guard-era file: same framing, previous version number.
    let mut bytes = f.pristine.clone();
    bytes[VERSION_OFFSET..VERSION_OFFSET + 4].copy_from_slice(&(SCHEMA_VERSION - 1).to_le_bytes());
    let path = f.dir.join("stale.bin");
    fs::write(&path, &bytes).unwrap();
    let loaded = cache::load(&path, 0, f.model.methods.len());
    assert_eq!(
        loaded.reject,
        Some(RejectReason::StaleSchema {
            found: SCHEMA_VERSION - 1
        }),
        "schema staleness must be distinguishable from corruption"
    );
    assert!(loaded.tier_a.is_none());
    assert!(loaded.tier_b.is_empty(), "stale files are rejected whole");
    // Corruption reports a different typed reason.
    let mut garbage = f.pristine.clone();
    garbage[..8].copy_from_slice(b"NOTJGRE!");
    fs::write(&path, &garbage).unwrap();
    assert_eq!(
        cache::load(&path, 0, f.model.methods.len()).reject,
        Some(RejectReason::BadMagic)
    );
}

#[test]
fn garbage_magic_is_rejected() {
    let f = Fixture::new("magic");
    let mut bytes = f.pristine.clone();
    bytes[..8].copy_from_slice(b"NOTJGRE!");
    let out = f.run_with_bytes(&bytes);
    f.assert_recovered(&out, "garbage magic");
}

#[test]
fn empty_file_is_rejected() {
    let f = Fixture::new("empty");
    let out = f.run_with_bytes(&[]);
    f.assert_recovered(&out, "empty file");
}

#[test]
fn corrupt_tier_b_record_invalidates_only_that_record() {
    let f = Fixture::new("tierb");
    let tier_a_len =
        u32::from_le_bytes(f.pristine[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap()) as usize;
    // First Tier B record: [key u64][len u32][payload][checksum u64]
    // right after the Tier A block and its checksum.
    let first_record = HEADER_LEN + tier_a_len + 8;
    let payload_at = first_record + 12;
    assert!(payload_at < f.pristine.len(), "fixture has Tier B records");
    let mut bytes = f.pristine.clone();
    bytes[payload_at] ^= 0xff;
    // Tier A still matches this corpus, so the poisoned record is only
    // reached after an edit breaks the Tier A fast path. Simulate by
    // clearing the stored corpus fingerprint.
    bytes[12..20].copy_from_slice(&[0u8; 8]);
    let out = f.run_with_bytes(&bytes);
    assert_eq!(
        out.detector, f.cold.detector,
        "tier B poison: wrong verdicts"
    );
    assert!(out.stats.cache_invalidated >= 1, "stats: {:?}", out.stats);
    // All records except the poisoned one still hit.
    assert!(
        out.stats.cache_hits > out.stats.cache_misses,
        "stats: {:?}",
        out.stats
    );
}
