//! Generic forward dataflow framework: join-semilattice states, a
//! worklist fixpoint solver over the [`Cfg`] IR, and the call-graph SCC
//! condensation that orders interprocedural bottom-up summary
//! computation (recursive cliques are iterated to their own fixpoint).

use std::collections::{BTreeMap, VecDeque};

use jgre_corpus::{CodeModel, MethodId};

use crate::ir::{BlockId, Cfg, Stmt, Terminator};

/// A join-semilattice value: `join` merges another state in and reports
/// whether anything changed (the solver's convergence signal).
pub trait JoinSemiLattice: Clone + Eq {
    /// Merge `other` into `self`; returns true when `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// A forward gen/kill-style analysis over the IR.
pub trait ForwardAnalysis {
    /// Per-program-point abstract state.
    type State: JoinSemiLattice;

    /// State on entry to the function.
    fn boundary(&self) -> Self::State;

    /// Apply one statement's effect to `state`.
    fn transfer(&self, stmt: &Stmt, state: &mut Self::State);

    /// Apply the effect of taking the `succ_index`-th out-edge of a block
    /// ending in `term`. This is where branch predicates are picked up:
    /// a path-sensitive analysis refines the state differently along the
    /// then- and else-edges of a labeled branch. The default is a no-op,
    /// which recovers plain edge-insensitive propagation.
    fn transfer_edge(&self, _term: &Terminator, _succ_index: usize, _state: &mut Self::State) {}
}

/// Fixpoint solution: per-block entry/exit states (`None` = unreachable).
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// State at each block's entry.
    pub entry: Vec<Option<S>>,
    /// State at each block's exit.
    pub exit: Vec<Option<S>>,
    /// Number of block transfers executed before convergence.
    pub iterations: u64,
}

/// Runs the worklist algorithm to a fixpoint.
///
/// Blocks are seeded in reverse postorder so acyclic CFGs converge in a
/// single pass; back edges re-enqueue their targets until states
/// stabilize. Termination follows from the finite lattice height and the
/// monotone `join`.
pub fn solve_forward<A: ForwardAnalysis>(cfg: &Cfg, analysis: &A) -> Solution<A::State> {
    let n = cfg.blocks.len();
    let mut entry: Vec<Option<A::State>> = vec![None; n];
    let mut exit: Vec<Option<A::State>> = vec![None; n];
    entry[Cfg::ENTRY.0 as usize] = Some(analysis.boundary());

    let mut worklist: VecDeque<BlockId> = cfg.reverse_postorder().into();
    let mut queued = vec![false; n];
    for b in &worklist {
        queued[b.0 as usize] = true;
    }

    let mut iterations = 0u64;
    while let Some(b) = worklist.pop_front() {
        queued[b.0 as usize] = false;
        let Some(state_in) = entry[b.0 as usize].clone() else {
            continue; // not yet reached
        };
        iterations += 1;
        let mut state = state_in;
        for stmt in &cfg.blocks[b.0 as usize].stmts {
            analysis.transfer(stmt, &mut state);
        }
        let changed = match &mut exit[b.0 as usize] {
            Some(old) if *old == state => false,
            slot => {
                *slot = Some(state.clone());
                true
            }
        };
        if !changed {
            continue;
        }
        let term = cfg.blocks[b.0 as usize].term;
        for (succ_index, succ) in cfg.successors(b).into_iter().enumerate() {
            let s = succ.0 as usize;
            // Each out-edge gets its own copy of the exit state so the
            // edge transfer (branch predicates) refines one successor
            // without contaminating its sibling.
            let mut edge_state = state.clone();
            analysis.transfer_edge(&term, succ_index, &mut edge_state);
            let succ_changed = match &mut entry[s] {
                None => {
                    entry[s] = Some(edge_state);
                    true
                }
                Some(old) => old.join(&edge_state),
            };
            if succ_changed && !queued[s] {
                queued[s] = true;
                worklist.push_back(succ);
            }
        }
    }
    Solution {
        entry,
        exit,
        iterations,
    }
}

/// Strongly connected components of the Java call graph (direct calls
/// plus Handler posts), in callee-before-caller order — the order a
/// bottom-up summary computation consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    /// SCCs in reverse-topological (callee-first) order.
    pub sccs: Vec<Vec<MethodId>>,
}

/// Tarjan's algorithm (iterative), emitting SCCs callee-first.
pub fn condense_call_graph(model: &CodeModel) -> Condensation {
    let n = model.methods.len();
    let mut index: Vec<Option<u32>> = vec![None; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS frames: (node, edge cursor).
    let edges = |v: usize| -> Vec<usize> {
        let def = &model.methods[v];
        def.calls
            .iter()
            .chain(def.handler_posts.iter())
            .map(|m| m.0 as usize)
            .collect()
    };

    for root in 0..n {
        if index[root].is_some() {
            continue;
        }
        let mut frames: Vec<(usize, Vec<usize>, usize)> = vec![(root, edges(root), 0)];
        index[root] = Some(next_index);
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some((v, succs, cursor)) = frames.last_mut() {
            if let Some(&w) = succs.get(*cursor) {
                *cursor += 1;
                if index[w].is_none() {
                    index[w] = Some(next_index);
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, edges(w), 0));
                } else if on_stack[w] {
                    let v = *v;
                    lowlink[v] = lowlink[v].min(index[w].expect("indexed"));
                }
            } else {
                let v = *v;
                if lowlink[v] == index[v].expect("indexed") {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the SCC");
                        on_stack[w] = false;
                        scc.push(MethodId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    scc.sort();
                    sccs.push(scc);
                }
                frames.pop();
                if let Some((parent, _, _)) = frames.last() {
                    let parent = *parent;
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
    }
    Condensation { sccs }
}

impl Condensation {
    /// Map from method to the index of its SCC in [`Condensation::sccs`].
    pub fn scc_of(&self) -> BTreeMap<MethodId, usize> {
        let mut map = BTreeMap::new();
        for (i, scc) in self.sccs.iter().enumerate() {
            for m in scc {
                map.insert(*m, i);
            }
        }
        map
    }

    /// Dense method-indexed variant of [`Condensation::scc_of`].
    pub fn scc_index(&self, method_count: usize) -> Vec<usize> {
        let mut index = vec![usize::MAX; method_count];
        for (i, scc) in self.sccs.iter().enumerate() {
            for m in scc {
                index[m.0 as usize] = i;
            }
        }
        index
    }

    /// Groups SCCs into reverse-topological *waves*: level 0 holds SCCs
    /// with no external callees, level `k` holds SCCs whose deepest
    /// external callee sits at level `k-1`. All SCCs within one wave are
    /// mutually independent, so a bottom-up summary computation can
    /// process each wave in parallel with one barrier per level.
    pub fn levels(&self, model: &CodeModel) -> Vec<Vec<usize>> {
        let scc_index = self.scc_index(model.methods.len());
        let mut level = vec![0usize; self.sccs.len()];
        let mut max_level = 0;
        for (i, scc) in self.sccs.iter().enumerate() {
            let mut l = 0;
            for m in scc {
                let def = model.method(*m);
                for callee in def.calls.iter().chain(def.handler_posts.iter()) {
                    let j = scc_index[callee.0 as usize];
                    // Callee-first order guarantees j's level is final.
                    if j != i {
                        l = l.max(level[j] + 1);
                    }
                }
            }
            level[i] = l;
            max_level = max_level.max(l);
        }
        let mut waves = vec![Vec::new(); max_level + 1];
        for (i, l) in level.iter().enumerate() {
            waves[*l].push(i);
        }
        waves
    }
}

/// Runs `work` over `items` on up to `threads` scoped worker threads and
/// returns `(item, result)` pairs in the original `items` order — one
/// wave of the parallel bottom-up scheduler.
///
/// Items are dealt round-robin to workers, and results are re-assembled
/// positionally, so the output (and therefore everything folded from it)
/// is identical for every thread count — the determinism the incremental
/// cache's fingerprints rely on. With `threads <= 1` no thread is
/// spawned at all.
pub fn run_wave<R, F>(items: &[usize], threads: usize, work: F) -> Vec<(usize, R)>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(|&i| (i, work(i))).collect();
    }
    let mut slots: Vec<Option<(usize, R)>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(workers)
                        .map(|(pos, &i)| (pos, (i, work(i))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (pos, result) in handle.join().expect("wave worker panicked") {
                slots[pos] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every wave slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_corpus::spec::AospSpec;

    #[test]
    fn condensation_is_callee_first() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let cond = condense_call_graph(&model);
        let total: usize = cond.sccs.iter().map(Vec::len).sum();
        assert_eq!(
            total,
            model.methods.len(),
            "every method in exactly one SCC"
        );
        // Callee-first: every call edge goes from a later SCC to an
        // earlier (or the same) one.
        let scc_of = cond.scc_of();
        for def in &model.methods {
            for callee in def.calls.iter().chain(def.handler_posts.iter()) {
                assert!(
                    scc_of[callee] <= scc_of[&def.id],
                    "{}.{} calls ahead of its SCC",
                    def.class,
                    def.name
                );
            }
        }
    }

    #[test]
    fn recursion_forms_one_scc() {
        // A tiny two-method cycle must condense into a single SCC.
        use jgre_corpus::{MethodDef, MethodId};
        let model = CodeModel {
            classes: Vec::new(),
            methods: vec![
                MethodDef {
                    id: MethodId(0),
                    class: "A".into(),
                    name: "f".into(),
                    overrides_aidl: None,
                    calls: vec![MethodId(1)],
                    handler_posts: Vec::new(),
                    registers_service: None,
                    binder_params: Vec::new(),
                    permission_checks: Vec::new(),
                },
                MethodDef {
                    id: MethodId(1),
                    class: "A".into(),
                    name: "g".into(),
                    overrides_aidl: None,
                    calls: vec![MethodId(0)],
                    handler_posts: Vec::new(),
                    registers_service: None,
                    binder_params: Vec::new(),
                    permission_checks: Vec::new(),
                },
            ],
            native_functions: Vec::new(),
            jni_registrations: Vec::new(),
        };
        let cond = condense_call_graph(&model);
        assert_eq!(cond.sccs.len(), 1);
        assert_eq!(cond.sccs[0], vec![MethodId(0), MethodId(1)]);
    }
}
