//! On-disk summary cache for the incremental leak-check engine.
//!
//! One file (`summaries.bin`) holds two tiers:
//!
//! * **Tier A** — the whole-corpus summary table, keyed by the corpus
//!   fingerprint in the header. A warm re-lint of an unchanged tree
//!   decodes this tier directly (raw `MethodId`s, no string remapping,
//!   no call-graph condensation) — the fast path the ≥10x target rests
//!   on.
//! * **Tier B** — one record per call-graph SCC, keyed by the SCC key
//!   (member fact fingerprints + external callee summary fingerprints).
//!   Records reference methods by `(class, name)` so they survive
//!   `MethodId` renumbering; an edit invalidates exactly the
//!   condensation cone above it.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  b"JGRESUMC"                              8 bytes
//! version u32                                     = SCHEMA_VERSION
//! corpus_fp u64                                   Tier A key
//! scc_count u32                                   SCCs behind Tier A
//! tier_a_len u32
//! tier_a_payload [u8; tier_a_len]
//! tier_a_checksum u64                             StableHasher of the payload
//! repeated until EOF:
//!   key u64 | len u32 | payload [u8; len] | checksum u64
//! ```
//!
//! Every reader treats the file as untrusted input: a bad magic or
//! version rejects the whole file, a bad Tier A checksum stops parsing
//! (the framing can no longer be trusted), a truncated or corrupt Tier B
//! record is skipped — each rejection increments the `invalidated`
//! counter, records a typed [`RejectReason`], and the engine recomputes,
//! never panics.
//!
//! **Schema-version bump rule:** any change to the payload encodings,
//! the fingerprint recipes they key on, or the summary semantics they
//! capture must bump [`SCHEMA_VERSION`] so stale files self-invalidate.
//! Version 3 added the per-site predicate byte ([`PredSet`]) to every
//! fate encoding; files written by the boolean-guard era (version 2) are
//! rejected whole as [`RejectReason::StaleSchema`].

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io;
use std::path::Path;

use jgre_corpus::body::AllocSite;
use jgre_corpus::{CodeModel, MethodId};

use crate::ir::StableHasher;
use crate::leakcheck::{EscapeKind, MethodSummary, PredSet, Retention, SiteSummary};

/// Bumped whenever the cache encoding or the fingerprints it keys on
/// change shape; readers reject any other version.
pub const SCHEMA_VERSION: u32 = 3;

/// File name of the summary cache inside `--cache-dir`.
pub const CACHE_FILE: &str = "summaries.bin";

const MAGIC: &[u8; 8] = b"JGRESUMC";
const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 4;

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

// ------------------------------------------------------------------
// Byte-level encoder/decoder
// ------------------------------------------------------------------

/// Append-only little-endian encoder.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over untrusted bytes; every read is bounds-checked.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn str_ref(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ------------------------------------------------------------------
// Summary payload encodings
// ------------------------------------------------------------------

fn enc_site_shape(e: &mut Enc, site: AllocSite) {
    let (tag, idx) = match site {
        AllocSite::BinderParam(i) => (0u8, i as u32),
        AllocSite::DeathRecipient => (1, 0),
        AllocSite::ThreadPeer => (2, 0),
        AllocSite::ParcelStrongBinder => (3, 0),
    };
    e.u8(tag);
    e.u32(idx);
}

fn dec_site_shape(d: &mut Dec) -> Option<AllocSite> {
    let tag = d.u8()?;
    let idx = d.u32()?;
    match tag {
        0 => Some(AllocSite::BinderParam(idx as usize)),
        1 => Some(AllocSite::DeathRecipient),
        2 => Some(AllocSite::ThreadPeer),
        3 => Some(AllocSite::ParcelStrongBinder),
        _ => None,
    }
}

fn enc_fate(e: &mut Enc, site: &SiteSummary) {
    e.u8(match site.fate {
        Retention::Released => 0,
        Retention::Bounded => 1,
        Retention::Unbounded => 2,
    });
    e.u8(match site.escape {
        None => 0,
        Some(EscapeKind::ScalarReplace) => 1,
        Some(EscapeKind::BoundedCollection) => 2,
        Some(EscapeKind::UnboundedCollection) => 3,
    });
    e.u8(u8::from(site.read_only_key));
    e.u8(site.preds.bits());
}

fn dec_fate(d: &mut Dec) -> Option<(Retention, Option<EscapeKind>, bool, PredSet)> {
    let fate = match d.u8()? {
        0 => Retention::Released,
        1 => Retention::Bounded,
        2 => Retention::Unbounded,
        _ => return None,
    };
    let escape = match d.u8()? {
        0 => None,
        1 => Some(EscapeKind::ScalarReplace),
        2 => Some(EscapeKind::BoundedCollection),
        3 => Some(EscapeKind::UnboundedCollection),
        _ => return None,
    };
    let read_only_key = match d.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    // Unknown predicate bits mean a future lattice wrote the file: a
    // typed rejection, not a best-effort decode.
    let preds = PredSet::from_bits(d.u8()?)?;
    Some((fate, escape, read_only_key, preds))
}

/// Encodes the whole-corpus summary table (Tier A): summaries in
/// `MethodId` order with raw ids — valid only under the corpus
/// fingerprint it is stored beside.
pub fn encode_tier_a(summaries: &[MethodSummary]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(summaries.len() as u32);
    for s in summaries {
        e.u8(u8::from(s.saw_handler));
        e.u32(s.sites.len() as u32);
        for site in &s.sites {
            e.u32(site.method.0);
            enc_site_shape(&mut e, site.site);
            enc_fate(&mut e, site);
        }
    }
    e.buf
}

/// Decodes Tier A; `method_count` bounds both the table length and every
/// site's raw `MethodId`.
pub fn decode_tier_a(bytes: &[u8], method_count: usize) -> Option<Vec<MethodSummary>> {
    let mut d = Dec::new(bytes);
    let n = d.u32()? as usize;
    if n != method_count {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let saw_handler = d.u8()? != 0;
        let nsites = d.u32()? as usize;
        let mut sites = Vec::with_capacity(nsites.min(1024));
        for _ in 0..nsites {
            let method = d.u32()? as usize;
            if method >= method_count {
                return None;
            }
            let site = dec_site_shape(&mut d)?;
            let (fate, escape, read_only_key, preds) = dec_fate(&mut d)?;
            sites.push(SiteSummary {
                method: MethodId(method as u32),
                site,
                fate,
                escape,
                read_only_key,
                preds,
            });
        }
        out.push(MethodSummary { sites, saw_handler });
    }
    d.done().then_some(out)
}

fn enc_member(e: &mut Enc, model: &CodeModel, id: MethodId, summary: &MethodSummary) {
    let def = model.method(id);
    e.str(&def.class);
    e.str(&def.name);
    e.u8(u8::from(summary.saw_handler));
    e.u32(summary.sites.len() as u32);
    for site in &summary.sites {
        let origin = model.method(site.method);
        e.str(&origin.class);
        e.str(&origin.name);
        enc_site_shape(e, site.site);
        enc_fate(e, site);
    }
}

/// Encodes one SCC's summaries as a portable Tier B record.
pub fn encode_record(model: &CodeModel, members: &[(MethodId, &MethodSummary)]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(members.len() as u32);
    for (id, summary) in members {
        enc_member(&mut e, model, *id, summary);
    }
    e.buf
}

/// Decodes a Tier B record and remaps its `(class, name)` references
/// onto the current corpus, in one pass over the bytes without
/// allocating intermediate strings (the edit path remaps thousands of
/// hit records, so this is hot). Returns `None` when the record does
/// not map cleanly onto `scc`: wrong member count, a name the index
/// cannot resolve, or a member outside the SCC.
pub fn remap_record(
    bytes: &[u8],
    scc: &[MethodId],
    name_index: &HashMap<(&str, &str), MethodId>,
) -> Option<Vec<(MethodId, MethodSummary)>> {
    let mut d = Dec::new(bytes);
    let n = d.u32()? as usize;
    if n != scc.len() {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let class = d.str_ref()?;
        let name = d.str_ref()?;
        let id = *name_index.get(&(class, name))?;
        if scc.binary_search(&id).is_err() {
            return None;
        }
        let saw_handler = d.u8()? != 0;
        let nsites = d.u32()? as usize;
        let mut sites = Vec::with_capacity(nsites.min(1024));
        for _ in 0..nsites {
            let site_class = d.str_ref()?;
            let site_name = d.str_ref()?;
            let method = *name_index.get(&(site_class, site_name))?;
            let site = dec_site_shape(&mut d)?;
            let (fate, escape, read_only_key, preds) = dec_fate(&mut d)?;
            sites.push(SiteSummary {
                method,
                site,
                fate,
                escape,
                read_only_key,
                preds,
            });
        }
        // Recomputed summaries come out of a BTreeMap keyed on
        // (method, site); restore that canonical order in case the
        // stored corpus numbered its methods differently.
        sites.sort_by_key(|a| (a.method, a.site));
        out.push((id, MethodSummary { sites, saw_handler }));
    }
    d.done().then_some(out)
}

/// Stable fingerprint of one method's *summary* — the "callee summary
/// fingerprint" half of an SCC key. Mirrors the portable member fields
/// (names, not `MethodId`s), streamed straight into the hasher: it runs
/// once per method on every caching run, so no intermediate buffer.
pub fn summary_fingerprint(model: &CodeModel, id: MethodId, summary: &MethodSummary) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(0x4a47_5245_534d_4631); // "JGRESMF1": summary-recipe tag
    let def = model.method(id);
    h.write_str(&def.class);
    h.write_str(&def.name);
    h.write_u8(u8::from(summary.saw_handler));
    h.write_u32(summary.sites.len() as u32);
    for site in &summary.sites {
        let origin = model.method(site.method);
        h.write_str(&origin.class);
        h.write_str(&origin.name);
        let (tag, idx) = match site.site {
            AllocSite::BinderParam(i) => (0u8, i as u32),
            AllocSite::DeathRecipient => (1, 0),
            AllocSite::ThreadPeer => (2, 0),
            AllocSite::ParcelStrongBinder => (3, 0),
        };
        h.write_u8(tag);
        h.write_u32(idx);
        h.write_u8(match site.fate {
            Retention::Released => 0,
            Retention::Bounded => 1,
            Retention::Unbounded => 2,
        });
        h.write_u8(match site.escape {
            None => 0,
            Some(EscapeKind::ScalarReplace) => 1,
            Some(EscapeKind::BoundedCollection) => 2,
            Some(EscapeKind::UnboundedCollection) => 3,
        });
        h.write_u8(u8::from(site.read_only_key));
        h.write_u8(site.preds.bits());
    }
    h.finish()
}

// ------------------------------------------------------------------
// File load/store
// ------------------------------------------------------------------

/// Why a cache region was rejected, as a typed value — tests and
/// diagnostics can distinguish a stale lattice schema from corruption
/// instead of pattern-matching on counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The file is shorter than the fixed header.
    TruncatedHeader,
    /// The magic bytes did not match [`CACHE_FILE`]'s format.
    BadMagic,
    /// The file was written under a different lattice schema — e.g. a
    /// boolean-guard-era version-2 file read by the predicate lattice.
    StaleSchema {
        /// The version recorded in the file's header.
        found: u32,
    },
    /// A payload failed its checksum or its framing ran off the end.
    Corrupt,
    /// A payload framed and checksummed clean but decoded to values
    /// outside the current domain (unknown tags or predicate bits).
    MalformedPayload,
}

/// The cache file's validated contents. Rejected parts are simply
/// absent; `invalidated` counts every rejection and `reject` records
/// the first one's typed reason.
#[derive(Debug, Default)]
pub struct LoadedCache {
    /// Tier A summaries, present only when the header's corpus
    /// fingerprint matched `expected_fp` and the payload decoded clean.
    pub tier_a: Option<Vec<MethodSummary>>,
    /// SCC count recorded beside Tier A (reported as hits on a full
    /// Tier A hit).
    pub scc_count: u32,
    /// Raw Tier B record payloads by SCC key (checksums verified;
    /// decode on use). Left empty on a clean Tier A hit: the records
    /// would never be consulted, so the warm path skips verifying and
    /// copying them.
    pub tier_b: BTreeMap<u64, Vec<u8>>,
    /// Corrupt or stale parts rejected while loading.
    pub invalidated: u64,
    /// The first rejection's reason, when anything was rejected.
    pub reject: Option<RejectReason>,
}

impl LoadedCache {
    fn rejected(&mut self, reason: RejectReason) {
        self.invalidated += 1;
        self.reject.get_or_insert(reason);
    }
}

/// Loads and validates `path`. A missing file is an empty cache, not
/// corruption; every malformed region bumps `invalidated` and is
/// dropped.
pub fn load(path: &Path, expected_fp: u64, method_count: usize) -> LoadedCache {
    let mut out = LoadedCache::default();
    let Ok(bytes) = fs::read(path) else {
        return out;
    };
    if bytes.len() < HEADER_LEN {
        out.rejected(RejectReason::TruncatedHeader);
        return out;
    }
    if &bytes[..8] != MAGIC {
        out.rejected(RejectReason::BadMagic);
        return out;
    }
    let mut d = Dec::new(&bytes[8..]);
    let version = d.u32().expect("header length checked");
    if version != SCHEMA_VERSION {
        out.rejected(RejectReason::StaleSchema { found: version });
        return out;
    }
    let corpus_fp = d.u64().expect("header length checked");
    out.scc_count = d.u32().expect("header length checked");
    let tier_a_len = d.u32().expect("header length checked") as usize;
    let Some(tier_a_payload) = d.take(tier_a_len) else {
        out.rejected(RejectReason::Corrupt);
        return out;
    };
    let Some(tier_a_sum) = d.u64() else {
        out.rejected(RejectReason::Corrupt);
        return out;
    };
    if checksum(tier_a_payload) != tier_a_sum {
        // The length field itself is no longer trustworthy, so neither
        // is any Tier B framing after it: stop here.
        out.rejected(RejectReason::Corrupt);
        return out;
    }
    if corpus_fp == expected_fp {
        match decode_tier_a(tier_a_payload, method_count) {
            Some(summaries) => out.tier_a = Some(summaries),
            None => out.rejected(RejectReason::MalformedPayload),
        }
    }
    // Walk the Tier B framing (cheap pointer arithmetic) so truncation
    // is always detected, but defer the checksums: on a clean Tier A
    // hit the records are never consulted and verifying megabytes of
    // payload would dominate the warm path. Checksums run only when the
    // records will be used (Tier A miss) or rewritten (repair).
    let mut frames: Vec<(u64, &[u8], u64)> = Vec::new();
    while !d.done() {
        let (Some(key), Some(len)) = (d.u64(), d.u32()) else {
            out.rejected(RejectReason::Corrupt);
            break;
        };
        let Some(payload) = d.take(len as usize) else {
            out.rejected(RejectReason::Corrupt);
            break;
        };
        let Some(sum) = d.u64() else {
            out.rejected(RejectReason::Corrupt);
            break;
        };
        frames.push((key, payload, sum));
    }
    if out.tier_a.is_some() && out.invalidated == 0 {
        return out;
    }
    for (key, payload, sum) in frames {
        if checksum(payload) != sum {
            out.rejected(RejectReason::Corrupt);
            continue;
        }
        // Duplicate keys: last record wins, matching append semantics.
        out.tier_b.insert(key, payload.to_vec());
    }
    out
}

/// Atomically writes the cache file (temp file + rename). Tier B
/// records are emitted in key order so identical logical contents
/// produce identical bytes.
pub fn store(
    path: &Path,
    corpus_fp: u64,
    scc_count: u32,
    tier_a: &[u8],
    tier_b: &BTreeMap<u64, Vec<u8>>,
) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(
        HEADER_LEN + tier_a.len() + 8 + tier_b.values().map(|p| p.len() + 20).sum::<usize>(),
    );
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    bytes.extend_from_slice(&corpus_fp.to_le_bytes());
    bytes.extend_from_slice(&scc_count.to_le_bytes());
    bytes.extend_from_slice(&(tier_a.len() as u32).to_le_bytes());
    bytes.extend_from_slice(tier_a);
    bytes.extend_from_slice(&checksum(tier_a).to_le_bytes());
    for (key, payload) in tier_b {
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&checksum(payload).to_le_bytes());
    }
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("bin.tmp");
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_corpus::spec::AospSpec;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jgre-cache-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn tier_a_roundtrips() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let analysis = crate::leakcheck::LeakChecker::new(&model).analyze();
        let ordered: Vec<MethodSummary> = model
            .methods
            .iter()
            .map(|def| analysis.summaries[&def.id].clone())
            .collect();
        let bytes = encode_tier_a(&ordered);
        let decoded = decode_tier_a(&bytes, model.methods.len()).expect("clean roundtrip");
        assert_eq!(decoded, ordered);
        // The wrong method count must reject the table.
        assert!(decode_tier_a(&bytes, model.methods.len() + 1).is_none());
    }

    #[test]
    fn record_roundtrips_by_name() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let analysis = crate::leakcheck::LeakChecker::new(&model).analyze();
        let rcl = model
            .find_method("android.os.RemoteCallbackList", "register")
            .unwrap();
        let summary = &analysis.summaries[&rcl];
        let bytes = encode_record(&model, &[(rcl, summary)]);
        let name_index: HashMap<(&str, &str), MethodId> = model
            .methods
            .iter()
            .map(|d| ((d.class.as_str(), d.name.as_str()), d.id))
            .collect();
        let members = remap_record(&bytes, &[rcl], &name_index).expect("clean roundtrip");
        assert_eq!(members, vec![(rcl, summary.clone())]);
        // Truncated record bytes must be rejected, not mis-decoded.
        assert!(remap_record(&bytes[..bytes.len() - 1], &[rcl], &name_index).is_none());
        // A record that does not map onto the SCC must be refused.
        assert!(remap_record(&bytes, &[MethodId(0)], &name_index).is_none());
    }

    #[test]
    fn load_rejects_bad_magic_version_and_checksum() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let path = temp_path("hdr");
        let defaults = vec![MethodSummary::default(); model.methods.len()];
        let tier_a = encode_tier_a(&defaults);
        store(&path, 7, 1, &tier_a, &BTreeMap::new()).unwrap();

        let clean = load(&path, 7, model.methods.len());
        assert_eq!(clean.invalidated, 0);
        assert!(clean.tier_a.is_some());
        // Different corpus fingerprint: stale but not corrupt.
        let stale = load(&path, 8, model.methods.len());
        assert_eq!(stale.invalidated, 0);
        assert!(stale.tier_a.is_none());

        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let bad_magic = load(&path, 7, model.methods.len());
        assert_eq!(bad_magic.invalidated, 1);
        assert_eq!(bad_magic.reject, Some(RejectReason::BadMagic));

        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xff; // restore magic
        bytes[8] = (SCHEMA_VERSION - 1) as u8; // a previous-era schema
        fs::write(&path, &bytes).unwrap();
        let stale = load(&path, 7, model.methods.len());
        assert_eq!(stale.invalidated, 1);
        assert_eq!(
            stale.reject,
            Some(RejectReason::StaleSchema {
                found: SCHEMA_VERSION - 1
            })
        );

        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = SCHEMA_VERSION as u8; // restore version
        let mid = HEADER_LEN + tier_a.len() / 2;
        bytes[mid] ^= 0xff; // corrupt the Tier A payload
        fs::write(&path, &bytes).unwrap();
        let poisoned = load(&path, 7, model.methods.len());
        assert_eq!(poisoned.invalidated, 1);
        assert_eq!(poisoned.reject, Some(RejectReason::Corrupt));
        assert!(poisoned.tier_a.is_none());

        fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_predicate_bits_reject_the_payload() {
        // A site whose predicate byte sets bits outside the current
        // lattice must be a typed MalformedPayload rejection, not a
        // silent mis-decode — that is how a *future* lattice's file
        // self-invalidates even under an unchanged version number.
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let analysis = crate::leakcheck::LeakChecker::new(&model).analyze();
        let ordered: Vec<MethodSummary> = model
            .methods
            .iter()
            .map(|def| analysis.summaries[&def.id].clone())
            .collect();
        let mut tier_a = encode_tier_a(&ordered);
        // Poison the final byte of the payload — the last encoded site's
        // predicate byte.
        assert!(decode_tier_a(&tier_a, model.methods.len()).is_some());
        let last = tier_a.len() - 1;
        tier_a[last] |= 0xf0;
        assert!(
            decode_tier_a(&tier_a, model.methods.len()).is_none(),
            "unknown predicate bits must not decode"
        );

        let path = temp_path("predbits");
        store(&path, 7, 1, &tier_a, &BTreeMap::new()).unwrap();
        let loaded = load(&path, 7, model.methods.len());
        assert_eq!(loaded.reject, Some(RejectReason::MalformedPayload));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_tier_a_hit_skips_tier_b_materialization() {
        let path = temp_path("lazy");
        let mut tier_b = BTreeMap::new();
        tier_b.insert(3u64, vec![7u8; 16]);
        store(&path, 11, 1, &encode_tier_a(&[]), &tier_b).unwrap();
        let hit = load(&path, 11, 0);
        assert!(hit.tier_a.is_some());
        assert_eq!(hit.invalidated, 0);
        assert!(hit.tier_b.is_empty(), "records copied on a pure hit");
        // A Tier A miss (other corpus) must still materialize them.
        let miss = load(&path, 12, 0);
        assert!(miss.tier_a.is_none());
        assert_eq!(miss.tier_b.len(), 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_recovers_tier_b_prefix_from_truncation() {
        let path = temp_path("trunc");
        let mut tier_b = BTreeMap::new();
        tier_b.insert(1u64, vec![0u8; 16]);
        tier_b.insert(2u64, vec![1u8; 16]);
        store(&path, 9, 2, &encode_tier_a(&[]), &tier_b).unwrap();
        let full = fs::read(&path).unwrap();
        // Cut inside the second record: the first must survive.
        fs::write(&path, &full[..full.len() - 4]).unwrap();
        let loaded = load(&path, 9, 0);
        assert_eq!(loaded.invalidated, 1);
        assert_eq!(loaded.tier_b.len(), 1);
        assert!(loaded.tier_b.contains_key(&1));
        fs::remove_file(&path).ok();
    }
}
