//! The assembled four-step pipeline (Figure 1).

use std::collections::BTreeMap;

use jgre_corpus::CodeModel;
use jgre_framework::System;

use crate::{
    AnalysisOptions, AnalysisReport, ConfirmedVulnerability, DataflowDetector, IpcMethodExtractor,
    JgrEntryExtractor, JgreVerifier, ServiceKind, SiftReason, VerificationStatus, VerifierConfig,
};

/// Owns the code model and runs the methodology end to end.
///
/// # Example
///
/// ```no_run
/// use jgre_analysis::{Pipeline, VerifierConfig};
/// use jgre_corpus::{spec::AospSpec, CodeModel};
/// use jgre_framework::System;
///
/// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
/// let mut device = System::boot(0);
/// let report = Pipeline::new(model).run_full(&mut device, VerifierConfig::default());
/// assert_eq!(report.confirmed_service_interfaces().len(), 54);
/// ```
#[derive(Debug)]
pub struct Pipeline {
    model: CodeModel,
}

impl Pipeline {
    /// Wraps a synthesised (or otherwise constructed) code model.
    pub fn new(model: CodeModel) -> Self {
        Self { model }
    }

    /// Read access to the model.
    pub fn model(&self) -> &CodeModel {
        &self.model
    }

    /// Steps 1–3 only; every risky row is reported
    /// [`VerificationStatus::StaticOnly`].
    pub fn run_static(&self) -> AnalysisReport {
        self.run(None, &AnalysisOptions::default())
    }

    /// [`Pipeline::run_static`] with summary caching and parallelism
    /// knobs for step 3.
    pub fn run_static_with(&self, options: &AnalysisOptions) -> AnalysisReport {
        self.run(None, options)
    }

    /// The full pipeline including dynamic verification against `system`.
    pub fn run_full(&self, system: &mut System, config: VerifierConfig) -> AnalysisReport {
        self.run(Some((system, config)), &AnalysisOptions::default())
    }

    fn run(
        &self,
        dynamic: Option<(&mut System, VerifierConfig)>,
        options: &AnalysisOptions,
    ) -> AnalysisReport {
        // Step 1: IPC surface.
        let ipc_methods = IpcMethodExtractor::new(&self.model).extract();
        let services_total = ipc_methods
            .iter()
            .filter(|m| {
                matches!(
                    m.kind,
                    ServiceKind::SystemService | ServiceKind::NativeService
                )
            })
            .map(|m| m.service.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let native_services = ipc_methods
            .iter()
            .filter(|m| m.kind == ServiceKind::NativeService)
            .map(|m| m.service.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .len();

        // Step 2: JGR entries.
        let entries = JgrEntryExtractor::new(&self.model).extract();

        // Step 3: dataflow leak-check detection + sifting + permission
        // filter. The legacy heuristic detector stays on as a cross-check
        // oracle in debug builds — any divergence is a bug in one of the
        // two implementations.
        let flow = DataflowDetector::new(&self.model, &entries).detect_with(&ipc_methods, options);
        debug_assert_eq!(
            flow.cross_check(
                &crate::VulnerableIpcDetector::new(&self.model, &entries).detect(&ipc_methods)
            ),
            crate::leakcheck::CrossCheck::default(),
            "dataflow detector diverges from the heuristic oracle"
        );
        let output = &flow.detector;
        let mut sift_counts: BTreeMap<SiftReason, usize> = BTreeMap::new();
        for (_, reason) in &output.sifted {
            *sift_counts.entry(*reason).or_insert(0) += 1;
        }

        // Step 4: dynamic verification (when a device is supplied).
        let verified = dynamic.map(|(system, config)| {
            let results = JgreVerifier::new(config).verify(system, &self.model, &output.risky);
            results
                .into_iter()
                .map(|v| {
                    (
                        (v.risky.ipc.service.clone(), v.risky.ipc.method.clone()),
                        (v.confirmed, v.bypassed_protection),
                    )
                })
                .collect::<BTreeMap<_, _>>()
        });

        let rows: Vec<ConfirmedVulnerability> = output
            .risky
            .iter()
            .map(|r| {
                let permissions = r
                    .ipc
                    .java
                    .map(|mid| self.model.method(mid).permission_checks.clone())
                    .unwrap_or_default();
                let key = (r.ipc.service.clone(), r.ipc.method.clone());
                let (status, bypassed) = match &verified {
                    None => (VerificationStatus::StaticOnly, false),
                    Some(map) => match map.get(&key) {
                        Some((true, bypassed)) => (VerificationStatus::Confirmed, *bypassed),
                        Some((false, _)) => (VerificationStatus::Cleared, false),
                        // Not installable on the image (third-party).
                        None => (VerificationStatus::StaticOnly, false),
                    },
                };
                ConfirmedVulnerability {
                    service: r.ipc.service.clone(),
                    interface: r.ipc.interface.clone(),
                    method: r.ipc.method.clone(),
                    kind: r.ipc.kind.clone(),
                    permissions,
                    status,
                    bypassed_protection: bypassed,
                }
            })
            .collect();

        AnalysisReport {
            services_total,
            native_services,
            ipc_methods_total: ipc_methods.len(),
            native_paths: entries.native.clone(),
            java_jgr_entries: entries.java_entries.len(),
            risky_total: output.risky.len(),
            sift_counts: sift_counts.into_iter().collect(),
            solver: flow.stats.clone(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_corpus::spec::AospSpec;

    #[test]
    fn static_pipeline_reproduces_headline_counts() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let report = Pipeline::new(model).run_static();
        assert_eq!(report.services_total, 104);
        assert_eq!(report.native_services, 5);
        assert_eq!(report.native_paths.total_paths, 147);
        assert_eq!(report.native_paths.init_only_paths, 67);
        assert!(report.ipc_methods_total > 2_000);
        // 57 system (54 + 3 bounded) + 3 prebuilt + 3 third-party.
        assert_eq!(report.risky_total, 63);
    }
}
