//! Diagnostics layer: stable rule ids, severities, and a SARIF-shaped
//! JSON export for the `jgre lint` front-end.
//!
//! Verdict rows from the [`DataflowDetector`](crate::DataflowDetector)
//! become [`Diagnostic`]s with witness provenance; the whole set plus the
//! accuracy report against the spec ground truth forms a [`LintReport`],
//! exportable as SARIF 2.1.0 (built by hand on the vendored
//! [`Value`] tree — the subset GitHub code scanning and VS Code ingest).

use serde::{Deserialize, Serialize, Value};

use jgre_corpus::spec::AospSpec;
use jgre_corpus::CodeModel;

use crate::leakcheck::{AnalysisOptions, DataflowDetector, LeakVerdict, Retention, SolverStats};
use crate::witness::{MinimisedFlows, Witness};
use crate::{IpcMethodExtractor, JgrEntryExtractor, ServiceKind};

/// Stable rule identifiers for lint findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RuleId {
    /// JGRE001 — unbounded JGR retention on an attacker-reachable
    /// interface.
    UnboundedRetention,
    /// JGRE002 — retention gated behind a signature-level permission:
    /// unreachable for third-party callers, still worth surfacing.
    SignatureGatedRetention,
    /// JGRE003 — retention bounded by a visible per-process limit
    /// (Table III); statically risky, dynamically refuted.
    BoundedRetention,
    /// JGRE004 — the release exists but an early error return (failed
    /// validation, denied permission) skips it: the reference leaks only
    /// along the error path.
    ErrorPathRelease,
}

impl RuleId {
    /// The stable `JGREnnn` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::UnboundedRetention => "JGRE001",
            RuleId::SignatureGatedRetention => "JGRE002",
            RuleId::BoundedRetention => "JGRE003",
            RuleId::ErrorPathRelease => "JGRE004",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnboundedRetention => "unbounded-jgr-retention",
            RuleId::SignatureGatedRetention => "signature-gated-jgr-retention",
            RuleId::BoundedRetention => "bounded-jgr-retention",
            RuleId::ErrorPathRelease => "release-skipped-on-error-path",
        }
    }

    /// One-line description for the SARIF rule metadata.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::UnboundedRetention => {
                "IPC method retains a JNI global reference per call without bound; \
                 repeated calls exhaust the 51200-entry table and crash the process"
            }
            RuleId::SignatureGatedRetention => {
                "JGR retention exists but a signature-level permission blocks \
                 third-party callers"
            }
            RuleId::BoundedRetention => {
                "JGR retention is capped by a per-process limit checked before \
                 the store"
            }
            RuleId::ErrorPathRelease => {
                "the JNI global reference is released on the normal path but an \
                 early error return skips the release; repeated failing calls \
                 leak one reference each"
            }
        }
    }

    /// Default severity.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::UnboundedRetention => Severity::Error,
            RuleId::SignatureGatedRetention => Severity::Note,
            RuleId::BoundedRetention => Severity::Warning,
            // Attacker-forced error paths (a bad argument) make the leak
            // just as reachable as the unconditional class.
            RuleId::ErrorPathRelease => Severity::Error,
        }
    }

    /// All rules, id order.
    pub fn all() -> [RuleId; 4] {
        [
            RuleId::UnboundedRetention,
            RuleId::SignatureGatedRetention,
            RuleId::BoundedRetention,
            RuleId::ErrorPathRelease,
        ]
    }
}

/// Finding severity, mirroring SARIF's `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Exploitable as-is.
    Error,
    /// Real retention, mitigated by a bound.
    Warning,
    /// Informational (permission-gated).
    Note,
}

impl Severity {
    /// The SARIF `level` string.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One lint finding with witness provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Service exposing the interface.
    pub service: String,
    /// IPC method name.
    pub method: String,
    /// Kind of service.
    pub kind: ServiceKind,
    /// The underlying dataflow verdict.
    pub verdict: LeakVerdict,
    /// Finding message.
    pub message: String,
    /// One checkable witness per retained allocation site.
    pub witnesses: Vec<Witness>,
    /// Whether every retained site was *proven* bounded by a branch
    /// predicate (`BOUND_CHECKED` on all retaining sites). Proven rows
    /// stay visible as findings but are excluded from the predicted-leak
    /// set the accuracy report scores — the path-sensitive precision
    /// win.
    pub proven: bool,
}

/// Precision/recall of the risky set against the spec's ground truth,
/// restricted to system services (the paper's Table IV population).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Flagged and truly vulnerable.
    pub true_positives: usize,
    /// Flagged but dynamically refuted (the bounded collections).
    pub false_positives: usize,
    /// Vulnerable but missed — must be zero.
    pub false_negatives: usize,
    /// `tp / (tp + fp)`.
    pub precision: f64,
    /// `tp / (tp + fn)`.
    pub recall: f64,
}

/// The complete lint run: findings, accuracy, and solver statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// All findings, pipeline order.
    pub diagnostics: Vec<Diagnostic>,
    /// Static-analysis accuracy vs the spec ground truth.
    pub accuracy: AccuracyReport,
    /// Dataflow solver statistics.
    pub stats: SolverStats,
}

impl LintReport {
    /// Runs the dataflow pipeline over `model` and assembles findings.
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_analysis::diagnostics::{LintReport, RuleId};
    /// use jgre_corpus::{spec::AospSpec, CodeModel};
    ///
    /// let spec = AospSpec::android_6_0_1();
    /// let model = CodeModel::synthesize(&spec);
    /// let report = LintReport::generate(&model, &spec);
    /// assert_eq!(report.accuracy.false_negatives, 0);
    /// assert_eq!(report.accuracy.recall, 1.0);
    /// ```
    pub fn generate(model: &CodeModel, spec: &AospSpec) -> LintReport {
        Self::generate_with(model, spec, &AnalysisOptions::default())
    }

    /// [`LintReport::generate`] with summary caching and parallelism
    /// knobs; findings are identical in every mode, only
    /// [`LintReport::stats`] reflects the cache traffic.
    pub fn generate_with(
        model: &CodeModel,
        spec: &AospSpec,
        options: &AnalysisOptions,
    ) -> LintReport {
        let ipc = IpcMethodExtractor::new(model).extract();
        let entries = JgrEntryExtractor::new(model).extract();
        let out = DataflowDetector::new(model, &entries).detect_with(&ipc, options);

        let mut diagnostics = Vec::new();
        for row in &out.verdicts {
            if !row.verdict.is_risky() {
                continue;
            }
            let rule = if row.signature_gated {
                RuleId::SignatureGatedRetention
            } else if row.verdict == LeakVerdict::ErrorPathLeak {
                RuleId::ErrorPathRelease
            } else if row.verdict == LeakVerdict::UnboundedLeak {
                RuleId::UnboundedRetention
            } else {
                RuleId::BoundedRetention
            };
            let retained: Vec<_> = row
                .sites
                .iter()
                .filter(|s| s.fate != Retention::Released)
                .collect();
            let witnesses: Vec<Witness> = row
                .ipc
                .java
                .into_iter()
                .flat_map(|root| {
                    retained
                        .iter()
                        .filter_map(|site| Witness::build(model, root, site))
                        .collect::<Vec<_>>()
                })
                .collect();
            let qualifier = match rule {
                RuleId::UnboundedRetention => "without bound",
                RuleId::SignatureGatedRetention => "behind a signature-level permission",
                RuleId::BoundedRetention => "up to a per-process limit",
                RuleId::ErrorPathRelease => "on its error path only",
            };
            diagnostics.push(Diagnostic {
                rule,
                service: row.ipc.service.clone(),
                method: row.ipc.method.clone(),
                kind: row.ipc.kind.clone(),
                verdict: row.verdict,
                message: format!(
                    "{}.{} retains a JNI global reference per call {} \
                     ({} allocation site{})",
                    row.ipc.service,
                    row.ipc.method,
                    qualifier,
                    retained.len(),
                    if retained.len() == 1 { "" } else { "s" },
                ),
                witnesses,
                proven: options.path_sensitive && row.proven_bounded(),
            });
        }

        let accuracy = accuracy(&diagnostics, spec);
        LintReport {
            diagnostics,
            accuracy,
            stats: out.stats,
        }
    }

    /// Exports the report as a SARIF 2.1.0 document.
    pub fn to_sarif(&self, model: &CodeModel) -> Value {
        let rules = RuleId::all()
            .into_iter()
            .map(|r| {
                obj(vec![
                    ("id", s(r.as_str())),
                    ("name", s(r.name())),
                    ("shortDescription", obj(vec![("text", s(r.description()))])),
                    (
                        "defaultConfiguration",
                        obj(vec![("level", s(r.severity().sarif_level()))]),
                    ),
                ])
            })
            .collect();

        let results = self
            .diagnostics
            .iter()
            .map(|d| {
                let location = obj(vec![(
                    "logicalLocations",
                    Value::Array(vec![obj(vec![
                        (
                            "fullyQualifiedName",
                            s(format!("{}.{}", d.service, d.method)),
                        ),
                        ("kind", s("function")),
                    ])]),
                )]);
                // Multi-witness findings share most of their call chain;
                // emit the first flow in full and elide the common prefix
                // from the rest — readers follow the first flow for the
                // shared steps, and `MinimisedFlows::expand` guarantees
                // nothing is lost.
                let minimised = MinimisedFlows::minimise(&d.witnesses);
                let step_line = |line: String| {
                    obj(vec![(
                        "location",
                        obj(vec![("message", obj(vec![("text", s(line))]))]),
                    )])
                };
                let code_flows = minimised
                    .suffixes
                    .iter()
                    .enumerate()
                    .map(|(i, suffix)| {
                        let mut lines: Vec<String> = Vec::new();
                        if i == 0 || minimised.prefix.is_empty() {
                            lines.extend(
                                Witness {
                                    steps: minimised
                                        .prefix
                                        .iter()
                                        .chain(suffix.iter())
                                        .cloned()
                                        .collect(),
                                }
                                .render(model),
                            );
                        } else {
                            lines.push(format!(
                                "(shared prefix: {} step{} elided, see the first code flow)",
                                minimised.prefix.len(),
                                if minimised.prefix.len() == 1 { "" } else { "s" },
                            ));
                            lines.extend(
                                Witness {
                                    steps: suffix.clone(),
                                }
                                .render(model),
                            );
                        }
                        let locations = lines.into_iter().map(step_line).collect();
                        obj(vec![(
                            "threadFlows",
                            Value::Array(vec![obj(vec![("locations", Value::Array(locations))])]),
                        )])
                    })
                    .collect();
                obj(vec![
                    ("ruleId", s(d.rule.as_str())),
                    ("level", s(d.rule.severity().sarif_level())),
                    ("message", obj(vec![("text", s(d.message.clone()))])),
                    ("locations", Value::Array(vec![location])),
                    ("codeFlows", Value::Array(code_flows)),
                ])
            })
            .collect();

        obj(vec![
            (
                "$schema",
                s("https://json.schemastore.org/sarif-2.1.0.json"),
            ),
            ("version", s("2.1.0")),
            (
                "runs",
                Value::Array(vec![obj(vec![
                    (
                        "tool",
                        obj(vec![(
                            "driver",
                            obj(vec![
                                ("name", s("jgre-lint")),
                                ("informationUri", s("https://example.org/jgre")),
                                ("rules", Value::Array(rules)),
                            ]),
                        )]),
                    ),
                    (
                        "invocations",
                        Value::Array(vec![obj(vec![
                            ("executionSuccessful", Value::Bool(true)),
                            (
                                "properties",
                                obj(vec![
                                    ("summaries", Value::UInt(self.stats.methods as u64)),
                                    ("sccs", Value::UInt(self.stats.sccs as u64)),
                                    (
                                        "solverIterations",
                                        Value::UInt(self.stats.solver_iterations),
                                    ),
                                    ("cacheHits", Value::UInt(self.stats.cache_hits)),
                                    ("cacheMisses", Value::UInt(self.stats.cache_misses)),
                                    (
                                        "cacheInvalidated",
                                        Value::UInt(self.stats.cache_invalidated),
                                    ),
                                ]),
                            ),
                        ])]),
                    ),
                    ("results", Value::Array(results)),
                ])]),
            ),
        ])
    }
}

/// The lint's predicted-leak set: the (service, method) pairs the static
/// pipeline claims an unprivileged app can leak through. System-service
/// findings only, minus signature-gated rows (unreachable to apps) and
/// rows whose retention was proven bounded by a branch predicate — the
/// same filter [`LintReport::accuracy`] is scored on, exposed so dynamic
/// stages (the fuzzer's differential check) can compare against the exact
/// set the lint stands behind rather than re-deriving it.
pub fn predicted_leaks(diagnostics: &[Diagnostic]) -> std::collections::BTreeSet<(String, String)> {
    diagnostics
        .iter()
        .filter(|d| d.kind == ServiceKind::SystemService)
        .filter(|d| d.rule != RuleId::SignatureGatedRetention)
        .filter(|d| !d.proven)
        .map(|d| (d.service.clone(), d.method.clone()))
        .collect()
}

/// Scores system-service findings against the spec's vulnerability flags.
/// Rows whose retention was proven bounded by a branch predicate are not
/// part of the predicted-leak set: the analysis established their cap
/// statically, so counting them as predictions would charge a false
/// positive for a correct proof.
fn accuracy(diagnostics: &[Diagnostic], spec: &AospSpec) -> AccuracyReport {
    use std::collections::BTreeSet;
    let predicted = predicted_leaks(diagnostics);
    let truth: BTreeSet<(String, String)> = spec
        .vulnerable_service_interfaces()
        .map(|(svc, m)| (svc.name.clone(), m.name.clone()))
        .collect();
    let true_positives = predicted.intersection(&truth).count();
    let false_positives = predicted.difference(&truth).count();
    let false_negatives = truth.difference(&predicted).count();
    let ratio = |num: usize, den: usize| {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    };
    AccuracyReport {
        true_positives,
        false_positives,
        false_negatives,
        precision: ratio(true_positives, true_positives + false_positives),
        recall: ratio(true_positives, true_positives + false_negatives),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> (CodeModel, LintReport) {
        let spec = AospSpec::android_6_0_1();
        let model = CodeModel::synthesize(&spec);
        let report = LintReport::generate(&model, &spec);
        (model, report)
    }

    #[test]
    fn accuracy_beats_the_paper_with_proven_bounds() {
        // Path-sensitive scoring: the bounded three are *proven* capped
        // (every retaining site behind a BOUND_CHECKED admission), so
        // they leave the predicted set — precision 1.0 at recall 1.0.
        let (_, report) = report();
        assert_eq!(report.accuracy.true_positives, 54);
        assert_eq!(report.accuracy.false_positives, 0, "bounded three proven");
        assert_eq!(report.accuracy.false_negatives, 0);
        assert_eq!(report.accuracy.recall, 1.0);
        assert_eq!(report.accuracy.precision, 1.0);
        let proven: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.proven)
            .map(|d| format!("{}.{}", d.service, d.method))
            .collect();
        assert_eq!(
            proven,
            [
                "display.registerCallback",
                "input.registerInputDevicesChangedListener",
                "input.registerTabletModeChangedListener",
            ],
            "exactly the bounded three are proven"
        );
    }

    #[test]
    fn path_insensitive_accuracy_pins_the_boolean_era_score() {
        // Regression baseline: with predicate reading off, no row is
        // proven and the bounded three come back as false positives —
        // the paper's own static score.
        let spec = AospSpec::android_6_0_1();
        let model = CodeModel::synthesize(&spec);
        let report = LintReport::generate_with(
            &model,
            &spec,
            &AnalysisOptions::default().path_insensitive(),
        );
        assert_eq!(report.accuracy.true_positives, 54);
        assert_eq!(report.accuracy.false_positives, 3, "the bounded three");
        assert_eq!(report.accuracy.false_negatives, 0);
        assert_eq!(report.accuracy.recall, 1.0);
        assert!((report.accuracy.precision - 54.0 / 57.0).abs() < 1e-12);
        assert!(report.diagnostics.iter().all(|d| !d.proven));
    }

    #[test]
    fn rule_partition_is_complete() {
        let (_, report) = report();
        let count = |r: RuleId| report.diagnostics.iter().filter(|d| d.rule == r).count();
        // 63 risky (57 system + 3 prebuilt + 3 third-party), of which 3
        // are the bounded collections.
        assert_eq!(count(RuleId::UnboundedRetention), 60);
        assert_eq!(count(RuleId::BoundedRetention), 3);
        // Signature-gated retention exists in the corpus (Table V's
        // permission-protected listeners).
        assert!(count(RuleId::SignatureGatedRetention) >= 2);
        // The base corpus has no error-path shape; JGRE004 only fires on
        // the extension fixture.
        assert_eq!(count(RuleId::ErrorPathRelease), 0);
    }

    #[test]
    fn error_path_fixture_yields_jgre004_findings() {
        let spec = AospSpec::android_6_0_1();
        let model = CodeModel::synthesize_with_error_paths(&spec);
        let report = LintReport::generate(&model, &spec);
        let jgre004: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::ErrorPathRelease)
            .collect();
        assert!(jgre004.len() >= 3, "found {}", jgre004.len());
        for d in &jgre004 {
            assert_eq!(d.verdict, LeakVerdict::ErrorPathLeak);
            assert_eq!(d.rule.severity(), Severity::Error);
            assert!(!d.witnesses.is_empty(), "{}.{}", d.service, d.method);
            for w in &d.witnesses {
                w.validate(&model)
                    .unwrap_or_else(|e| panic!("{}.{}: {e}", d.service, d.method));
            }
        }
        // The fixture must not disturb the base accuracy.
        assert_eq!(report.accuracy.true_positives, 54);
        assert_eq!(report.accuracy.false_positives, 0);
        assert_eq!(report.accuracy.false_negatives, 0);
    }

    #[test]
    fn every_diagnostic_has_a_witness_and_they_validate() {
        let (model, report) = report();
        for d in &report.diagnostics {
            assert!(
                !d.witnesses.is_empty(),
                "{}.{} has no witness",
                d.service,
                d.method
            );
            for w in &d.witnesses {
                w.validate(&model)
                    .unwrap_or_else(|e| panic!("{}.{}: {e}", d.service, d.method));
            }
        }
    }

    #[test]
    fn sarif_roundtrips_and_has_the_expected_shape() {
        let (model, report) = report();
        let sarif = report.to_sarif(&model);
        let text = serde_json::to_string_pretty(&sarif).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = parsed.get("runs").and_then(Value::as_array).unwrap();
        let driver = runs[0].get("tool").unwrap().get("driver").unwrap();
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("jgre-lint")
        );
        assert_eq!(
            driver.get("rules").and_then(Value::as_array).unwrap().len(),
            4
        );
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), report.diagnostics.len());
        for result in results {
            let flows = result.get("codeFlows").and_then(Value::as_array).unwrap();
            assert!(!flows.is_empty(), "finding without a code flow");
        }
    }

    #[test]
    fn sarif_elides_shared_prefixes_after_the_first_flow() {
        let (model, report) = report();
        let sarif = report.to_sarif(&model);
        let runs = sarif.get("runs").and_then(Value::as_array).unwrap();
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        let flow_lines = |flow: &Value| -> Vec<String> {
            flow.get("threadFlows").and_then(Value::as_array).unwrap()[0]
                .get("locations")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .map(|l| {
                    l.get("location")
                        .unwrap()
                        .get("message")
                        .unwrap()
                        .get("text")
                        .and_then(Value::as_str)
                        .unwrap()
                        .to_owned()
                })
                .collect()
        };
        let mut elided_seen = 0usize;
        for result in results {
            let flows = result.get("codeFlows").and_then(Value::as_array).unwrap();
            // The first flow is always complete: entry to sink.
            let first = flow_lines(&flows[0]);
            assert!(first[0].starts_with("IPC entry "));
            assert!(first.last().unwrap().contains("inserts the JGR"));
            for flow in &flows[1..] {
                let lines = flow_lines(flow);
                if lines[0].contains("elided") {
                    elided_seen += 1;
                    assert!(lines.last().unwrap().contains("inserts the JGR"));
                }
            }
        }
        assert!(elided_seen > 0, "no multi-witness finding shared a prefix");
    }
}
