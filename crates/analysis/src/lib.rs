//! The paper's four-step JGRE analysis methodology (§III, Figure 1).
//!
//! The pipeline runs against the synthetic AOSP code model from
//! [`jgre_corpus`] and re-derives every §IV statistic by graph analysis —
//! it never reads the spec's vulnerability flags:
//!
//! 1. [`IpcMethodExtractor`] — finds every IPC method: Java system
//!    services registered through `ServiceManager.addService` /
//!    `publishBinderService`, the 5 native services registered through the
//!    C++ `ServiceManager::addService`, and app services exported through
//!    abstract base classes (`asBinder()` interfaces).
//! 2. [`JgrEntryExtractor`] — walks the native call graph to
//!    `IndirectReferenceTable::Add` (147 paths; 67 init-only, filtered),
//!    then lifts the surviving JNI entry points to Java methods through
//!    the `registerNativeMethods` data.
//! 3. [`VulnerableIpcDetector`] — builds per-IPC-method call graphs
//!    (direct + Handler-indirect edges), marks risky methods (reachable
//!    JGR entry, or Binder/IInterface parameters — the
//!    `readStrongBinder` special case), applies the four sift rules, and
//!    filters by the PScout-style permission map (signature-level
//!    permissions are unreachable for third-party apps).
//! 4. [`JgreVerifier`] — dynamically tests each risky interface against
//!    the simulated device: fire IPC requests, trigger GC periodically
//!    (the DDMS step), and confirm whether the JGR footprint grows without
//!    bound.
//!
//! # Example
//!
//! ```
//! use jgre_analysis::Pipeline;
//! use jgre_corpus::{spec::AospSpec, CodeModel};
//!
//! let spec = AospSpec::android_6_0_1();
//! let model = CodeModel::synthesize(&spec);
//! let report = Pipeline::new(model).run_static();
//! assert_eq!(report.native_paths.total_paths, 147);
//! assert_eq!(report.native_paths.init_only_paths, 67);
//! ```

// The workspace warns on missing docs; the public analysis surface is
// the reference implementation of the paper's method, so escalate.
#![deny(missing_docs)]

pub mod cache;
mod codegen;
pub mod dataflow;
mod detect;
pub mod diagnostics;
mod extract_ipc;
mod extract_jgr;
pub mod ir;
pub mod leakcheck;
mod pipeline;
mod report;
mod verify;
pub mod witness;

pub use cache::{RejectReason, CACHE_FILE, SCHEMA_VERSION};
pub use codegen::{generate_test_case, GeneratedTestCase};
pub use dataflow::{
    condense_call_graph, run_wave, solve_forward, Condensation, ForwardAnalysis, Solution,
};
pub use detect::{DetectorOutput, RiskyInterface, SiftReason, VulnerableIpcDetector};
pub use diagnostics::{predicted_leaks, AccuracyReport, Diagnostic, LintReport, RuleId, Severity};
pub use extract_ipc::{IpcMethod, IpcMethodExtractor, ServiceKind};
pub use extract_jgr::{JgrEntryExtractor, JgrEntrySets, NativePathAnalysis};
pub use ir::{
    corpus_fingerprint, method_fact_fingerprint, method_fact_fingerprints, BasicBlock, BlockId,
    Cfg, Fingerprint, StableHasher, Stmt, Terminator,
};
pub use leakcheck::{
    intra_solver_cost, AnalysisOptions, CrossCheck, DataflowDetector, DataflowOutput, LeakChecker,
    LeakVerdict, MethodSummary, PredSet, Retention, SiteSummary, SolverStats, VerdictRow,
};
pub use pipeline::Pipeline;
pub use report::{AnalysisReport, ConfirmedVulnerability, VerificationStatus};
pub use verify::{JgreVerifier, VerifierConfig};
pub use witness::{MinimisedFlows, Witness, WitnessStep};
