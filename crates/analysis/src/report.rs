//! Aggregated analysis results — the source for the paper's §IV tables.

use std::collections::BTreeSet;

use jgre_corpus::spec::Permission;
use serde::{Deserialize, Serialize};

use crate::{NativePathAnalysis, ServiceKind, SiftReason, SolverStats};

/// How a risky interface fared in step 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerificationStatus {
    /// Dynamically confirmed exploitable.
    Confirmed,
    /// A server-side bound held; cleared.
    Cleared,
    /// Not dynamically testable on the image (third-party exports);
    /// reported from static evidence only.
    StaticOnly,
}

/// One confirmed (or cleared) vulnerability row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfirmedVulnerability {
    /// Service (or exporting class for app services).
    pub service: String,
    /// AIDL interface.
    pub interface: String,
    /// Method.
    pub method: String,
    /// Exposure kind.
    pub kind: ServiceKind,
    /// Permissions a third-party caller needs (from the PScout map).
    pub permissions: Vec<Permission>,
    /// Verification outcome.
    pub status: VerificationStatus,
    /// Whether the confirmation required bypassing an existing (flawed)
    /// protection.
    pub bypassed_protection: bool,
}

/// The full pipeline report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Registered system services discovered (104).
    pub services_total: usize,
    /// Of which native (5).
    pub native_services: usize,
    /// Total IPC methods discovered across services and apps.
    pub ipc_methods_total: usize,
    /// Native path analysis (147 / 67 / 80).
    pub native_paths: NativePathAnalysis,
    /// Java JGR entry count (methods whose JNI target reaches `Add`).
    pub java_jgr_entries: usize,
    /// Statically risky after sifting, before verification.
    pub risky_total: usize,
    /// Sift statistics.
    pub sift_counts: Vec<(SiftReason, usize)>,
    /// Dataflow solver statistics (CFGs built, blocks, fixpoint work).
    pub solver: SolverStats,
    /// Every risky row with its verification status.
    pub rows: Vec<ConfirmedVulnerability>,
}

impl AnalysisReport {
    /// Rows confirmed in system services — the paper's 54.
    pub fn confirmed_service_interfaces(&self) -> Vec<&ConfirmedVulnerability> {
        self.rows
            .iter()
            .filter(|r| {
                r.kind == ServiceKind::SystemService && r.status == VerificationStatus::Confirmed
            })
            .collect()
    }

    /// Distinct vulnerable system services — the paper's 32.
    pub fn confirmed_services(&self) -> BTreeSet<&str> {
        self.confirmed_service_interfaces()
            .into_iter()
            .map(|r| r.service.as_str())
            .collect()
    }

    /// Confirmed rows in prebuilt apps — the paper's 3.
    pub fn confirmed_prebuilt_interfaces(&self) -> Vec<&ConfirmedVulnerability> {
        self.rows
            .iter()
            .filter(|r| {
                matches!(r.kind, ServiceKind::PrebuiltApp(_))
                    && r.status == VerificationStatus::Confirmed
            })
            .collect()
    }

    /// Statically flagged third-party app rows — the paper's 3 (Table V).
    pub fn third_party_interfaces(&self) -> Vec<&ConfirmedVulnerability> {
        self.rows
            .iter()
            .filter(|r| matches!(r.kind, ServiceKind::ThirdPartyApp(_)))
            .collect()
    }

    /// Vulnerable system services reachable with zero permissions — the
    /// paper's 22.
    pub fn zero_permission_services(&self) -> BTreeSet<&str> {
        self.confirmed_service_interfaces()
            .into_iter()
            .filter(|r| r.permissions.is_empty())
            .map(|r| r.service.as_str())
            .collect()
    }

    /// Renders the full report as a Markdown document: headline counts,
    /// sift statistics, and one table per exposure kind — the shape of a
    /// disclosure report to a security team.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut md = String::from("# JGRE analysis report\n\n");
        let _ = writeln!(
            md,
            "* **{} system services** analysed ({} native), exposing **{}** IPC methods",
            self.services_total, self.native_services, self.ipc_methods_total
        );
        let _ = writeln!(
            md,
            "* **{} native paths** to `IndirectReferenceTable::Add` ({} init-only, filtered; {} exploitable)",
            self.native_paths.total_paths,
            self.native_paths.init_only_paths,
            self.native_paths.exploitable_paths
        );
        let _ = writeln!(
            md,
            "* **{} Java JGR entry methods**; **{} risky** interfaces after sifting",
            self.java_jgr_entries, self.risky_total
        );
        let confirmed = self.confirmed_service_interfaces();
        let _ = writeln!(
            md,
            "* **{} confirmed vulnerable** interfaces in **{} services** ({} reachable with zero permissions)",
            confirmed.len(),
            self.confirmed_services().len(),
            self.zero_permission_services().len()
        );
        let _ = writeln!(
            md,
            "* Dataflow solver: {} methods / {} basic blocks, {} block transfers over {} call-graph SCCs\n",
            self.solver.methods,
            self.solver.cfg_blocks,
            self.solver.solver_iterations,
            self.solver.sccs
        );
        md.push_str("## Sift statistics\n\n| rule | candidates cleared |\n|---|---|\n");
        for (reason, count) in &self.sift_counts {
            let _ = writeln!(md, "| {reason:?} | {count} |");
        }
        md.push_str("\n## Findings\n\n| service | interface.method | permissions | status |\n|---|---|---|---|\n");
        for row in &self.rows {
            let perms = if row.permissions.is_empty() {
                "-".to_owned()
            } else {
                row.permissions
                    .iter()
                    .map(|p| p.manifest_name().to_owned())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                md,
                "| {} | {}.{} | {} | {:?}{} |",
                row.service,
                row.interface,
                row.method,
                perms,
                row.status,
                if row.bypassed_protection {
                    " (protection bypassed)"
                } else {
                    ""
                }
            );
        }
        md
    }

    /// Renders a plain-text summary block (used by examples and
    /// EXPERIMENTS.md generation).
    pub fn summary(&self) -> String {
        let confirmed = self.confirmed_service_interfaces().len();
        let services = self.confirmed_services().len();
        format!(
            "services: {} ({} native); IPC methods: {}; native paths: {} total / {} init-only / {} exploitable; \
             java JGR entries: {}; risky after sift: {}; confirmed: {} interfaces in {} services; \
             prebuilt: {} interfaces; third-party: {}; zero-permission services: {}",
            self.services_total,
            self.native_services,
            self.ipc_methods_total,
            self.native_paths.total_paths,
            self.native_paths.init_only_paths,
            self.native_paths.exploitable_paths,
            self.java_jgr_entries,
            self.risky_total,
            confirmed,
            services,
            self.confirmed_prebuilt_interfaces().len(),
            self.third_party_interfaces().len(),
            self.zero_permission_services().len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(service: &str, method: &str, status: VerificationStatus) -> ConfirmedVulnerability {
        ConfirmedVulnerability {
            service: service.to_owned(),
            interface: format!("I{service}"),
            method: method.to_owned(),
            kind: ServiceKind::SystemService,
            permissions: Vec::new(),
            status,
            bypassed_protection: false,
        }
    }

    #[test]
    fn selectors_filter_correctly() {
        let report = AnalysisReport {
            services_total: 2,
            native_services: 0,
            ipc_methods_total: 3,
            native_paths: NativePathAnalysis {
                total_paths: 0,
                init_only_paths: 0,
                exploitable_paths: 0,
                jgr_jni_natives: BTreeSet::new(),
            },
            java_jgr_entries: 0,
            risky_total: 3,
            sift_counts: Vec::new(),
            solver: SolverStats::default(),
            rows: vec![
                row("a", "m1", VerificationStatus::Confirmed),
                row("a", "m2", VerificationStatus::Confirmed),
                row("b", "m3", VerificationStatus::Cleared),
            ],
        };
        assert_eq!(report.confirmed_service_interfaces().len(), 2);
        assert_eq!(report.confirmed_services().len(), 1);
        assert_eq!(report.zero_permission_services().len(), 1);
        assert!(report
            .summary()
            .contains("confirmed: 2 interfaces in 1 services"));
    }
}
