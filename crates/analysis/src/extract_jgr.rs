//! Step 2: the JGR entry extractor (§III-B).

use std::collections::{BTreeMap, BTreeSet};

use jgre_corpus::{CodeModel, MethodId, NativeFunctionId};
use serde::{Deserialize, Serialize};

/// Result of the native call-graph walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NativePathAnalysis {
    /// All simple paths from any root to `IndirectReferenceTable::Add`
    /// (the paper finds 147).
    pub total_paths: usize,
    /// Paths only reachable during runtime initialisation, filtered out
    /// (the paper's 67 — `WellKnownClasses::CacheClass` etc.).
    pub init_only_paths: usize,
    /// Exploitable paths: reachable from registered JNI entry points.
    pub exploitable_paths: usize,
    /// JNI entry points with at least one exploitable path.
    pub jgr_jni_natives: BTreeSet<NativeFunctionId>,
}

/// Java-side JGR entries derived from the native analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JgrEntrySets {
    /// Native analysis summary.
    pub native: NativePathAnalysis,
    /// Java methods whose registered native function reaches `Add` —
    /// the set the detector searches call graphs for.
    pub java_entries: BTreeSet<MethodId>,
    /// The paper's critical named mappings, as `(java, native)` pairs,
    /// e.g. `("android.os.Binder.linkToDeathNative",
    /// "JavaDeathRecipient::JavaDeathRecipient")`.
    pub named_mappings: Vec<(String, String)>,
    /// The Java JGR entry that sift rule 1 exempts
    /// (`java.lang.Thread.nativeCreate`).
    pub thread_native_create: Option<MethodId>,
    /// The two parcel entries handled out-of-band by the detector
    /// (`nativeReadStrongBinder` / `nativeWriteStrongBinder`).
    pub parcel_entries: BTreeSet<MethodId>,
}

/// Walks the native world and lifts JGR entries to Java.
///
/// # Example
///
/// ```
/// use jgre_analysis::JgrEntryExtractor;
/// use jgre_corpus::{spec::AospSpec, CodeModel};
///
/// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
/// let entries = JgrEntryExtractor::new(&model).extract();
/// assert_eq!(entries.native.total_paths, 147);
/// assert_eq!(entries.native.exploitable_paths, 80);
/// ```
#[derive(Debug)]
pub struct JgrEntryExtractor<'m> {
    model: &'m CodeModel,
}

impl<'m> JgrEntryExtractor<'m> {
    /// Wraps a code model.
    pub fn new(model: &'m CodeModel) -> Self {
        Self { model }
    }

    /// Runs the extraction.
    pub fn extract(&self) -> JgrEntrySets {
        let native = self.analyze_native_paths();
        let mut java_entries = BTreeSet::new();
        let mut named_mappings = Vec::new();
        let mut thread_native_create = None;
        let mut parcel_entries = BTreeSet::new();
        for reg in &self.model.jni_registrations {
            if !native.jgr_jni_natives.contains(&reg.native) {
                continue;
            }
            let Some(mid) = self.model.find_method(&reg.java_class, &reg.java_method) else {
                // Generated JNI libraries have no Java-side MethodDef; they
                // are JGR entries no framework code calls.
                continue;
            };
            java_entries.insert(mid);
            named_mappings.push((
                format!("{}.{}", reg.java_class, reg.java_method),
                self.model.native(reg.native).name.clone(),
            ));
            if reg.java_class == "java.lang.Thread" && reg.java_method == "nativeCreate" {
                thread_native_create = Some(mid);
            }
            if reg.java_class == "android.os.Parcel" {
                parcel_entries.insert(mid);
            }
        }
        JgrEntrySets {
            native,
            java_entries,
            named_mappings,
            thread_native_create,
            parcel_entries,
        }
    }

    /// Counts simple paths from each root to the `Add` sink. The native
    /// graph is a DAG, so a dynamic program over path counts suffices
    /// (this is the static call-graph analysis the paper does with
    /// Doxygen output).
    fn analyze_native_paths(&self) -> NativePathAnalysis {
        let n = self.model.native_functions.len();
        let mut memo: BTreeMap<usize, u64> = BTreeMap::new();
        fn count_paths(
            model: &CodeModel,
            idx: usize,
            memo: &mut BTreeMap<usize, u64>,
            visiting: &mut Vec<bool>,
        ) -> u64 {
            if model.native_functions[idx].is_irt_add {
                return 1;
            }
            if let Some(&c) = memo.get(&idx) {
                return c;
            }
            if visiting[idx] {
                return 0; // cycle guard: simple paths only
            }
            visiting[idx] = true;
            let mut total = 0;
            for callee in &model.native_functions[idx].calls {
                total += count_paths(model, callee.0 as usize, memo, visiting);
            }
            visiting[idx] = false;
            memo.insert(idx, total);
            total
        }

        let mut visiting = vec![false; n];
        let mut total_paths = 0usize;
        let mut init_only_paths = 0usize;
        let mut exploitable_paths = 0usize;
        let mut jgr_jni_natives = BTreeSet::new();
        for (idx, f) in self.model.native_functions.iter().enumerate() {
            let is_root = f.is_jni_entry || f.init_only_root;
            if !is_root {
                continue;
            }
            let c = count_paths(self.model, idx, &mut memo, &mut visiting) as usize;
            if c == 0 {
                continue;
            }
            total_paths += c;
            if f.init_only_root {
                init_only_paths += c;
            } else {
                exploitable_paths += c;
                jgr_jni_natives.insert(f.id);
            }
        }
        NativePathAnalysis {
            total_paths,
            init_only_paths,
            exploitable_paths,
            jgr_jni_natives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_corpus::spec::AospSpec;

    fn entries() -> JgrEntrySets {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        JgrEntryExtractor::new(&model).extract()
    }

    #[test]
    fn path_counts_match_the_paper() {
        let e = entries();
        assert_eq!(e.native.total_paths, 147, "147 native paths");
        assert_eq!(e.native.init_only_paths, 67, "67 init-only, filtered");
        assert_eq!(e.native.exploitable_paths, 80);
    }

    #[test]
    fn named_java_mappings_recovered() {
        let e = entries();
        let mappings: std::collections::BTreeSet<&str> =
            e.named_mappings.iter().map(|(j, _)| j.as_str()).collect();
        assert!(mappings.contains("android.os.Parcel.nativeReadStrongBinder"));
        assert!(mappings.contains("android.os.Parcel.nativeWriteStrongBinder"));
        assert!(mappings.contains("android.os.Binder.linkToDeathNative"));
        assert!(mappings.contains("java.lang.Thread.nativeCreate"));
        assert!(e.thread_native_create.is_some());
        assert_eq!(e.parcel_entries.len(), 2);
    }

    #[test]
    fn init_roots_contribute_no_java_entries() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let e = JgrEntryExtractor::new(&model).extract();
        for nid in &e.native.jgr_jni_natives {
            assert!(!model.native(*nid).init_only_root);
        }
    }
}
