//! Step 1: the IPC method extractor (§III-A).

use std::collections::BTreeMap;

use jgre_corpus::{CodeModel, MethodId, Origin};
use serde::{Deserialize, Serialize};

/// Who exposes an IPC method.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceKind {
    /// A registered system service (Java, hosted in `system_server`).
    SystemService,
    /// A registered native system service.
    NativeService,
    /// A service exported by a prebuilt app, by package.
    PrebuiltApp(String),
    /// A service exported by a third-party app, by package.
    ThirdPartyApp(String),
}

/// One discovered IPC method.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpcMethod {
    /// Service name for registered services; the exporting class's
    /// interface for app services.
    pub service: String,
    /// AIDL interface descriptor.
    pub interface: String,
    /// Method name.
    pub method: String,
    /// The Java method body, when there is one (native services have
    /// none).
    pub java: Option<MethodId>,
    /// Exposure kind.
    pub kind: ServiceKind,
}

/// Extracts the complete IPC surface from a [`CodeModel`].
///
/// # Example
///
/// ```
/// use jgre_analysis::IpcMethodExtractor;
/// use jgre_corpus::{spec::AospSpec, CodeModel};
///
/// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
/// let methods = IpcMethodExtractor::new(&model).extract();
/// assert!(methods.len() > 2_000, "thousands of IPC methods");
/// ```
#[derive(Debug)]
pub struct IpcMethodExtractor<'m> {
    model: &'m CodeModel,
}

impl<'m> IpcMethodExtractor<'m> {
    /// Wraps a code model.
    pub fn new(model: &'m CodeModel) -> Self {
        Self { model }
    }

    /// Runs the extraction.
    pub fn extract(&self) -> Vec<IpcMethod> {
        let mut out = Vec::new();
        self.extract_registered_java_services(&mut out);
        self.extract_native_services(&mut out);
        self.extract_app_services(&mut out);
        out
    }

    /// Services registered from Java through `ServiceManager.addService` /
    /// `publishBinderService`: collect the (service name → class) map from
    /// the registration call sites, then take every method of the class
    /// that overrides its AIDL interface.
    fn extract_registered_java_services(&self, out: &mut Vec<IpcMethod>) {
        let mut registrations: BTreeMap<&str, &str> = BTreeMap::new();
        for m in &self.model.methods {
            if let Some((service, class)) = &m.registers_service {
                registrations.insert(service.as_str(), class.as_str());
            }
        }
        for (service, class_name) in registrations {
            let Some(class) = self.model.find_class(class_name) else {
                continue;
            };
            for &mid in &class.methods {
                let m = self.model.method(mid);
                if let Some(iface) = &m.overrides_aidl {
                    out.push(IpcMethod {
                        service: service.to_owned(),
                        interface: iface.clone(),
                        method: m.name.clone(),
                        java: Some(mid),
                        kind: ServiceKind::SystemService,
                    });
                }
            }
        }
    }

    /// The 5 native services: registration and IPC entry points both live
    /// in the native function table.
    fn extract_native_services(&self, out: &mut Vec<IpcMethod>) {
        for n in &self.model.native_functions {
            if let Some((service, method)) = &n.native_ipc {
                out.push(IpcMethod {
                    service: service.clone(),
                    interface: format!("native:{service}"),
                    method: method.clone(),
                    java: None,
                    kind: ServiceKind::NativeService,
                });
            }
        }
    }

    /// App services: classes returning an IBinder interface from
    /// `asBinder()` (directly, or inherited from an abstract service base
    /// class such as `TextToSpeechService`). For a subclass of a base
    /// class, the base's default IPC implementations are exported by the
    /// *app* (PicoTts inherits the vulnerable `setCallback`).
    fn extract_app_services(&self, out: &mut Vec<IpcMethod>) {
        for class in &self.model.classes {
            let kind = match &class.origin {
                Origin::Framework => continue,
                Origin::PrebuiltApp(pkg) => ServiceKind::PrebuiltApp(pkg.clone()),
                Origin::ThirdPartyApp(pkg) => ServiceKind::ThirdPartyApp(pkg.clone()),
            };
            // Resolve the exporting interface: own asBinder, or the
            // superclass chain's.
            let mut iface: Option<&str> = class.asbinder_interface.as_deref();
            let mut provider = class;
            let mut hops = 0;
            while iface.is_none() {
                match &provider.superclass {
                    Some(s) => {
                        let Some(sup) = self.model.find_class(s) else {
                            break;
                        };
                        provider = sup;
                        iface = provider.asbinder_interface.as_deref();
                        hops += 1;
                        if hops > 16 {
                            break; // defensive: malformed inheritance cycle
                        }
                    }
                    None => break,
                }
            }
            let Some(iface) = iface else { continue };
            // IPC methods are the provider's interface overrides
            // (subclasses inherit the defaults).
            for &mid in &provider.methods {
                let m = self.model.method(mid);
                if m.overrides_aidl.as_deref() == Some(iface) {
                    out.push(IpcMethod {
                        service: class.name.clone(),
                        interface: iface.to_owned(),
                        method: m.name.clone(),
                        java: Some(mid),
                        kind: kind.clone(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_corpus::spec::AospSpec;

    fn methods() -> Vec<IpcMethod> {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        IpcMethodExtractor::new(&model).extract()
    }

    #[test]
    fn covers_all_104_services() {
        let all = methods();
        let services: std::collections::BTreeSet<_> = all
            .iter()
            .filter(|m| {
                matches!(
                    m.kind,
                    ServiceKind::SystemService | ServiceKind::NativeService
                )
            })
            .map(|m| m.service.as_str())
            .collect();
        assert_eq!(services.len(), 104);
        let native: std::collections::BTreeSet<_> = all
            .iter()
            .filter(|m| m.kind == ServiceKind::NativeService)
            .map(|m| m.service.as_str())
            .collect();
        assert_eq!(native.len(), 5);
    }

    #[test]
    fn finds_the_named_vulnerable_interfaces() {
        let all = methods();
        for (svc, m) in [
            ("clipboard", "addPrimaryClipChangedListener"),
            ("wifi", "acquireWifiLock"),
            ("notification", "enqueueToast"),
            ("audio", "startWatchingRoutes"),
            ("telephony.registry", "listenForSubscriber"),
        ] {
            assert!(
                all.iter().any(|i| i.service == svc && i.method == m),
                "missing {svc}.{m}"
            );
        }
    }

    #[test]
    fn pico_inherits_base_ipc_methods() {
        let all = methods();
        let pico: Vec<_> = all
            .iter()
            .filter(|m| m.kind == ServiceKind::PrebuiltApp("com.svox.pico".into()))
            .collect();
        assert!(
            pico.iter().any(|m| m.method == "setCallback"),
            "PicoService must inherit ITextToSpeechService.setCallback, got {pico:?}"
        );
    }

    #[test]
    fn third_party_exports_found() {
        let all = methods();
        let tp: std::collections::BTreeSet<_> = all
            .iter()
            .filter_map(|m| match &m.kind {
                ServiceKind::ThirdPartyApp(pkg) => Some(pkg.clone()),
                _ => None,
            })
            .collect();
        assert!(tp.contains("com.google.android.tts"));
        assert!(tp.contains("com.supernet.vpn"));
        assert!(tp.contains("com.snapmovie.app"));
    }
}
