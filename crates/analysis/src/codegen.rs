//! Test-case / exploit code generation (§III-D).
//!
//! The paper generates its verification apps semi-automatically with
//! Javapoet, feeding analysed parameters into templates; Code-Snippet 2
//! shows the shape of the result. This module renders the equivalent Java
//! source for any risky interface: a direct-Binder loop with the right
//! service name, method, arguments (callback binder, spoofed package
//! name), and manifest permissions — exactly what an analyst would build
//! an APK from.

use jgre_corpus::spec::{AospSpec, Flaw, Permission, Protection};

use crate::{RiskyInterface, ServiceKind};

/// A generated verification app: Java source plus the manifest
/// permissions it must declare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedTestCase {
    /// The `service.method` under test.
    pub target: String,
    /// Manifest `<uses-permission>` entries.
    pub permissions: Vec<&'static str>,
    /// The Java source of the attack loop.
    pub java_source: String,
}

/// Renders the Code-Snippet-2-style test case for one risky interface.
///
/// The ground-truth spec supplies the protection detail the analyst reads
/// from the service's source (whether the package-name spoof is needed).
///
/// # Example
///
/// ```
/// use jgre_analysis::{generate_test_case, IpcMethodExtractor, JgrEntryExtractor,
///     VulnerableIpcDetector};
/// use jgre_corpus::{spec::AospSpec, CodeModel};
///
/// let spec = AospSpec::android_6_0_1();
/// let model = CodeModel::synthesize(&spec);
/// let ipc = IpcMethodExtractor::new(&model).extract();
/// let entries = JgrEntryExtractor::new(&model).extract();
/// let out = VulnerableIpcDetector::new(&model, &entries).detect(&ipc);
/// let wifi = out.risky.iter()
///     .find(|r| r.ipc.service == "wifi" && r.ipc.method == "acquireWifiLock")
///     .unwrap();
/// let case = generate_test_case(wifi, &spec);
/// assert!(case.java_source.contains("ServiceManager.getService(\"wifi\")"));
/// assert!(case.permissions.contains(&"android.permission.WAKE_LOCK"));
/// ```
pub fn generate_test_case(risky: &RiskyInterface, spec: &AospSpec) -> GeneratedTestCase {
    let service = &risky.ipc.service;
    let method = &risky.ipc.method;
    let iface = &risky.ipc.interface;
    let (permissions, spoof) = lookup_spec_facts(risky, spec);

    let package_arg = if spoof {
        // Code-Snippet 3's bypass: claim to be the "android" package.
        "\"android\" /* spoofed: bypasses the per-package cap */".to_owned()
    } else {
        "getPackageName()".to_owned()
    };
    let callback_arg = if risky.via_binder_params {
        ", new Binder()"
    } else {
        ""
    };
    let java_source = format!(
        "\
// Auto-generated JGRE verification case for {service}.{method}
// (cf. the paper's Code-Snippet 2; built like its Javapoet output).
{iface} service = {iface}.Stub.asInterface(
        ServiceManager.getService(\"{service}\"));
for (int i = 0; i < 60000; i++) {{
    service.{method}({package_arg}{callback_arg});
}}
"
    );
    GeneratedTestCase {
        target: format!("{service}.{method}"),
        permissions: permissions.iter().map(|p| p.manifest_name()).collect(),
        java_source,
    }
}

fn lookup_spec_facts(risky: &RiskyInterface, spec: &AospSpec) -> (Vec<Permission>, bool) {
    let method_spec = match &risky.ipc.kind {
        ServiceKind::SystemService | ServiceKind::NativeService => spec
            .service(&risky.ipc.service)
            .and_then(|s| s.method(&risky.ipc.method)),
        ServiceKind::PrebuiltApp(pkg) => spec
            .prebuilt_apps
            .iter()
            .find(|a| &a.package == pkg)
            .and_then(|a| {
                a.services
                    .iter()
                    .find(|s| s.interface == risky.ipc.interface)
            })
            .and_then(|s| s.method(&risky.ipc.method)),
        ServiceKind::ThirdPartyApp(_) => None,
    };
    match method_spec {
        Some(m) => (
            m.permission.into_iter().collect(),
            matches!(
                m.protection,
                Protection::PerProcessLimit {
                    flaw: Some(Flaw::SystemPackageSpoof),
                    ..
                }
            ),
        ),
        None => (Vec::new(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IpcMethodExtractor, JgrEntryExtractor, VulnerableIpcDetector};
    use jgre_corpus::CodeModel;

    fn risky_set() -> (AospSpec, Vec<RiskyInterface>) {
        let spec = AospSpec::android_6_0_1();
        let model = CodeModel::synthesize(&spec);
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        let out = VulnerableIpcDetector::new(&model, &entries).detect(&ipc);
        (spec, out.risky)
    }

    #[test]
    fn toast_case_uses_the_spoof() {
        let (spec, risky) = risky_set();
        let toast = risky
            .iter()
            .find(|r| r.ipc.method == "enqueueToast")
            .expect("toast is risky");
        let case = generate_test_case(toast, &spec);
        assert!(
            case.java_source.contains("\"android\""),
            "{}",
            case.java_source
        );
        assert!(case
            .java_source
            .contains("INotificationManager.Stub.asInterface"));
        assert!(case.permissions.is_empty(), "zero-permission exploit");
    }

    #[test]
    fn telephony_case_declares_dangerous_permission() {
        let (spec, risky) = risky_set();
        let listen = risky
            .iter()
            .find(|r| {
                r.ipc.service == "telephony.registry" && r.ipc.method == "listenForSubscriber"
            })
            .expect("listenForSubscriber is risky");
        let case = generate_test_case(listen, &spec);
        assert_eq!(
            case.permissions,
            vec!["android.permission.READ_PHONE_STATE"]
        );
        assert!(
            case.java_source.contains("getPackageName()"),
            "no spoof needed"
        );
        assert!(
            case.java_source.contains("new Binder()"),
            "callback argument"
        );
    }

    #[test]
    fn every_risky_interface_generates_compilable_shape() {
        let (spec, risky) = risky_set();
        for r in &risky {
            let case = generate_test_case(r, &spec);
            assert!(case.java_source.contains("for (int i = 0; i < 60000; i++)"));
            assert!(case.java_source.contains(&r.ipc.method));
            assert!(!case.target.is_empty());
        }
    }
}
