//! Basic-block CFG IR: the lowering target for synthesized method bodies.
//!
//! The corpus's structured [`MethodBody`] AST (straight-line statements
//! plus `If` branches) is lowered into a conventional control-flow graph:
//! numbered [`BasicBlock`]s holding flat [`Stmt`] lists, each ended by a
//! [`Terminator`]. The dataflow solver in [`dataflow`](crate::dataflow)
//! iterates over this representation.

use jgre_corpus::body::{AllocSite, BodyStmt, FieldKind, MethodBody, Place, Var};
use jgre_corpus::MethodId;
use serde::{Deserialize, Serialize};

/// Index of a block in [`Cfg::blocks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// One flat IR statement (branches live in the [`Terminator`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// A JGR is created and bound to `dst`.
    AllocJgr {
        /// Register receiving the reference.
        dst: Var,
        /// Provenance of the allocation.
        site: AllocSite,
    },
    /// The reference held by `src` is deleted (or revoked by GC).
    ReleaseJgr {
        /// What is released.
        src: Place,
    },
    /// `src` escapes into a member field.
    StoreField {
        /// Register being stored.
        src: Var,
        /// Field name.
        field: String,
        /// Storage kind.
        kind: FieldKind,
    },
    /// `src` is stored into a local — no escape.
    StoreLocal {
        /// Register being stored.
        src: Var,
    },
    /// Call to another Java method.
    Call {
        /// Callee.
        callee: MethodId,
        /// Whether the edge is a `Message`/`Handler` post.
        via_handler: bool,
    },
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch (the bound-check pattern).
    Branch {
        /// Under-limit successor.
        then_: BlockId,
        /// Over-limit successor.
        else_: BlockId,
    },
    /// Method exit.
    Return,
}

/// One basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Straight-line statements.
    pub stmts: Vec<Stmt>,
    /// Block terminator.
    pub term: Terminator,
}

/// A per-method control-flow graph. Block 0 is the entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfg {
    /// All blocks; [`Cfg::ENTRY`] is the function entry.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// The entry block.
    pub const ENTRY: BlockId = BlockId(0);

    /// Lowers a structured body into basic-block form.
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_analysis::ir::{Cfg, Terminator};
    /// use jgre_corpus::{spec::AospSpec, CodeModel};
    ///
    /// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    /// let id = model.find_method("java.lang.Thread", "nativeCreate").unwrap();
    /// let cfg = Cfg::lower(&model.method_body(id));
    /// assert_eq!(cfg.blocks.len(), 1);
    /// assert_eq!(cfg.blocks[0].term, Terminator::Return);
    /// ```
    pub fn lower(body: &MethodBody) -> Cfg {
        let mut lowerer = Lowerer { blocks: Vec::new() };
        let entry = lowerer.new_block();
        if let Some(open) = lowerer.lower_seq(&body.stmts, entry) {
            lowerer.blocks[open.0 as usize].1 = Some(Terminator::Return);
        }
        Cfg {
            blocks: lowerer
                .blocks
                .into_iter()
                .map(|(stmts, term)| BasicBlock {
                    stmts,
                    term: term.unwrap_or(Terminator::Return),
                })
                .collect(),
        }
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match self.blocks[b.0 as usize].term {
            Terminator::Goto(t) => vec![t],
            Terminator::Branch { then_, else_ } => vec![then_, else_],
            Terminator::Return => Vec::new(),
        }
    }

    /// Blocks in reverse postorder from the entry — the iteration order
    /// that lets a forward worklist converge in few passes.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut state = vec![0u8; self.blocks.len()]; // 0 new, 1 open, 2 done
        let mut postorder = Vec::with_capacity(self.blocks.len());
        let mut stack = vec![Self::ENTRY];
        while let Some(&b) = stack.last() {
            match state[b.0 as usize] {
                0 => {
                    state[b.0 as usize] = 1;
                    for succ in self.successors(b) {
                        if state[succ.0 as usize] == 0 {
                            stack.push(succ);
                        }
                    }
                }
                1 => {
                    state[b.0 as usize] = 2;
                    postorder.push(b);
                    stack.pop();
                }
                _ => {
                    stack.pop();
                }
            }
        }
        postorder.reverse();
        postorder
    }
}

struct Lowerer {
    blocks: Vec<(Vec<Stmt>, Option<Terminator>)>,
}

impl Lowerer {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Lowers a statement sequence starting in `cur`; returns the block
    /// left open at the end, or `None` when the sequence returned.
    fn lower_seq(&mut self, stmts: &[BodyStmt], mut cur: BlockId) -> Option<BlockId> {
        for stmt in stmts {
            match stmt {
                BodyStmt::AllocJgr { dst, site } => self.push(
                    cur,
                    Stmt::AllocJgr {
                        dst: *dst,
                        site: *site,
                    },
                ),
                BodyStmt::ReleaseJgr { src } => {
                    self.push(cur, Stmt::ReleaseJgr { src: src.clone() });
                }
                BodyStmt::StoreField { src, field, kind } => self.push(
                    cur,
                    Stmt::StoreField {
                        src: *src,
                        field: field.clone(),
                        kind: kind.clone(),
                    },
                ),
                BodyStmt::StoreLocal { src } => self.push(cur, Stmt::StoreLocal { src: *src }),
                BodyStmt::Call {
                    callee,
                    via_handler,
                } => self.push(
                    cur,
                    Stmt::Call {
                        callee: *callee,
                        via_handler: *via_handler,
                    },
                ),
                BodyStmt::If {
                    then_branch,
                    else_branch,
                } => {
                    let then_ = self.new_block();
                    let else_ = self.new_block();
                    self.blocks[cur.0 as usize].1 = Some(Terminator::Branch { then_, else_ });
                    let t_end = self.lower_seq(then_branch, then_);
                    let e_end = self.lower_seq(else_branch, else_);
                    match (t_end, e_end) {
                        (None, None) => return None,
                        (t, e) => {
                            let join = self.new_block();
                            for open in [t, e].into_iter().flatten() {
                                self.blocks[open.0 as usize].1 = Some(Terminator::Goto(join));
                            }
                            cur = join;
                        }
                    }
                }
                BodyStmt::Return => {
                    self.blocks[cur.0 as usize].1 = Some(Terminator::Return);
                    return None;
                }
            }
        }
        Some(cur)
    }

    fn push(&mut self, block: BlockId, stmt: Stmt) {
        self.blocks[block.0 as usize].0.push(stmt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_corpus::{spec::AospSpec, CodeModel};

    #[test]
    fn branch_lowering_produces_diamond() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let display = model
            .find_method("com.android.server.DisplayService", "registerCallback")
            .unwrap();
        let cfg = Cfg::lower(&model.method_body(display));
        // entry + then + else + join = 4 blocks.
        assert_eq!(cfg.blocks.len(), 4);
        assert!(matches!(
            cfg.blocks[Cfg::ENTRY.0 as usize].term,
            Terminator::Branch { .. }
        ));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], Cfg::ENTRY);
        assert_eq!(rpo.len(), 4, "all blocks reachable");
    }

    #[test]
    fn every_corpus_body_lowers_and_terminates() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        for def in &model.methods {
            let cfg = Cfg::lower(&model.method_body(def.id));
            assert!(!cfg.blocks.is_empty());
            assert!(
                cfg.blocks
                    .iter()
                    .any(|b| matches!(b.term, Terminator::Return)),
                "{}.{} has no return block",
                def.class,
                def.name
            );
            // The RPO must visit every reachable block exactly once.
            let rpo = cfg.reverse_postorder();
            let unique: std::collections::BTreeSet<_> = rpo.iter().collect();
            assert_eq!(unique.len(), rpo.len());
        }
    }
}
