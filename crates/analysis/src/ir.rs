//! Basic-block CFG IR: the lowering target for synthesized method bodies.
//!
//! The corpus's structured [`MethodBody`] AST (straight-line statements
//! plus `If` branches) is lowered into a conventional control-flow graph:
//! numbered [`BasicBlock`]s holding flat [`Stmt`] lists, each ended by a
//! [`Terminator`]. The dataflow solver in [`dataflow`](crate::dataflow)
//! iterates over this representation.

use jgre_corpus::body::{AllocSite, BodyStmt, BranchKind, FieldKind, MethodBody, Place, Var};
use jgre_corpus::{CodeModel, MethodDef, MethodId};
use serde::{Deserialize, Serialize};

/// A stable 64-bit content hash of one method's analysis-relevant facts.
///
/// Fingerprints are the cache keys of the incremental summary engine:
/// they must be identical across processes, platforms, and map iteration
/// orders, so they are computed with an explicitly specified chunked
/// mixer ([`StableHasher`]) rather than `std::hash` (whose output is not
/// guaranteed stable between runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

/// Deterministic 64-bit hasher: each absorbed word is xored into the
/// state and stirred with one multiply + rotate (the absorption map is
/// invertible, so distinct prefixes never merge); [`finish`] runs the
/// splitmix64 finalizer to diffuse the last words. One multiply per
/// *eight* bytes keeps the warm cache path fast — the whole-corpus
/// fingerprint and the on-disk checksums hash megabytes, where a
/// byte-serial walk (FNV et al.) would dominate the runtime.
///
/// [`finish`]: StableHasher::finish
///
/// Every multi-byte value is folded in little-endian order and every
/// variable-length field carries its length, so distinct fact sequences
/// cannot collide by concatenation ambiguity.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        // Seed at the FNV-1a offset basis (any fixed odd constant works).
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl StableHasher {
    /// Fresh hasher at the fixed seed.
    pub fn new() -> Self {
        Self::default()
    }

    fn absorb(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(23);
    }

    /// Fold raw bytes, eight at a time, closed by the byte length (so a
    /// trailing zero byte and a missing one hash differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.absorb(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.absorb(u64::from_le_bytes(tail));
        }
        self.absorb(bytes.len() as u64);
    }

    /// Fold one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.absorb(u64::from(v));
    }

    /// Fold a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.absorb(u64::from(v));
    }

    /// Fold a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.absorb(v);
    }

    /// Fold a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated hash, diffused through the splitmix64 finalizer
    /// (per-absorb stirring is deliberately light, so the raw state's
    /// low bits would be biased toward the last absorbed words).
    pub fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Hashes the facts that determine one method's synthesized body and
/// call edges: class + name (the JNI-wrapper special cases key on them),
/// binder-parameter usages, direct and Handler call edges (callees by
/// *name*, so renumbering [`MethodId`]s does not shift fingerprints),
/// and whether the method is a lifted JGR entry point.
///
/// Bodies are derived on demand from exactly these facts
/// (`jgre_corpus::body`), so two methods with equal fact fingerprints
/// lower to identical CFG IR — [`Cfg::fingerprint`] asserts that
/// correspondence in the test suite.
pub fn method_fact_fingerprint(model: &CodeModel, def: &MethodDef, jgr_entry: bool) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_u64(0x4a47_5245_4d46_5031); // "JGREMFP1": fact-recipe tag
    h.write_str(&def.class);
    h.write_str(&def.name);
    h.write_u8(u8::from(jgr_entry));
    h.write_u32(def.binder_params.len() as u32);
    for usage in &def.binder_params {
        use jgre_corpus::ParamUsage;
        h.write_u8(match usage {
            ParamUsage::StoredInCollection => 0,
            ParamUsage::StoredInCollectionBounded => 1,
            ParamUsage::LocalOnly => 2,
            ParamUsage::ReadOnlyMapKey => 3,
            ParamUsage::AssignedToMemberField => 4,
            ParamUsage::ReleaseSkippedOnError => 5,
            ParamUsage::PermissionGatedRelease => 6,
            ParamUsage::NullCheckGatedStore => 7,
        });
    }
    for (edges, tag) in [(&def.calls, 0u8), (&def.handler_posts, 1u8)] {
        h.write_u32(edges.len() as u32);
        for callee in edges {
            let callee = model.method(*callee);
            h.write_str(&callee.class);
            h.write_str(&callee.name);
            h.write_u8(tag);
        }
    }
    Fingerprint(h.finish())
}

/// Batch form of [`method_fact_fingerprint`] for the whole corpus;
/// `is_jgr_entry[i]` flags method `i` as a lifted JGR entry point.
pub fn method_fact_fingerprints(model: &CodeModel, is_jgr_entry: &[bool]) -> Vec<u64> {
    model
        .methods
        .iter()
        .map(|def| {
            let jgr = is_jgr_entry
                .get(def.id.0 as usize)
                .copied()
                .unwrap_or(false);
            method_fact_fingerprint(model, def, jgr).0
        })
        .collect()
}

/// Combines all per-method fact fingerprints (in [`MethodId`] order) into
/// one corpus-level fingerprint — the key of the whole-corpus fast path
/// in the summary cache.
pub fn corpus_fingerprint(fingerprints: &[u64]) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_u64(0x4a47_5245_4350_5331); // "JGRECPS1": corpus-recipe tag
    h.write_u32(fingerprints.len() as u32);
    for fp in fingerprints {
        h.write_u64(*fp);
    }
    Fingerprint(h.finish())
}

/// Index of a block in [`Cfg::blocks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// One flat IR statement (branches live in the [`Terminator`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// A JGR is created and bound to `dst`.
    AllocJgr {
        /// Register receiving the reference.
        dst: Var,
        /// Provenance of the allocation.
        site: AllocSite,
    },
    /// The reference held by `src` is deleted (or revoked by GC).
    ReleaseJgr {
        /// What is released.
        src: Place,
    },
    /// `src` escapes into a member field.
    StoreField {
        /// Register being stored.
        src: Var,
        /// Field name.
        field: String,
        /// Storage kind.
        kind: FieldKind,
    },
    /// `src` is stored into a local — no escape.
    StoreLocal {
        /// Register being stored.
        src: Var,
    },
    /// Call to another Java method.
    Call {
        /// Callee.
        callee: MethodId,
        /// Whether the edge is a `Message`/`Handler` post.
        via_handler: bool,
    },
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch. `kind` is the predicate label lowered from the
    /// body's [`BranchKind`]: edge transfers in the leak analysis turn it
    /// into per-branch predicates (bound/permission/null/error).
    Branch {
        /// What the condition tests.
        kind: BranchKind,
        /// Check-passed successor.
        then_: BlockId,
        /// Check-failed successor.
        else_: BlockId,
    },
    /// Method exit.
    Return,
}

/// One basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Straight-line statements.
    pub stmts: Vec<Stmt>,
    /// Block terminator.
    pub term: Terminator,
}

/// A per-method control-flow graph. Block 0 is the entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfg {
    /// All blocks; [`Cfg::ENTRY`] is the function entry.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// The entry block.
    pub const ENTRY: BlockId = BlockId(0);

    /// Lowers a structured body into basic-block form.
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_analysis::ir::{Cfg, Terminator};
    /// use jgre_corpus::{spec::AospSpec, CodeModel};
    ///
    /// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    /// let id = model.find_method("java.lang.Thread", "nativeCreate").unwrap();
    /// let cfg = Cfg::lower(&model.method_body(id));
    /// assert_eq!(cfg.blocks.len(), 1);
    /// assert_eq!(cfg.blocks[0].term, Terminator::Return);
    /// ```
    pub fn lower(body: &MethodBody) -> Cfg {
        let mut lowerer = Lowerer { blocks: Vec::new() };
        let entry = lowerer.new_block();
        if let Some(open) = lowerer.lower_seq(&body.stmts, entry) {
            lowerer.blocks[open.0 as usize].1 = Some(Terminator::Return);
        }
        Cfg {
            blocks: lowerer
                .blocks
                .into_iter()
                .map(|(stmts, term)| BasicBlock {
                    stmts,
                    term: term.unwrap_or(Terminator::Return),
                })
                .collect(),
        }
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match self.blocks[b.0 as usize].term {
            Terminator::Goto(t) => vec![t],
            Terminator::Branch { then_, else_, .. } => vec![then_, else_],
            Terminator::Return => Vec::new(),
        }
    }

    /// Stable content hash of the lowered IR, with call edges identified
    /// by callee *name* (resolved through `model`) so the hash survives
    /// [`MethodId`] renumbering.
    ///
    /// [`method_fact_fingerprint`] hashes the fact base this CFG is
    /// derived from; the two agree on "did anything change" because
    /// bodies are synthesized deterministically from facts. The cheaper
    /// fact hash is what the incremental engine uses per run; this one
    /// exists to cross-check that equivalence in tests.
    pub fn fingerprint(&self, model: &CodeModel) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_u64(0x4a47_5245_4346_4731); // "JGRECFG1": IR-recipe tag
        h.write_u32(self.blocks.len() as u32);
        for block in &self.blocks {
            h.write_u32(block.stmts.len() as u32);
            for stmt in &block.stmts {
                match stmt {
                    Stmt::AllocJgr { dst, site } => {
                        h.write_u8(0);
                        h.write_u32(*dst);
                        let (tag, idx) = match site {
                            AllocSite::BinderParam(i) => (0u8, *i as u32),
                            AllocSite::DeathRecipient => (1, 0),
                            AllocSite::ThreadPeer => (2, 0),
                            AllocSite::ParcelStrongBinder => (3, 0),
                        };
                        h.write_u8(tag);
                        h.write_u32(idx);
                    }
                    Stmt::ReleaseJgr { src } => {
                        h.write_u8(1);
                        match src {
                            Place::Var(v) => {
                                h.write_u8(0);
                                h.write_u32(*v);
                            }
                            Place::Field(f) => {
                                h.write_u8(1);
                                h.write_str(f);
                            }
                        }
                    }
                    Stmt::StoreField { src, field, kind } => {
                        h.write_u8(2);
                        h.write_u32(*src);
                        h.write_str(field);
                        h.write_u8(match kind {
                            FieldKind::Collection { bounded: false } => 0,
                            FieldKind::Collection { bounded: true } => 1,
                            FieldKind::MapKeyReadOnly => 2,
                            FieldKind::Scalar => 3,
                        });
                    }
                    Stmt::StoreLocal { src } => {
                        h.write_u8(3);
                        h.write_u32(*src);
                    }
                    Stmt::Call {
                        callee,
                        via_handler,
                    } => {
                        h.write_u8(4);
                        let callee = model.method(*callee);
                        h.write_str(&callee.class);
                        h.write_str(&callee.name);
                        h.write_u8(u8::from(*via_handler));
                    }
                }
            }
            match block.term {
                Terminator::Goto(t) => {
                    h.write_u8(0);
                    h.write_u32(t.0);
                }
                Terminator::Branch { kind, then_, else_ } => {
                    h.write_u8(1);
                    h.write_u8(match kind {
                        BranchKind::BoundCheck => 0,
                        BranchKind::PermissionCheck => 1,
                        BranchKind::NullCheck => 2,
                        BranchKind::ErrorCheck => 3,
                    });
                    h.write_u32(then_.0);
                    h.write_u32(else_.0);
                }
                Terminator::Return => h.write_u8(2),
            }
        }
        Fingerprint(h.finish())
    }

    /// Blocks in reverse postorder from the entry — the iteration order
    /// that lets a forward worklist converge in few passes.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut state = vec![0u8; self.blocks.len()]; // 0 new, 1 open, 2 done
        let mut postorder = Vec::with_capacity(self.blocks.len());
        let mut stack = vec![Self::ENTRY];
        while let Some(&b) = stack.last() {
            match state[b.0 as usize] {
                0 => {
                    state[b.0 as usize] = 1;
                    for succ in self.successors(b) {
                        if state[succ.0 as usize] == 0 {
                            stack.push(succ);
                        }
                    }
                }
                1 => {
                    state[b.0 as usize] = 2;
                    postorder.push(b);
                    stack.pop();
                }
                _ => {
                    stack.pop();
                }
            }
        }
        postorder.reverse();
        postorder
    }
}

struct Lowerer {
    blocks: Vec<(Vec<Stmt>, Option<Terminator>)>,
}

impl Lowerer {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Lowers a statement sequence starting in `cur`; returns the block
    /// left open at the end, or `None` when the sequence returned.
    fn lower_seq(&mut self, stmts: &[BodyStmt], mut cur: BlockId) -> Option<BlockId> {
        for stmt in stmts {
            match stmt {
                BodyStmt::AllocJgr { dst, site } => self.push(
                    cur,
                    Stmt::AllocJgr {
                        dst: *dst,
                        site: *site,
                    },
                ),
                BodyStmt::ReleaseJgr { src } => {
                    self.push(cur, Stmt::ReleaseJgr { src: src.clone() });
                }
                BodyStmt::StoreField { src, field, kind } => self.push(
                    cur,
                    Stmt::StoreField {
                        src: *src,
                        field: field.clone(),
                        kind: kind.clone(),
                    },
                ),
                BodyStmt::StoreLocal { src } => self.push(cur, Stmt::StoreLocal { src: *src }),
                BodyStmt::Call {
                    callee,
                    via_handler,
                } => self.push(
                    cur,
                    Stmt::Call {
                        callee: *callee,
                        via_handler: *via_handler,
                    },
                ),
                BodyStmt::If {
                    kind,
                    then_branch,
                    else_branch,
                } => {
                    let then_ = self.new_block();
                    let else_ = self.new_block();
                    self.blocks[cur.0 as usize].1 = Some(Terminator::Branch {
                        kind: *kind,
                        then_,
                        else_,
                    });
                    let t_end = self.lower_seq(then_branch, then_);
                    let e_end = self.lower_seq(else_branch, else_);
                    match (t_end, e_end) {
                        (None, None) => return None,
                        (t, e) => {
                            let join = self.new_block();
                            for open in [t, e].into_iter().flatten() {
                                self.blocks[open.0 as usize].1 = Some(Terminator::Goto(join));
                            }
                            cur = join;
                        }
                    }
                }
                BodyStmt::Return => {
                    self.blocks[cur.0 as usize].1 = Some(Terminator::Return);
                    return None;
                }
            }
        }
        Some(cur)
    }

    fn push(&mut self, block: BlockId, stmt: Stmt) {
        self.blocks[block.0 as usize].0.push(stmt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_corpus::{spec::AospSpec, CodeModel};

    #[test]
    fn branch_lowering_produces_diamond() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let display = model
            .find_method("com.android.server.DisplayService", "registerCallback")
            .unwrap();
        let cfg = Cfg::lower(&model.method_body(display));
        // entry + then + else + join = 4 blocks.
        assert_eq!(cfg.blocks.len(), 4);
        assert!(matches!(
            cfg.blocks[Cfg::ENTRY.0 as usize].term,
            Terminator::Branch { .. }
        ));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], Cfg::ENTRY);
        assert_eq!(rpo.len(), 4, "all blocks reachable");
    }

    #[test]
    fn fingerprints_are_deterministic_across_syntheses() {
        let a = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let b = CodeModel::synthesize(&AospSpec::android_6_0_1());
        for (da, db) in a.methods.iter().zip(&b.methods) {
            assert_eq!(
                method_fact_fingerprint(&a, da, false),
                method_fact_fingerprint(&b, db, false),
            );
            assert_eq!(
                Cfg::lower(&a.method_body(da.id)).fingerprint(&a),
                Cfg::lower(&b.method_body(db.id)).fingerprint(&b),
            );
        }
    }

    #[test]
    fn fact_fingerprint_tracks_cfg_fingerprint() {
        // Equal fact hashes must imply equal IR hashes (soundness of using
        // the cheap fact hash as the cache key), and the mutations the
        // differential suite applies must move both.
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let mut mutated = model.clone();
        let target = mutated
            .methods
            .iter()
            .position(|d| !d.binder_params.is_empty())
            .expect("some method has binder params");
        mutated.methods[target].binder_params[0] = jgre_corpus::ParamUsage::StoredInCollection;
        mutated.methods[target]
            .binder_params
            .push(jgre_corpus::ParamUsage::LocalOnly);
        for (old, new) in model.methods.iter().zip(&mutated.methods) {
            let facts_equal = method_fact_fingerprint(&model, old, false)
                == method_fact_fingerprint(&mutated, new, false);
            let ir_equal = Cfg::lower(&model.method_body(old.id)).fingerprint(&model)
                == Cfg::lower(&mutated.method_body(new.id)).fingerprint(&mutated);
            assert_eq!(
                facts_equal, ir_equal,
                "fact hash and IR hash disagree for {}.{}",
                old.class, old.name
            );
            assert_eq!(facts_equal, old.id.0 as usize != target);
        }
    }

    #[test]
    fn entry_set_membership_is_part_of_the_fingerprint() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let def = &model.methods[0];
        assert_ne!(
            method_fact_fingerprint(&model, def, false),
            method_fact_fingerprint(&model, def, true),
        );
    }

    #[test]
    fn batch_fingerprints_match_the_single_method_recipe() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let mut entries = vec![false; model.methods.len()];
        entries[7] = true;
        let batch = method_fact_fingerprints(&model, &entries);
        for def in &model.methods {
            assert_eq!(
                batch[def.id.0 as usize],
                method_fact_fingerprint(&model, def, def.id.0 == 7).0,
                "batch diverged for {}.{}",
                def.class,
                def.name
            );
        }
    }

    #[test]
    fn corpus_fingerprint_is_order_and_content_sensitive() {
        assert_ne!(corpus_fingerprint(&[1, 2]), corpus_fingerprint(&[2, 1]));
        assert_ne!(corpus_fingerprint(&[1, 2]), corpus_fingerprint(&[1, 2, 3]));
        assert_eq!(corpus_fingerprint(&[1, 2]), corpus_fingerprint(&[1, 2]));
    }

    #[test]
    fn error_path_shapes_lower_with_labeled_branches_and_two_exits() {
        let model = CodeModel::synthesize_with_error_paths(&AospSpec::android_6_0_1());
        let id = model
            .find_method(jgre_corpus::ERROR_PATH_CLASS, "registerOnError")
            .unwrap();
        let cfg = Cfg::lower(&model.method_body(id));
        assert!(cfg.blocks.iter().any(|b| matches!(
            b.term,
            Terminator::Branch {
                kind: BranchKind::ErrorCheck,
                ..
            }
        )));
        // The early error return is a second, distinct exit block.
        let exits = cfg
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Return))
            .count();
        assert_eq!(exits, 2, "early return creates a second exit");
    }

    #[test]
    fn branch_kind_is_part_of_the_cfg_fingerprint() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let body = MethodBody {
            stmts: vec![
                BodyStmt::If {
                    kind: BranchKind::NullCheck,
                    then_branch: vec![],
                    else_branch: vec![],
                },
                BodyStmt::Return,
            ],
        };
        let mut relabeled = body.clone();
        let BodyStmt::If { kind, .. } = &mut relabeled.stmts[0] else {
            unreachable!();
        };
        *kind = BranchKind::ErrorCheck;
        assert_ne!(
            Cfg::lower(&body).fingerprint(&model),
            Cfg::lower(&relabeled).fingerprint(&model),
        );
    }

    #[test]
    fn every_corpus_body_lowers_and_terminates() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        for def in &model.methods {
            let cfg = Cfg::lower(&model.method_body(def.id));
            assert!(!cfg.blocks.is_empty());
            assert!(
                cfg.blocks
                    .iter()
                    .any(|b| matches!(b.term, Terminator::Return)),
                "{}.{} has no return block",
                def.class,
                def.name
            );
            // The RPO must visit every reachable block exactly once.
            let rpo = cfg.reverse_postorder();
            let unique: std::collections::BTreeSet<_> = rpo.iter().collect();
            assert_eq!(unique.len(), rpo.len());
        }
    }
}
