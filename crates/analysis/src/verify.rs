//! Step 4: dynamic verification (§III-D).
//!
//! For each statically risky interface the verifier generates a test case
//! (the paper does this semi-automatically with Javapoet), fires a burst of
//! IPC requests at the simulated device, triggers the target's garbage
//! collector periodically (the DDMS step), and reads the JGR growth off the
//! runtime. An interface is **confirmed** when its JGR footprint grows
//! linearly with the request count across collections; it is **cleared**
//! when a server-side bound holds. When an honest test case is bounded,
//! the verifier retries with the `"android"` package spoof — which is how
//! `enqueueToast`'s flawed protection is caught while the display/input
//! per-process limits survive.

use jgre_corpus::spec::ProtectionLevel;
use jgre_corpus::CodeModel;
use jgre_framework::{CallOptions, CallStatus, FrameworkError, System};
use serde::{Deserialize, Serialize};

use crate::{RiskyInterface, ServiceKind};

/// Verifier tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifierConfig {
    /// IPC requests per interface (the paper uses 60 000; the default is
    /// smaller because the simulated device is deterministic).
    pub calls: usize,
    /// Trigger a GC on the host every this many calls.
    pub gc_every: usize,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        Self {
            calls: 400,
            gc_every: 100,
        }
    }
}

/// Outcome of dynamically testing one risky interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifiedInterface {
    /// The interface under test.
    pub risky: RiskyInterface,
    /// JGR entries that survived GC per completed request (×1000; a value
    /// near or above 1000 means every request leaks at least one entry).
    pub leak_per_call_milli: u64,
    /// Whether the honest test case was bounded but the package spoof
    /// bypassed the protection (the `enqueueToast` flaw).
    pub bypassed_protection: bool,
    /// Verdict.
    pub confirmed: bool,
}

/// Drives risky interfaces against a live [`System`].
#[derive(Debug)]
pub struct JgreVerifier {
    config: VerifierConfig,
}

impl JgreVerifier {
    /// Creates a verifier.
    pub fn new(config: VerifierConfig) -> Self {
        Self { config }
    }

    /// Tests every risky interface that exists on the device (system
    /// services and prebuilt-app services; third-party exports are not
    /// installed on the image and are reported static-only). The code
    /// model supplies the PScout permission map so each generated test
    /// case requests the right permissions in its manifest.
    pub fn verify(
        &self,
        system: &mut System,
        model: &CodeModel,
        risky: &[RiskyInterface],
    ) -> Vec<VerifiedInterface> {
        let mut out = Vec::new();
        for (i, r) in risky.iter().enumerate() {
            let Some(service_name) = resolve_service_name(system, r) else {
                continue;
            };
            let method = r.ipc.method.clone();
            out.push(self.verify_one(system, model, r, &service_name, &method, i));
        }
        out
    }

    fn verify_one(
        &self,
        system: &mut System,
        model: &CodeModel,
        risky: &RiskyInterface,
        service: &str,
        method: &str,
        index: usize,
    ) -> VerifiedInterface {
        // Honest attempt first.
        let honest = self.drive(system, model, risky, service, method, index, false);
        if honest.leaked_per_call_milli() >= 500 {
            return VerifiedInterface {
                risky: risky.clone(),
                leak_per_call_milli: honest.leaked_per_call_milli(),
                bypassed_protection: false,
                confirmed: true,
            };
        }
        // Bounded honestly: craft the spoofed test case.
        let spoofed = self.drive(system, model, risky, service, method, index + 10_000, true);
        let confirmed = spoofed.leaked_per_call_milli() >= 500;
        VerifiedInterface {
            risky: risky.clone(),
            leak_per_call_milli: spoofed
                .leaked_per_call_milli()
                .max(honest.leaked_per_call_milli()),
            bypassed_protection: confirmed,
            confirmed,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        system: &mut System,
        model: &CodeModel,
        risky: &RiskyInterface,
        service: &str,
        method: &str,
        index: usize,
        spoof: bool,
    ) -> DriveResult {
        // Fresh test app per attempt, granted whatever non-signature
        // permissions the method demands (the analyst's manifest).
        let app = system.install_app(format!("com.jgre.verifier{index}.{spoof}"), []);
        if let Some(mid) = risky.ipc.java {
            // The permission map came from static analysis; grant it.
            // (Signature-guarded methods were already sifted.)
            for p in &model.method(mid).permission_checks {
                if p.level() != ProtectionLevel::Signature {
                    system
                        .grant_permission(app, *p)
                        .expect("app was just installed");
                }
            }
        }
        let host = match system.service_info(service) {
            Some(info) => info.host,
            None => return DriveResult::empty(),
        };
        let jgr_before = system.jgr_count(host).unwrap_or(0);
        let mut completed = 0usize;
        for n in 0..self.config.calls {
            let options = CallOptions {
                spoof_system_package: spoof,
                ..CallOptions::default()
            };
            match system.call_service(app, service, method, options) {
                Ok(o) if o.status == CallStatus::Completed => completed += 1,
                Ok(_) => {}
                Err(FrameworkError::PermissionDenied { .. }) => return DriveResult::empty(),
                Err(_) => break,
            }
            if self.config.gc_every > 0 && (n + 1) % self.config.gc_every == 0 {
                system.gc_process(host);
            }
        }
        system.gc_process(host);
        let jgr_after = system.jgr_count(host).unwrap_or(0);
        // Tear the test app down so runs compose on a shared device;
        // killing it releases whatever it leaked.
        let leaked = jgr_after.saturating_sub(jgr_before);
        system.kill_app(app);
        DriveResult {
            attempts: self.config.calls,
            completed,
            leaked,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DriveResult {
    attempts: usize,
    completed: usize,
    leaked: usize,
}

impl DriveResult {
    fn empty() -> Self {
        Self {
            attempts: 0,
            completed: 0,
            leaked: 0,
        }
    }

    /// Surviving JGR entries per attempted request, ×1000. Completed
    /// requests are required: a method that always throws leaks nothing.
    fn leaked_per_call_milli(&self) -> u64 {
        if self.attempts == 0 || self.completed == 0 {
            return 0;
        }
        (self.leaked as u64 * 1_000) / self.attempts as u64
    }
}

/// Maps a risky interface to its registered service name on the device.
fn resolve_service_name(system: &System, risky: &RiskyInterface) -> Option<String> {
    match &risky.ipc.kind {
        ServiceKind::SystemService | ServiceKind::NativeService => Some(risky.ipc.service.clone()),
        ServiceKind::PrebuiltApp(pkg) => {
            let app = system
                .spec()
                .prebuilt_apps
                .iter()
                .find(|a| &a.package == pkg)?;
            app.services
                .iter()
                .find(|s| s.interface == risky.ipc.interface)
                .map(|s| s.name.clone())
        }
        ServiceKind::ThirdPartyApp(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IpcMethodExtractor, JgrEntryExtractor, VulnerableIpcDetector};
    use jgre_corpus::{spec::AospSpec, CodeModel};

    #[test]
    fn verifier_confirms_and_clears_correctly_on_a_sample() {
        let spec = AospSpec::android_6_0_1();
        let model = CodeModel::synthesize(&spec);
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        let out = VulnerableIpcDetector::new(&model, &entries).detect(&ipc);

        // Pick three interesting interfaces: plainly vulnerable, soundly
        // bounded, flawed-bounded.
        let pick = |svc: &str, m: &str| {
            out.risky
                .iter()
                .find(|r| r.ipc.service == svc && r.ipc.method == m)
                .unwrap_or_else(|| panic!("{svc}.{m} not risky"))
                .clone()
        };
        let sample = vec![
            pick("clipboard", "addPrimaryClipChangedListener"),
            pick("display", "registerCallback"),
            pick("notification", "enqueueToast"),
        ];
        let mut system = System::boot(3);
        let verifier = JgreVerifier::new(VerifierConfig {
            calls: 120,
            gc_every: 40,
        });
        let results = verifier.verify(&mut system, &model, &sample);
        assert_eq!(results.len(), 3);
        let by_name = |m: &str| results.iter().find(|v| v.risky.ipc.method == m).unwrap();
        assert!(by_name("addPrimaryClipChangedListener").confirmed);
        assert!(!by_name("registerCallback").confirmed, "sound bound holds");
        let toast = by_name("enqueueToast");
        assert!(toast.confirmed, "spoofed test case must bypass");
        assert!(toast.bypassed_protection);
    }
}
