//! Step 3: the vulnerable-IPC detector (§III-C) — call-graph search,
//! the `readStrongBinder` special case, the four sift rules, and the
//! permission filter.

use std::collections::BTreeSet;

use jgre_corpus::spec::ProtectionLevel;
use jgre_corpus::{CodeModel, MethodId, ParamUsage};
use serde::{Deserialize, Serialize};

use crate::{IpcMethod, JgrEntrySets};

/// Why a risky candidate was sifted out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SiftReason {
    /// Rule 1: only `Thread.nativeCreate` — the native side releases the
    /// reference immediately.
    ThreadCreateOnly,
    /// Rules 2–3: the binder parameter stays local / is only a read-only
    /// key, so GC revokes the reference after the call.
    TransientUsage,
    /// Rule 4: assigned to a single member field; repeat calls replace the
    /// previous reference.
    ReplacedMember,
    /// Permission filter: guarded by a signature-level permission no
    /// third-party app can hold.
    SignaturePermission,
    /// No JGR entry in the call graph and no binder parameters at all.
    NoJgrReach,
}

/// A risky interface that survived the sift.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RiskyInterface {
    /// The IPC method.
    pub ipc: IpcMethod,
    /// JGR entries reachable in its call graph.
    pub reached_entries: Vec<MethodId>,
    /// Whether the risk came (at least in part) from binder-typed
    /// parameters (the `readStrongBinder` special case of §III-C.2).
    pub via_binder_params: bool,
    /// Whether the reachability needed a Handler-indirect edge (the
    /// PScout pass).
    pub via_handler_edge: bool,
}

/// Full detector output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorOutput {
    /// Candidates that survived all sift rules and the permission filter.
    pub risky: Vec<RiskyInterface>,
    /// Sifted candidates with the rule that cleared them.
    pub sifted: Vec<(IpcMethod, SiftReason)>,
}

/// The detector.
///
/// # Example
///
/// ```
/// use jgre_analysis::{IpcMethodExtractor, JgrEntryExtractor, VulnerableIpcDetector};
/// use jgre_corpus::{spec::AospSpec, CodeModel};
///
/// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
/// let ipc = IpcMethodExtractor::new(&model).extract();
/// let entries = JgrEntryExtractor::new(&model).extract();
/// let output = VulnerableIpcDetector::new(&model, &entries).detect(&ipc);
/// assert!(!output.risky.is_empty());
/// ```
#[derive(Debug)]
pub struct VulnerableIpcDetector<'m> {
    model: &'m CodeModel,
    entries: &'m JgrEntrySets,
}

impl<'m> VulnerableIpcDetector<'m> {
    /// Wraps the model and the step-2 output.
    pub fn new(model: &'m CodeModel, entries: &'m JgrEntrySets) -> Self {
        Self { model, entries }
    }

    /// Classifies every IPC method.
    pub fn detect(&self, ipc_methods: &[IpcMethod]) -> DetectorOutput {
        let mut risky = Vec::new();
        let mut sifted = Vec::new();
        for ipc in ipc_methods {
            match self.classify(ipc) {
                Classification::Risky(r) => risky.push(r),
                Classification::Sifted(reason) => sifted.push((ipc.clone(), reason)),
            }
        }
        DetectorOutput { risky, sifted }
    }

    fn classify(&self, ipc: &IpcMethod) -> Classification {
        let Some(root) = ipc.java else {
            // Native-service IPC entry points: their bodies live in the
            // native world; none of the exploitable JNI paths originate
            // there (the paper finds all 54 in Java services).
            return Classification::Sifted(SiftReason::NoJgrReach);
        };

        // Build the per-method call graph: direct + Handler-indirect.
        let (reached, via_handler) = self.reachable_from(root);
        let reached_entries: Vec<MethodId> = reached
            .iter()
            .copied()
            .filter(|m| self.entries.java_entries.contains(m))
            .collect();
        let def = self.model.method(root);

        // Permission filter first (PScout map): a signature-guarded method
        // is unreachable for third-party apps regardless of its body.
        if def
            .permission_checks
            .iter()
            .any(|p| p.level() == ProtectionLevel::Signature)
        {
            return Classification::Sifted(SiftReason::SignaturePermission);
        }

        let has_binder_params = !def.binder_params.is_empty();
        if reached_entries.is_empty() && !has_binder_params {
            return Classification::Sifted(SiftReason::NoJgrReach);
        }

        // Sift rule 1: only Thread.nativeCreate.
        let only_thread_create = !reached_entries.is_empty()
            && reached_entries
                .iter()
                .all(|m| Some(*m) == self.entries.thread_native_create);
        if only_thread_create && !has_binder_params {
            return Classification::Sifted(SiftReason::ThreadCreateOnly);
        }

        // The binder-parameter special case plus sift rules 2-4: a method
        // whose only JGR exposure is its parameters is judged by how the
        // parameters are used.
        let non_thread_entries: Vec<MethodId> = reached_entries
            .iter()
            .copied()
            .filter(|m| Some(*m) != self.entries.thread_native_create)
            .collect();
        if non_thread_entries.is_empty() && has_binder_params {
            let transient = def
                .binder_params
                .iter()
                .all(|u| matches!(u, ParamUsage::LocalOnly | ParamUsage::ReadOnlyMapKey));
            if transient {
                return Classification::Sifted(SiftReason::TransientUsage);
            }
            let replaced = def
                .binder_params
                .iter()
                .all(|u| matches!(u, ParamUsage::AssignedToMemberField | ParamUsage::LocalOnly));
            if replaced {
                return Classification::Sifted(SiftReason::ReplacedMember);
            }
        }

        Classification::Risky(RiskyInterface {
            ipc: ipc.clone(),
            reached_entries,
            via_binder_params: has_binder_params,
            via_handler_edge: via_handler,
        })
    }

    /// Transitive closure over direct calls and Handler posts; reports
    /// whether any Handler edge was needed to reach the closure.
    fn reachable_from(&self, root: MethodId) -> (BTreeSet<MethodId>, bool) {
        let mut seen = BTreeSet::new();
        let mut via_handler = false;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let def = self.model.method(id);
            stack.extend(def.calls.iter().copied());
            if !def.handler_posts.is_empty() {
                via_handler = true;
                stack.extend(def.handler_posts.iter().copied());
            }
        }
        seen.remove(&root);
        (seen, via_handler)
    }
}

enum Classification {
    Risky(RiskyInterface),
    Sifted(SiftReason),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IpcMethodExtractor, JgrEntryExtractor, ServiceKind};
    use jgre_corpus::spec::AospSpec;

    fn detect() -> DetectorOutput {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        VulnerableIpcDetector::new(&model, &entries).detect(&ipc)
    }

    #[test]
    fn risky_counts_match_static_expectations() {
        let out = detect();
        // System services: 54 truly vulnerable + 3 soundly-bounded
        // (dynamic verification clears those) = 57.
        let system_risky = out
            .risky
            .iter()
            .filter(|r| r.ipc.kind == ServiceKind::SystemService)
            .count();
        assert_eq!(system_risky, 57, "54 vulnerable + 3 bounded");
        // Prebuilt apps contribute exactly 3.
        let prebuilt: Vec<_> = out
            .risky
            .iter()
            .filter(|r| matches!(r.ipc.kind, ServiceKind::PrebuiltApp(_)))
            .collect();
        assert_eq!(prebuilt.len(), 3);
        // Third-party apps contribute exactly 3 (Table V).
        let third = out
            .risky
            .iter()
            .filter(|r| matches!(r.ipc.kind, ServiceKind::ThirdPartyApp(_)))
            .count();
        assert_eq!(third, 3);
    }

    #[test]
    fn sift_rules_fire() {
        let out = detect();
        let reasons: std::collections::BTreeSet<_> = out.sifted.iter().map(|(_, r)| *r).collect();
        assert!(reasons.contains(&SiftReason::ThreadCreateOnly), "rule 1");
        assert!(reasons.contains(&SiftReason::TransientUsage), "rules 2-3");
        assert!(reasons.contains(&SiftReason::ReplacedMember), "rule 4");
        assert!(reasons.contains(&SiftReason::SignaturePermission));
        // The two signature-guarded retainers are sifted by permission.
        let sig: Vec<_> = out
            .sifted
            .iter()
            .filter(|(_, r)| *r == SiftReason::SignaturePermission)
            .map(|(m, _)| format!("{}.{}", m.service, m.method))
            .collect();
        assert!(sig.contains(&"device_policy.addPolicyStatusListener".to_owned()));
        assert!(sig.contains(&"batterystats.registerStatsListener".to_owned()));
    }

    #[test]
    fn handler_indirection_is_exercised() {
        let out = detect();
        assert!(
            out.risky.iter().any(|r| r.via_handler_edge),
            "some retention chains must go through Handler posts"
        );
        assert!(
            out.risky.iter().any(|r| !r.via_handler_edge),
            "and some must not"
        );
    }

    #[test]
    fn named_vulnerables_survive() {
        let out = detect();
        for (svc, m) in [
            ("wifi", "acquireWifiLock"),
            ("notification", "enqueueToast"),
            ("display", "registerCallback"), // bounded: statically risky
            ("clipboard", "addPrimaryClipChangedListener"),
        ] {
            assert!(
                out.risky
                    .iter()
                    .any(|r| r.ipc.service == svc && r.ipc.method == m),
                "{svc}.{m} must be statically risky"
            );
        }
    }
}
