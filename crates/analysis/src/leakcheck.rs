//! The dataflow leak-check pass: tracks every JGR allocation site to its
//! release (or escape) along all paths, interprocedurally, and derives
//! the paper's four sift rules as verdicts instead of heuristics.
//!
//! Per activation, each reference lives in a small ordered lattice
//! (released < live < escaped-scalar < escaped-bounded <
//! escaped-unbounded); the forward solver joins path states at CFG
//! merges. Method summaries are computed bottom-up over the call graph's
//! SCC condensation (recursive cliques iterate to their own fixpoint),
//! so a caller sees the allocation fates of everything it can reach.
//!
//! The pass is *path-sensitive*: every tracked reference, callee edge,
//! and path carries a [`PredSet`] — a small must-predicate vector
//! (bound-checked, permission-checked, null-checked, error-path) picked
//! up from labeled branch edges. A check therefore clears or caps the
//! individual sites stored under it instead of muting the whole method,
//! and a release skipped by an early error return surfaces as its own
//! leak class ([`LeakVerdict::ErrorPathLeak`], SARIF rule `JGRE004`).
//!
//! [`DataflowDetector`] adapts the verdicts to the legacy
//! [`VulnerableIpcDetector`](crate::VulnerableIpcDetector) output shape;
//! the heuristic detector is kept as a cross-check oracle (see
//! [`DataflowOutput::cross_check`]).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;

use jgre_corpus::body::{AllocSite, BranchKind, FieldKind, Place, Var};
use jgre_corpus::spec::ProtectionLevel;
use jgre_corpus::{CodeModel, MethodId};
use serde::{Deserialize, Serialize};

use crate::cache;
use crate::dataflow::{
    condense_call_graph, run_wave, solve_forward, ForwardAnalysis, JoinSemiLattice,
};
use crate::ir::{
    corpus_fingerprint, method_fact_fingerprints, Cfg, StableHasher, Stmt, Terminator,
};
use crate::{DetectorOutput, IpcMethod, JgrEntrySets, RiskyInterface, SiftReason};

/// A small set of branch predicates, as *must*-information: a bit is set
/// when every path reaching the program point (or retaining the site)
/// passed that check. Joins at CFG merges intersect, so a predicate
/// survives only when it holds on all paths.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PredSet(u8);

impl PredSet {
    /// The empty set: unconditional.
    pub const NONE: PredSet = PredSet(0);
    /// The path passed a per-process bound admission — retention behind
    /// it is capped by the same bound.
    pub const BOUND_CHECKED: PredSet = PredSet(1);
    /// The path passed an `enforceCallingPermission`-style check.
    pub const PERMISSION_CHECKED: PredSet = PredSet(1 << 1);
    /// The path passed a null check on the binder argument.
    pub const NULL_CHECKED: PredSet = PredSet(1 << 2);
    /// The path is an error path: a failed validation or a denied
    /// permission check — where a skipped release becomes `JGRE004`.
    pub const ERROR_PATH: PredSet = PredSet(1 << 3);

    const ALL_BITS: u8 = 0b1111;

    /// Union with `other`.
    #[must_use]
    pub fn with(self, other: PredSet) -> PredSet {
        PredSet(self.0 | other.0)
    }

    /// Intersection with `other` — the join of must-information.
    #[must_use]
    pub fn meet(self, other: PredSet) -> PredSet {
        PredSet(self.0 & other.0)
    }

    /// Whether every predicate in `other` also holds in `self`.
    pub fn contains(self, other: PredSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no predicate holds.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bits, for the on-disk cache encoding.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds from raw bits; `None` when unknown bits are set — the
    /// typed rejection the cache decoder relies on for stale lattices.
    pub fn from_bits(bits: u8) -> Option<PredSet> {
        (bits & !Self::ALL_BITS == 0).then_some(PredSet(bits))
    }

    /// Human-readable predicate labels, for diagnostics.
    pub fn labels(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.contains(Self::BOUND_CHECKED) {
            out.push("bound-checked");
        }
        if self.contains(Self::PERMISSION_CHECKED) {
            out.push("permission-checked");
        }
        if self.contains(Self::NULL_CHECKED) {
            out.push("null-checked");
        }
        if self.contains(Self::ERROR_PATH) {
            out.push("error-path");
        }
        out
    }
}

/// Net effect of one allocation site on the process's JGR footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Retention {
    /// Released (or GC-revoked) on every path.
    Released,
    /// Escapes, but the footprint is bounded (scalar replacement or a
    /// bound-checked collection).
    Bounded,
    /// Retained without bound — grows on every call.
    Unbounded,
}

/// How a reference escaped, when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EscapeKind {
    /// Stored to a scalar member field after the previous value was
    /// released — net retention of one (the paper's rule 4).
    ScalarReplace,
    /// Stored into a collection behind a visible per-process bound check
    /// (Table III); statically still risky.
    BoundedCollection,
    /// Stored into an unbounded member collection.
    UnboundedCollection,
}

/// The fate of one allocation site, with provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSummary {
    /// Method whose body contains the allocation.
    pub method: MethodId,
    /// The allocation site.
    pub site: AllocSite,
    /// Net per-call retention.
    pub fate: Retention,
    /// Escape route, when the reference escaped.
    pub escape: Option<EscapeKind>,
    /// Whether the reference was (also) used as a read-only map key —
    /// relevant to the member-replacement proof (rule 4 excludes it).
    pub read_only_key: bool,
    /// Must-predicates guarding the retention: every path on which this
    /// site retains its reference passed these checks. `BOUND_CHECKED`
    /// proves the retention capped; `ERROR_PATH` means the reference
    /// only survives along an error path that skipped its release.
    pub preds: PredSet,
}

/// Bottom-up summary of one method: every allocation site reachable from
/// it (own body plus callees), with fates.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodSummary {
    /// Reachable allocation sites, deduplicated, sorted by provenance.
    pub sites: Vec<SiteSummary>,
    /// Whether any reachable call edge is a Handler post.
    pub saw_handler: bool,
}

impl MethodSummary {
    /// Worst per-call retention over all reachable sites.
    pub fn retention(&self) -> Option<Retention> {
        self.sites.iter().map(|s| s.fate).max()
    }
}

/// Size and work statistics of one whole-corpus analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Methods analysed (one CFG each).
    pub methods: usize,
    /// Total basic blocks across all CFGs *lowered this run* — cache
    /// hits skip lowering entirely, so a warm run reports fewer.
    pub cfg_blocks: usize,
    /// SCCs of the call graph.
    pub sccs: usize,
    /// Total block transfers executed by the fixpoint solver.
    pub solver_iterations: u64,
    /// SCC summaries served from the cache.
    pub cache_hits: u64,
    /// SCC summaries computed from scratch (every SCC, when no cache
    /// directory is configured).
    pub cache_misses: u64,
    /// Cache regions rejected as corrupt, stale-schema, or unmappable
    /// and recomputed.
    pub cache_invalidated: u64,
}

/// Knobs for one analysis run; the default is serial, uncached, and
/// path-sensitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Directory holding the persistent summary cache
    /// ([`cache::CACHE_FILE`] inside it). `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Worker threads for the per-wave SCC fan-out; `None` or `Some(1)`
    /// runs serial. Results are identical for every thread count.
    pub threads: Option<usize>,
    /// Derive predicate-aware verdicts: error-path leaks get their own
    /// class (`JGRE004`) and bound-checked sites count as proven. `false`
    /// reproduces the boolean-era derivation — summaries (and therefore
    /// the cache) are identical either way; only the verdict and
    /// diagnostic layers read the flag.
    pub path_sensitive: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            cache_dir: None,
            threads: None,
            path_sensitive: true,
        }
    }
}

impl AnalysisOptions {
    /// Options with a cache directory set.
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Self {
        Self {
            cache_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Sets the wave worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Turns off predicate-aware verdict derivation (the boolean-era
    /// behavior) — the baseline the subset property tests compare
    /// against.
    pub fn path_insensitive(mut self) -> Self {
        self.path_sensitive = false;
        self
    }
}

/// The dataflow verdict for one IPC method — the paper's sift rules
/// derived from reference fates instead of pattern-matched heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LeakVerdict {
    /// No JGR allocation is reachable at all.
    NoJgr,
    /// Every reachable allocation is the thread peer, released on all
    /// paths when the thread exits (rule 1).
    ThreadCreateRelease,
    /// Every binder argument is released on all paths — local use or
    /// read-only key, GC revokes after the call (rules 2-3).
    TransientParams,
    /// Binder arguments land in scalar member fields whose previous
    /// value is released first — net retention of one (rule 4).
    MemberReplacement,
    /// Retention is real but provably bounded by a per-process limit;
    /// statically risky, dynamic verification decides (Table III).
    BoundedRetention,
    /// Every unbounded site leaks only along an error path that skipped
    /// its release (early return / denied permission) — the
    /// conditional-release class, SARIF rule `JGRE004`.
    ErrorPathLeak,
    /// At least one allocation site is retained without bound.
    UnboundedLeak,
}

impl LeakVerdict {
    /// Whether the verdict keeps the interface in the risky set.
    pub fn is_risky(self) -> bool {
        matches!(
            self,
            LeakVerdict::BoundedRetention | LeakVerdict::ErrorPathLeak | LeakVerdict::UnboundedLeak
        )
    }

    /// The legacy sift reason this verdict corresponds to, for verdicts
    /// that clear the candidate.
    pub fn sift_reason(self) -> Option<SiftReason> {
        match self {
            LeakVerdict::NoJgr => Some(SiftReason::NoJgrReach),
            LeakVerdict::ThreadCreateRelease => Some(SiftReason::ThreadCreateOnly),
            LeakVerdict::TransientParams => Some(SiftReason::TransientUsage),
            LeakVerdict::MemberReplacement => Some(SiftReason::ReplacedMember),
            LeakVerdict::BoundedRetention
            | LeakVerdict::ErrorPathLeak
            | LeakVerdict::UnboundedLeak => None,
        }
    }
}

// ------------------------------------------------------------------
// Intraprocedural abstract state
// ------------------------------------------------------------------

/// Per-reference lattice value; join is max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum VarState {
    /// Released (or GC-revoked) on this path.
    Released,
    /// Allocated and still held by a register only.
    Live,
    /// Stored to a scalar field whose previous value was released.
    EscapedScalar,
    /// Stored into a bound-checked collection.
    EscapedBounded,
    /// Stored into an unbounded collection (or scalar without release).
    EscapedUnbounded,
}

/// Abstract state at one program point.
///
/// Predicates are tracked at three granularities, which is what fixes
/// the old over-wide boolean `guard`: `path` is the must-predicate set
/// of the current path, each var carries the predicates under which it
/// reached its current lattice value, and each callee edge carries the
/// predicates that guarded the call. Joining two paths intersects each
/// of those *independently*, so losing a predicate on one path no longer
/// strips it from sites and calls that were individually guarded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LeakState {
    /// Lattice value per register, with the must-predicates under which
    /// the register reached that value.
    vars: BTreeMap<Var, (VarState, PredSet)>,
    /// Fields whose previous value was released and not yet overwritten
    /// (must-information: intersected at joins).
    cleared: BTreeSet<String>,
    /// Registers used as read-only map keys.
    key_use: BTreeSet<Var>,
    /// Callees invoked on some path, with the must-predicates that
    /// guarded every call — a callee only reached under `BOUND_CHECKED`
    /// has its retention capped by that same bound.
    called: BTreeMap<MethodId, PredSet>,
    /// Must-predicates of the current path (intersected at joins).
    path: PredSet,
    /// Whether a Handler-post edge was taken.
    handler: bool,
}

impl JoinSemiLattice for LeakState {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (v, (s, p)) in &other.vars {
            match self.vars.get_mut(v) {
                None => {
                    self.vars.insert(*v, (*s, *p));
                    changed = true;
                }
                Some((cur, cp)) => {
                    if *cur < *s {
                        *cur = *s;
                        *cp = *p;
                        changed = true;
                    } else if *cur == *s {
                        let met = cp.meet(*p);
                        if met != *cp {
                            *cp = met;
                            changed = true;
                        }
                    }
                }
            }
        }
        let before = self.cleared.len();
        self.cleared.retain(|f| other.cleared.contains(f));
        changed |= self.cleared.len() != before;
        for k in &other.key_use {
            changed |= self.key_use.insert(*k);
        }
        for (c, p) in &other.called {
            match self.called.get_mut(c) {
                None => {
                    self.called.insert(*c, *p);
                    changed = true;
                }
                Some(cur) => {
                    let met = cur.meet(*p);
                    if met != *cur {
                        *cur = met;
                        changed = true;
                    }
                }
            }
        }
        let met = self.path.meet(other.path);
        if met != self.path {
            self.path = met;
            changed = true;
        }
        if other.handler && !self.handler {
            self.handler = true;
            changed = true;
        }
        changed
    }
}

struct LeakBodyAnalysis;

impl ForwardAnalysis for LeakBodyAnalysis {
    type State = LeakState;

    fn boundary(&self) -> LeakState {
        LeakState::default()
    }

    fn transfer(&self, stmt: &Stmt, state: &mut LeakState) {
        match stmt {
            Stmt::AllocJgr { dst, .. } => {
                state.vars.insert(*dst, (VarState::Live, state.path));
            }
            Stmt::ReleaseJgr { src: Place::Var(v) } => {
                state.vars.insert(*v, (VarState::Released, state.path));
            }
            Stmt::ReleaseJgr {
                src: Place::Field(f),
            } => {
                state.cleared.insert(f.clone());
            }
            Stmt::StoreField { src, field, kind } => {
                // Escalation stamps the *current* path predicates onto the
                // var when it climbs; re-reaching the same value only keeps
                // the predicates both occurrences agree on.
                let escalate = |state: &mut LeakState, v: Var, to: VarState| {
                    let path = state.path;
                    let entry = state.vars.entry(v).or_insert((VarState::Live, path));
                    if to > entry.0 {
                        *entry = (to, path);
                    } else if to == entry.0 {
                        entry.1 = entry.1.meet(path);
                    }
                };
                match kind {
                    FieldKind::Collection { bounded: false } => {
                        escalate(state, *src, VarState::EscapedUnbounded);
                    }
                    FieldKind::Collection { bounded: true } => {
                        escalate(state, *src, VarState::EscapedBounded);
                        // The path passed the bound admission: whatever
                        // runs after it on this path is capped too.
                        state.path = state.path.with(PredSet::BOUND_CHECKED);
                    }
                    FieldKind::MapKeyReadOnly => {
                        // A key lookup does not retain the reference.
                        state.key_use.insert(*src);
                    }
                    FieldKind::Scalar => {
                        // Bounded only when the previous value was
                        // provably released before this store.
                        let replaced = state.cleared.remove(field);
                        let to = if replaced {
                            VarState::EscapedScalar
                        } else {
                            VarState::EscapedUnbounded
                        };
                        escalate(state, *src, to);
                    }
                }
            }
            Stmt::StoreLocal { .. } => {}
            Stmt::Call {
                callee,
                via_handler,
            } => {
                let path = state.path;
                match state.called.get_mut(callee) {
                    None => {
                        state.called.insert(*callee, path);
                    }
                    Some(cur) => *cur = cur.meet(path),
                }
                state.handler |= *via_handler;
            }
        }
    }

    fn transfer_edge(&self, term: &Terminator, succ_index: usize, state: &mut LeakState) {
        let Terminator::Branch { kind, .. } = *term else {
            return;
        };
        // Successor 0 is the then-edge, successor 1 the else-edge (the
        // lowering order in `Cfg::lower`). Each labeled branch establishes
        // its predicate on exactly one side.
        let pred = match (kind, succ_index) {
            (BranchKind::BoundCheck, 0) => PredSet::BOUND_CHECKED,
            (BranchKind::PermissionCheck, 0) => PredSet::PERMISSION_CHECKED,
            (BranchKind::PermissionCheck, _) => PredSet::ERROR_PATH,
            (BranchKind::NullCheck, 0) => PredSet::NULL_CHECKED,
            (BranchKind::ErrorCheck, 1) => PredSet::ERROR_PATH,
            _ => PredSet::NONE,
        };
        state.path = state.path.with(pred);
    }
}

// ------------------------------------------------------------------
// Whole-corpus analysis
// ------------------------------------------------------------------

/// One method's solved intraprocedural result.
struct IntraResult {
    /// Join of the exit states of all return blocks.
    final_state: LeakState,
    /// Allocation sites in this body, by register.
    var_sites: BTreeMap<Var, AllocSite>,
}

/// Runs the leak-check pass over a whole code model.
#[derive(Debug)]
pub struct LeakChecker<'m> {
    model: &'m CodeModel,
    /// Step-2 entry sets; when present, entry-set membership is part of
    /// each method's fact fingerprint (the native side is not otherwise
    /// visible in Java facts).
    entries: Option<&'m JgrEntrySets>,
}

/// What one wave worker produced for one SCC.
struct SccOutcome {
    /// The SCC cache key (0 when caching is disabled).
    key: u64,
    /// Portable record bytes for the store pass (caching runs only).
    record: Option<Vec<u8>>,
    /// Final summaries of the SCC's members.
    members: Vec<(MethodId, MethodSummary)>,
    /// Served from the cache?
    hit: bool,
    /// Cache entries rejected while trying to serve this SCC.
    invalidated: u64,
    /// Basic blocks lowered (0 on a hit).
    cfg_blocks: usize,
    /// Solver block transfers (0 on a hit).
    iterations: u64,
}

/// The completed whole-corpus analysis: per-method summaries plus
/// solver statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakAnalysis {
    /// Bottom-up summary per method.
    pub summaries: BTreeMap<MethodId, MethodSummary>,
    /// Work statistics.
    pub stats: SolverStats,
}

impl<'m> LeakChecker<'m> {
    /// Wraps a code model.
    pub fn new(model: &'m CodeModel) -> Self {
        Self {
            model,
            entries: None,
        }
    }

    /// Folds the step-2 JGR entry sets into the fact fingerprints, so a
    /// native-side change that flips a method's entry membership also
    /// invalidates its cached summaries.
    pub fn with_entries(mut self, entries: &'m JgrEntrySets) -> Self {
        self.entries = Some(entries);
        self
    }

    /// Lowers every method, solves each CFG to a fixpoint, and folds
    /// callee summaries bottom-up over the SCC condensation.
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_analysis::leakcheck::{LeakChecker, LeakVerdict};
    /// use jgre_corpus::{spec::AospSpec, CodeModel};
    ///
    /// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    /// let analysis = LeakChecker::new(&model).analyze();
    /// let link = model.find_method("android.os.Binder", "linkToDeathNative").unwrap();
    /// assert_eq!(analysis.verdict_for(link), LeakVerdict::UnboundedLeak);
    /// ```
    pub fn analyze(&self) -> LeakAnalysis {
        self.analyze_with(&AnalysisOptions::default())
    }

    /// [`LeakChecker::analyze`] with caching and parallelism knobs.
    ///
    /// With a cache directory the run is incremental: an unchanged
    /// corpus is served whole from the Tier A table; after an edit, only
    /// the SCC-condensation cone above the changed methods is
    /// recomputed, everything below comes from Tier B records. Verdicts
    /// are structurally identical in every mode — hits and misses only
    /// show up in [`SolverStats`]. Cache writes are best-effort: an
    /// unwritable directory degrades to a cold run, never an error.
    pub fn analyze_with(&self, options: &AnalysisOptions) -> LeakAnalysis {
        let model = self.model;
        let n = model.methods.len();
        let threads = options.threads.unwrap_or(1);
        let mut stats = SolverStats {
            methods: n,
            ..SolverStats::default()
        };

        // Fact fingerprints are cheap (no body synthesis, no lowering):
        // the entire warm path hashes facts and decodes Tier A.
        let mut is_jgr_entry = vec![false; n];
        if let Some(entries) = self.entries {
            for id in &entries.java_entries {
                if let Some(slot) = is_jgr_entry.get_mut(id.0 as usize) {
                    *slot = true;
                }
            }
        }
        let fps = method_fact_fingerprints(model, &is_jgr_entry);
        let corpus_fp = corpus_fingerprint(&fps).0;

        let cache_path = options
            .cache_dir
            .as_ref()
            .map(|dir| dir.join(cache::CACHE_FILE));
        let loaded = match &cache_path {
            Some(path) => cache::load(path, corpus_fp, n),
            None => cache::LoadedCache::default(),
        };
        stats.cache_invalidated = loaded.invalidated;

        // Tier A fast path: the corpus is byte-identical to the cached
        // one, so every SCC's summaries are served without lowering a
        // single CFG or even condensing the call graph.
        if let Some(tier_a) = loaded.tier_a {
            stats.sccs = loaded.scc_count as usize;
            stats.cache_hits = u64::from(loaded.scc_count);
            if loaded.invalidated > 0 {
                // Tier A survived but some region was rejected (e.g. a
                // truncated Tier B tail): rewrite the file from the
                // surviving parts so the next run loads clean.
                if let Some(path) = &cache_path {
                    let encoded = cache::encode_tier_a(&tier_a);
                    let _ =
                        cache::store(path, corpus_fp, loaded.scc_count, &encoded, &loaded.tier_b);
                }
            }
            let summaries = tier_a
                .into_iter()
                .enumerate()
                .map(|(i, s)| (MethodId(i as u32), s))
                .collect();
            return LeakAnalysis { summaries, stats };
        }

        let caching = cache_path.is_some();
        let cond = condense_call_graph(model);
        stats.sccs = cond.sccs.len();
        let scc_index = cond.scc_index(n);
        let waves = cond.levels(model);
        let name_index: HashMap<(&str, &str), MethodId> = if loaded.tier_b.is_empty() {
            HashMap::new()
        } else {
            model
                .methods
                .iter()
                .map(|d| ((d.class.as_str(), d.name.as_str()), d.id))
                .collect()
        };

        let mut summaries: Vec<Option<MethodSummary>> = vec![None; n];
        // Summary fingerprints, computed once per method as its SCC
        // completes; `scc_key` reads its callees' entries instead of
        // re-encoding the callee summary for every call edge.
        let mut summary_fps: Vec<Option<u64>> = vec![None; n];
        let mut used_records: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for wave in &waves {
            let outcomes = run_wave(wave, threads, |i| {
                self.process_scc(
                    i,
                    &cond.sccs[i],
                    caching,
                    &fps,
                    &scc_index,
                    &summaries,
                    &summary_fps,
                    &loaded.tier_b,
                    &name_index,
                )
            });
            for (_, outcome) in outcomes {
                stats.cfg_blocks += outcome.cfg_blocks;
                stats.solver_iterations += outcome.iterations;
                stats.cache_hits += u64::from(outcome.hit);
                stats.cache_misses += u64::from(!outcome.hit);
                stats.cache_invalidated += outcome.invalidated;
                if let Some(record) = outcome.record {
                    used_records.insert(outcome.key, record);
                }
                for (m, s) in outcome.members {
                    if caching {
                        summary_fps[m.0 as usize] = Some(cache::summary_fingerprint(model, m, &s));
                    }
                    summaries[m.0 as usize] = Some(s);
                }
            }
        }

        let summaries: BTreeMap<MethodId, MethodSummary> = summaries
            .into_iter()
            .enumerate()
            .map(|(i, s)| (MethodId(i as u32), s.expect("every SCC processed")))
            .collect();

        // We only reach here when Tier A missed, so the file on disk is
        // absent or stale: rewrite it whole. Stale Tier B keys are
        // garbage-collected by keeping only the keys this run used.
        if let Some(path) = &cache_path {
            let ordered: Vec<MethodSummary> = model
                .methods
                .iter()
                .map(|def| summaries[&def.id].clone())
                .collect();
            let tier_a = cache::encode_tier_a(&ordered);
            let _ = cache::store(path, corpus_fp, stats.sccs as u32, &tier_a, &used_records);
        }
        LeakAnalysis { summaries, stats }
    }

    /// Serves one SCC from the cache or computes it: intra solve per
    /// member plus the SCC-local fixpoint over callee summaries.
    #[allow(clippy::too_many_arguments)]
    fn process_scc(
        &self,
        scc_idx: usize,
        scc: &[MethodId],
        caching: bool,
        fps: &[u64],
        scc_index: &[usize],
        global: &[Option<MethodSummary>],
        summary_fps: &[Option<u64>],
        tier_b: &BTreeMap<u64, Vec<u8>>,
        name_index: &HashMap<(&str, &str), MethodId>,
    ) -> SccOutcome {
        let model = self.model;
        let mut invalidated = 0u64;
        let key = if caching {
            self.scc_key(scc_idx, scc, fps, scc_index, summary_fps)
        } else {
            0
        };
        if caching {
            if let Some(bytes) = tier_b.get(&key) {
                match cache::remap_record(bytes, scc, name_index) {
                    Some(members) => {
                        return SccOutcome {
                            key,
                            record: Some(bytes.clone()),
                            members,
                            hit: true,
                            invalidated,
                            cfg_blocks: 0,
                            iterations: 0,
                        }
                    }
                    // A key collision or hand-crafted record that passed
                    // the checksum but does not map onto this SCC.
                    None => invalidated += 1,
                }
            }
        }

        let mut cfg_blocks = 0usize;
        let mut iterations = 0u64;
        let intras: Vec<IntraResult> = scc
            .iter()
            .map(|m| {
                let (intra, blocks, iters) = solve_intra(model, *m);
                cfg_blocks += blocks;
                iterations += iters;
                intra
            })
            .collect();
        // The SCC-local fixpoint: summaries only grow, so it terminates.
        let mut local: BTreeMap<MethodId, MethodSummary> =
            scc.iter().map(|m| (*m, MethodSummary::default())).collect();
        loop {
            let mut changed = false;
            for (i, m) in scc.iter().enumerate() {
                let folded = fold_summary(*m, &intras[i], &local, global);
                if local[m] != folded {
                    local.insert(*m, folded);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let members: Vec<(MethodId, MethodSummary)> = local.into_iter().collect();
        let record = caching.then(|| {
            let refs: Vec<(MethodId, &MethodSummary)> =
                members.iter().map(|(m, s)| (*m, s)).collect();
            cache::encode_record(model, &refs)
        });
        SccOutcome {
            key,
            record,
            members,
            hit: false,
            invalidated,
            cfg_blocks,
            iterations,
        }
    }

    /// The SCC cache key: schema version, the members' fact
    /// fingerprints, and the summary fingerprints of every external
    /// callee — both sorted numerically so the key survives `MethodId`
    /// renumbering and is independent of traversal order.
    fn scc_key(
        &self,
        scc_idx: usize,
        scc: &[MethodId],
        fps: &[u64],
        scc_index: &[usize],
        summary_fps: &[Option<u64>],
    ) -> u64 {
        let model = self.model;
        let mut member_fps: Vec<u64> = scc.iter().map(|m| fps[m.0 as usize]).collect();
        member_fps.sort_unstable();
        let mut callee_fps: Vec<u64> = Vec::new();
        for m in scc {
            let def = model.method(*m);
            for callee in def.calls.iter().chain(def.handler_posts.iter()) {
                if scc_index[callee.0 as usize] == scc_idx {
                    continue;
                }
                callee_fps.push(summary_fps[callee.0 as usize].expect("callee-first wave order"));
            }
        }
        callee_fps.sort_unstable();
        callee_fps.dedup();
        let mut h = StableHasher::new();
        h.write_u64(0x4a47_5245_534b_5931); // "JGRESKY1": SCC-key tag
        h.write_u32(cache::SCHEMA_VERSION);
        h.write_u32(member_fps.len() as u32);
        for fp in member_fps {
            h.write_u64(fp);
        }
        h.write_u32(callee_fps.len() as u32);
        for fp in callee_fps {
            h.write_u64(fp);
        }
        h.finish()
    }
}

/// Lowers and solves every method body intraprocedurally and returns the
/// total number of solver block transfers — a deterministic cost probe
/// for benchmarking the predicate lattice against simpler baselines on
/// equal terms (same lowering, same worklist, same corpus).
pub fn intra_solver_cost(model: &CodeModel) -> u64 {
    let mut iterations = 0u64;
    for def in &model.methods {
        let (_, _, iters) = solve_intra(model, def.id);
        iterations += iters;
    }
    iterations
}

/// Lowers and solves one method's body.
fn solve_intra(model: &CodeModel, id: MethodId) -> (IntraResult, usize, u64) {
    let cfg = Cfg::lower(&model.method_body(id));
    let blocks = cfg.blocks.len();
    let solution = solve_forward(&cfg, &LeakBodyAnalysis);
    let mut final_state: Option<LeakState> = None;
    for (i, block) in cfg.blocks.iter().enumerate() {
        if !matches!(block.term, Terminator::Return) {
            continue;
        }
        let Some(exit) = &solution.exit[i] else {
            continue;
        };
        let mut exit = exit.clone();
        // A var still Live at this return leaks *at this exit*: stamp the
        // exit path's predicates onto it so an early error return that
        // bypasses the release is distinguishable from the normal exit.
        // Escaped vars keep their store-time predicates — the exit path
        // may have acquired predicates after the store that never guarded
        // it.
        let exit_path = exit.path;
        for (st, preds) in exit.vars.values_mut() {
            if *st == VarState::Live {
                *preds = preds.with(exit_path);
            }
        }
        match &mut final_state {
            None => final_state = Some(exit),
            Some(acc) => {
                acc.join(&exit);
            }
        }
    }
    let mut var_sites = BTreeMap::new();
    for block in &cfg.blocks {
        for stmt in &block.stmts {
            if let Stmt::AllocJgr { dst, site } = stmt {
                var_sites.insert(*dst, *site);
            }
        }
    }
    (
        IntraResult {
            final_state: final_state.unwrap_or_default(),
            var_sites,
        },
        blocks,
        solution.iterations,
    )
}

/// Folds a method's intraprocedural result with its callees' summaries,
/// read from the SCC-local fixpoint map first, then the global table of
/// already-finished SCCs.
fn fold_summary(
    own: MethodId,
    intra: &IntraResult,
    local: &BTreeMap<MethodId, MethodSummary>,
    global: &[Option<MethodSummary>],
) -> MethodSummary {
    let mut sites: BTreeMap<(MethodId, AllocSite), SiteSummary> = BTreeMap::new();
    let mut merge = |s: SiteSummary| match sites.get_mut(&(s.method, s.site)) {
        None => {
            sites.insert((s.method, s.site), s);
        }
        Some(old) => {
            let key = old.read_only_key || s.read_only_key;
            if s.fate > old.fate {
                *old = s;
            } else if s.fate == old.fate {
                // Same worst fate reached along two routes: keep only the
                // predicates every route agrees on.
                old.preds = old.preds.meet(s.preds);
            }
            old.read_only_key = key;
        }
    };
    for (var, site) in &intra.var_sites {
        let (state, preds) = intra
            .final_state
            .vars
            .get(var)
            .copied()
            .unwrap_or((VarState::Live, PredSet::NONE));
        let (fate, escape) = match state {
            VarState::Released => (Retention::Released, None),
            // Still live at exit: the reference outlives the activation
            // (handed to the caller) — conservatively unbounded.
            VarState::Live => (Retention::Unbounded, None),
            VarState::EscapedScalar => (Retention::Bounded, Some(EscapeKind::ScalarReplace)),
            VarState::EscapedBounded => (Retention::Bounded, Some(EscapeKind::BoundedCollection)),
            VarState::EscapedUnbounded => {
                (Retention::Unbounded, Some(EscapeKind::UnboundedCollection))
            }
        };
        merge(SiteSummary {
            method: own,
            site: *site,
            fate,
            escape,
            read_only_key: intra.final_state.key_use.contains(var),
            preds,
        });
    }
    let mut saw_handler = intra.final_state.handler;
    for (callee, call_preds) in &intra.final_state.called {
        let Some(cs) = local
            .get(callee)
            .or_else(|| global[callee.0 as usize].as_ref())
        else {
            continue;
        };
        saw_handler |= cs.saw_handler;
        for s in &cs.sites {
            let mut s = s.clone();
            // The caller's call-site predicates guard everything the
            // callee does: a callee only ever reached through a bound
            // admission inherits the bound — its retention cannot exceed
            // the per-process limit.
            s.preds = s.preds.with(*call_preds);
            if s.preds.contains(PredSet::BOUND_CHECKED) && s.fate == Retention::Unbounded {
                s.fate = Retention::Bounded;
            }
            merge(s);
        }
    }
    MethodSummary {
        sites: sites.into_values().collect(),
        saw_handler,
    }
}

impl LeakAnalysis {
    /// The summary of one method.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not part of the analysed model.
    pub fn summary(&self, id: MethodId) -> &MethodSummary {
        &self.summaries[&id]
    }

    /// Derives the sift verdict for an IPC root from reference fates,
    /// reading the per-site predicates ([`LeakAnalysis::verdict_for`]
    /// with path sensitivity on).
    pub fn verdict_for(&self, root: MethodId) -> LeakVerdict {
        self.verdict_for_with(root, true)
    }

    /// [`LeakAnalysis::verdict_for`] with path sensitivity as a knob.
    ///
    /// Summaries always carry predicates; the knob only controls whether
    /// the verdict *reads* them. With `path_sensitive` off, every
    /// unbounded site is a plain [`LeakVerdict::UnboundedLeak`] — the
    /// pre-predicate behaviour, kept as the soundness baseline the
    /// path-sensitive findings must be a subset of.
    pub fn verdict_for_with(&self, root: MethodId, path_sensitive: bool) -> LeakVerdict {
        let Some(summary) = self.summaries.get(&root) else {
            return LeakVerdict::NoJgr;
        };
        let sites = &summary.sites;
        if sites.is_empty() {
            return LeakVerdict::NoJgr;
        }
        if sites.iter().any(|s| s.fate == Retention::Unbounded) {
            let unbounded = sites.iter().filter(|s| s.fate == Retention::Unbounded);
            if path_sensitive
                && unbounded
                    .clone()
                    .all(|s| s.preds.contains(PredSet::ERROR_PATH))
            {
                // Every unbounded site leaks only on an error return that
                // skipped the release: still a leak, but a distinct class
                // (JGRE004) — the normal path releases correctly.
                return LeakVerdict::ErrorPathLeak;
            }
            return LeakVerdict::UnboundedLeak;
        }
        if sites.iter().any(|s| {
            matches!(
                s.escape,
                Some(EscapeKind::BoundedCollection | EscapeKind::UnboundedCollection)
            )
        }) {
            // No unbounded fate remains, so every collection escape is
            // behind a bound admission: real but capped retention.
            return LeakVerdict::BoundedRetention;
        }
        // All fates are Released or scalar-bounded from here on.
        let non_thread: Vec<&SiteSummary> = sites
            .iter()
            .filter(|s| s.site != AllocSite::ThreadPeer)
            .collect();
        if non_thread.is_empty() {
            return LeakVerdict::ThreadCreateRelease;
        }
        if non_thread
            .iter()
            .all(|s| matches!(s.site, AllocSite::BinderParam(_)))
        {
            if non_thread.iter().all(|s| s.fate == Retention::Released) {
                return LeakVerdict::TransientParams;
            }
            // Rule 4 is only sound when every argument either replaces a
            // scalar member or stays local; a read-only-key use alongside
            // defeats the proof, matching the paper's rule application.
            if non_thread.iter().all(|s| {
                s.escape == Some(EscapeKind::ScalarReplace)
                    || (s.fate == Retention::Released && !s.read_only_key)
            }) {
                return LeakVerdict::MemberReplacement;
            }
        }
        LeakVerdict::UnboundedLeak
    }
}

// ------------------------------------------------------------------
// Detector front-end
// ------------------------------------------------------------------

/// One IPC method's dataflow verdict with provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictRow {
    /// The IPC method.
    pub ipc: IpcMethod,
    /// Derived verdict.
    pub verdict: LeakVerdict,
    /// Allocation sites backing the verdict.
    pub sites: Vec<SiteSummary>,
    /// Whether a signature-level permission gates the method (sifted by
    /// the permission filter regardless of the verdict).
    pub signature_gated: bool,
}

impl VerdictRow {
    /// Whether every retained site of a [`LeakVerdict::BoundedRetention`]
    /// verdict was *proven* bounded by a branch predicate — each
    /// retaining site sits behind a `BOUND_CHECKED` admission. Such rows
    /// are capped by construction, so a path-sensitive report can drop
    /// them from the predicted-leak set instead of counting them as
    /// findings.
    pub fn proven_bounded(&self) -> bool {
        if self.verdict != LeakVerdict::BoundedRetention {
            return false;
        }
        let retained: Vec<&SiteSummary> = self
            .sites
            .iter()
            .filter(|s| s.fate != Retention::Released)
            .collect();
        !retained.is_empty()
            && retained
                .iter()
                .all(|s| s.preds.contains(PredSet::BOUND_CHECKED))
    }
}

/// Output of the dataflow-backed detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowOutput {
    /// Legacy-shaped risky/sifted split, for the pipeline.
    pub detector: DetectorOutput,
    /// Per-IPC-method verdict rows (diagnostics input).
    pub verdicts: Vec<VerdictRow>,
    /// Solver statistics.
    pub stats: SolverStats,
}

/// Divergence between the dataflow detector and the legacy oracle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossCheck {
    /// `(service, method)` risky for the oracle but sifted by dataflow —
    /// a false release; must be empty.
    pub legacy_only: Vec<(String, String)>,
    /// Risky for dataflow but sifted by the oracle — acceptable
    /// (leak-side) conservatism.
    pub dataflow_only: Vec<(String, String)>,
}

impl DataflowOutput {
    /// Compares the risky sets against the legacy heuristic detector.
    pub fn cross_check(&self, oracle: &DetectorOutput) -> CrossCheck {
        let key = |r: &RiskyInterface| (r.ipc.service.clone(), r.ipc.method.clone());
        let ours: BTreeSet<_> = self.detector.risky.iter().map(key).collect();
        let theirs: BTreeSet<_> = oracle.risky.iter().map(key).collect();
        CrossCheck {
            legacy_only: theirs.difference(&ours).cloned().collect(),
            dataflow_only: ours.difference(&theirs).cloned().collect(),
        }
    }
}

/// Step-3 detector backed by the dataflow leak-check pass.
///
/// # Example
///
/// ```
/// use jgre_analysis::{DataflowDetector, IpcMethodExtractor, JgrEntryExtractor};
/// use jgre_corpus::{spec::AospSpec, CodeModel};
///
/// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
/// let ipc = IpcMethodExtractor::new(&model).extract();
/// let entries = JgrEntryExtractor::new(&model).extract();
/// let output = DataflowDetector::new(&model, &entries).detect(&ipc);
/// assert_eq!(output.detector.risky.len(), 63);
/// ```
#[derive(Debug)]
pub struct DataflowDetector<'m> {
    model: &'m CodeModel,
    entries: &'m JgrEntrySets,
}

impl<'m> DataflowDetector<'m> {
    /// Wraps the model and the step-2 output.
    pub fn new(model: &'m CodeModel, entries: &'m JgrEntrySets) -> Self {
        Self { model, entries }
    }

    /// Classifies every IPC method from dataflow verdicts.
    pub fn detect(&self, ipc_methods: &[IpcMethod]) -> DataflowOutput {
        self.detect_with(ipc_methods, &AnalysisOptions::default())
    }

    /// [`DataflowDetector::detect`] with caching and parallelism knobs;
    /// verdicts are structurally identical in every mode.
    pub fn detect_with(
        &self,
        ipc_methods: &[IpcMethod],
        options: &AnalysisOptions,
    ) -> DataflowOutput {
        let analysis = LeakChecker::new(self.model)
            .with_entries(self.entries)
            .analyze_with(options);
        let mut risky = Vec::new();
        let mut sifted = Vec::new();
        let mut verdicts = Vec::new();
        for ipc in ipc_methods {
            let Some(root) = ipc.java else {
                // Native-service entry points: bodies live in the native
                // world; none of the exploitable JNI paths start there.
                sifted.push((ipc.clone(), SiftReason::NoJgrReach));
                verdicts.push(VerdictRow {
                    ipc: ipc.clone(),
                    verdict: LeakVerdict::NoJgr,
                    sites: Vec::new(),
                    signature_gated: false,
                });
                continue;
            };
            let def = self.model.method(root);
            let summary = analysis.summary(root);
            let verdict = analysis.verdict_for_with(root, options.path_sensitive);
            let signature_gated = def
                .permission_checks
                .iter()
                .any(|p| p.level() == ProtectionLevel::Signature);
            if signature_gated {
                sifted.push((ipc.clone(), SiftReason::SignaturePermission));
            } else if let Some(reason) = verdict.sift_reason() {
                sifted.push((ipc.clone(), reason));
            } else {
                let reached_entries: Vec<MethodId> = summary
                    .sites
                    .iter()
                    .map(|s| s.method)
                    .filter(|m| self.entries.java_entries.contains(m))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                risky.push(RiskyInterface {
                    ipc: ipc.clone(),
                    reached_entries,
                    via_binder_params: !def.binder_params.is_empty(),
                    via_handler_edge: summary.saw_handler,
                });
            }
            verdicts.push(VerdictRow {
                ipc: ipc.clone(),
                verdict,
                sites: summary.sites.clone(),
                signature_gated,
            });
        }
        DataflowOutput {
            detector: DetectorOutput { risky, sifted },
            verdicts,
            stats: analysis.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IpcMethodExtractor, JgrEntryExtractor, ServiceKind, VulnerableIpcDetector};
    use jgre_corpus::spec::AospSpec;

    fn detect() -> DataflowOutput {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        DataflowDetector::new(&model, &entries).detect(&ipc)
    }

    #[test]
    fn verdicts_reproduce_the_static_counts() {
        let out = detect();
        let system_risky = out
            .detector
            .risky
            .iter()
            .filter(|r| r.ipc.kind == ServiceKind::SystemService)
            .count();
        assert_eq!(system_risky, 57, "54 vulnerable + 3 bounded");
        assert_eq!(out.detector.risky.len(), 63);
        // The three bounded collections get the BoundedRetention verdict.
        let bounded = out
            .verdicts
            .iter()
            .filter(|v| v.verdict == LeakVerdict::BoundedRetention)
            .count();
        assert_eq!(bounded, 3, "Table III's sound per-process limits");
    }

    #[test]
    fn every_sift_rule_is_derived() {
        let out = detect();
        let seen: BTreeSet<LeakVerdict> = out.verdicts.iter().map(|v| v.verdict).collect();
        for expected in [
            LeakVerdict::NoJgr,
            LeakVerdict::ThreadCreateRelease,
            LeakVerdict::TransientParams,
            LeakVerdict::MemberReplacement,
            LeakVerdict::BoundedRetention,
            LeakVerdict::UnboundedLeak,
        ] {
            assert!(
                seen.contains(&expected),
                "verdict {expected:?} never derived"
            );
        }
    }

    #[test]
    fn agrees_exactly_with_the_legacy_oracle() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        let dataflow = DataflowDetector::new(&model, &entries).detect(&ipc);
        let legacy = VulnerableIpcDetector::new(&model, &entries).detect(&ipc);
        let diff = dataflow.cross_check(&legacy);
        assert_eq!(diff, CrossCheck::default(), "detectors diverge");
        // Stronger: the full risky rows (provenance included) coincide.
        assert_eq!(dataflow.detector, legacy);
    }

    #[test]
    fn thread_peer_is_released_and_death_recipient_retained() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let analysis = LeakChecker::new(&model).analyze();
        let thread = model
            .find_method("java.lang.Thread", "nativeCreate")
            .unwrap();
        assert_eq!(
            analysis.summary(thread).retention(),
            Some(Retention::Released)
        );
        let link = model
            .find_method("android.os.Binder", "linkToDeathNative")
            .unwrap();
        assert_eq!(
            analysis.summary(link).retention(),
            Some(Retention::Unbounded)
        );
        // The retention propagates up the plumbing chain.
        let rcl = model
            .find_method("android.os.RemoteCallbackList", "register")
            .unwrap();
        assert_eq!(
            analysis.summary(rcl).retention(),
            Some(Retention::Unbounded)
        );
    }

    #[test]
    fn bounded_branch_join_yields_bounded_fate() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let analysis = LeakChecker::new(&model).analyze();
        let display = model
            .find_method("com.android.server.DisplayService", "registerCallback")
            .unwrap();
        assert_eq!(analysis.verdict_for(display), LeakVerdict::BoundedRetention);
        let sites = &analysis.summary(display).sites;
        let param = sites
            .iter()
            .find(|s| matches!(s.site, AllocSite::BinderParam(_)))
            .expect("the callback argument is an allocation site");
        assert_eq!(param.fate, Retention::Bounded);
        assert_eq!(param.escape, Some(EscapeKind::BoundedCollection));
        assert!(
            param.preds.contains(PredSet::BOUND_CHECKED),
            "the bounded store records its admission predicate"
        );
        // The death recipient pinned by the guarded registration chain is
        // capped by the same admission bound.
        let recipient = sites
            .iter()
            .find(|s| s.site == AllocSite::DeathRecipient)
            .expect("the registration chain pins a death recipient");
        assert_eq!(recipient.fate, Retention::Bounded);
        assert_eq!(recipient.escape, Some(EscapeKind::UnboundedCollection));
        assert!(
            recipient.preds.contains(PredSet::BOUND_CHECKED),
            "callee sites inherit the call-site admission predicate"
        );
    }

    #[test]
    fn predset_is_a_meet_semilattice_on_bits() {
        let a = PredSet::BOUND_CHECKED.with(PredSet::NULL_CHECKED);
        let b = PredSet::BOUND_CHECKED.with(PredSet::ERROR_PATH);
        assert_eq!(a.meet(b), PredSet::BOUND_CHECKED);
        assert!(a.contains(PredSet::BOUND_CHECKED));
        assert!(!a.contains(PredSet::ERROR_PATH));
        assert!(PredSet::NONE.is_empty());
        assert_eq!(PredSet::from_bits(a.bits()), Some(a));
        assert_eq!(PredSet::from_bits(0b1_0000), None, "unknown bit rejected");
        assert_eq!(a.labels(), vec!["bound-checked", "null-checked"]);
    }

    #[test]
    fn join_keeps_predicates_per_site_not_per_state() {
        // Regression for the boolean-guard era: joining an unguarded path
        // used to clear the guard for the *whole* state, muting predicates
        // on sites and callees the unguarded path never touched.
        let mut guarded = LeakState {
            path: PredSet::BOUND_CHECKED,
            ..LeakState::default()
        };
        guarded
            .vars
            .insert(0, (VarState::EscapedBounded, PredSet::BOUND_CHECKED));
        guarded.called.insert(MethodId(7), PredSet::BOUND_CHECKED);

        let mut plain = LeakState::default();
        plain.vars.insert(1, (VarState::Live, PredSet::NONE));

        let changed = guarded.join(&plain);
        assert!(changed);
        // The merged *path* predicate is must-information and drops...
        assert_eq!(guarded.path, PredSet::NONE);
        // ...but the per-site and per-callee predicates survive: the
        // unguarded path never reached them.
        assert_eq!(
            guarded.vars[&0],
            (VarState::EscapedBounded, PredSet::BOUND_CHECKED)
        );
        assert_eq!(guarded.called[&MethodId(7)], PredSet::BOUND_CHECKED);
    }

    #[test]
    fn error_path_shapes_get_error_path_verdicts() {
        use jgre_corpus::{error_path_cases, ERROR_PATH_CLASS};
        let model = CodeModel::synthesize_with_error_paths(&AospSpec::android_6_0_1());
        let analysis = LeakChecker::new(&model).analyze();
        for (class, name) in error_path_cases() {
            let id = model.find_method(class, name).unwrap();
            assert_eq!(
                analysis.verdict_for(id),
                LeakVerdict::ErrorPathLeak,
                "{name} leaks only on its error path"
            );
            let sites = &analysis.summary(id).sites;
            assert!(sites
                .iter()
                .filter(|s| s.fate == Retention::Unbounded)
                .all(|s| s.preds.contains(PredSet::ERROR_PATH)));
            // Path-insensitive reading degrades to the plain leak class.
            assert_eq!(
                analysis.verdict_for_with(id, false),
                LeakVerdict::UnboundedLeak
            );
        }
        // Controls: the null-check-gated store is a genuine unconditional
        // leak (the check does not guard the retention)...
        let null_gated = model
            .find_method(ERROR_PATH_CLASS, "addNonNullObserver")
            .unwrap();
        assert_eq!(analysis.verdict_for(null_gated), LeakVerdict::UnboundedLeak);
        let site = analysis.summary(null_gated).sites[analysis
            .summary(null_gated)
            .sites
            .iter()
            .position(|s| s.fate == Retention::Unbounded)
            .unwrap()]
        .clone();
        assert!(site.preds.contains(PredSet::NULL_CHECKED));
        // ...and the bounded registration stays BoundedRetention.
        let bounded = model
            .find_method(ERROR_PATH_CLASS, "boundedRegister")
            .unwrap();
        assert_eq!(analysis.verdict_for(bounded), LeakVerdict::BoundedRetention);
        // The transient control releases on every path.
        let transient = model
            .find_method(ERROR_PATH_CLASS, "transientPing")
            .unwrap();
        assert_eq!(
            analysis.verdict_for(transient),
            LeakVerdict::TransientParams
        );
    }

    #[test]
    fn error_path_fixture_does_not_disturb_the_base_verdicts() {
        let model = CodeModel::synthesize_with_error_paths(&AospSpec::android_6_0_1());
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        let out = DataflowDetector::new(&model, &entries).detect(&ipc);
        let system_risky = out
            .detector
            .risky
            .iter()
            .filter(|r| r.ipc.kind == ServiceKind::SystemService)
            .count();
        assert_eq!(system_risky, 57, "base system-service counts unchanged");
        let error_class = out
            .verdicts
            .iter()
            .filter(|v| v.verdict == LeakVerdict::ErrorPathLeak)
            .count();
        assert!(error_class >= 3, "the fixture's JGRE004 cases surface");
    }
}
