//! Witness provenance: every confirmed finding carries a concrete,
//! independently checkable path from the IPC entry point down to
//! `art::IndirectReferenceTable::Add`.
//!
//! A [`Witness`] is a step list built from an allocation-site summary
//! ([`SiteSummary`](crate::leakcheck::SiteSummary)); [`Witness::validate`]
//! re-checks every step against the code model (call edges, binder
//! parameters, JNI registrations, native call edges), so a witness cannot
//! silently outlive a model change.

use jgre_corpus::body::AllocSite;
use jgre_corpus::{CodeModel, MethodId, NativeFunctionId};
use serde::{Deserialize, Serialize};

use crate::leakcheck::SiteSummary;

/// The Parcel wrapper that unmarshals a binder argument — where a
/// binder-parameter JGR is actually created.
const UNMARSHAL: (&str, &str) = ("android.os.Parcel", "nativeReadStrongBinder");

/// One hop of a witness path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WitnessStep {
    /// The attacker-reachable IPC entry point.
    IpcEntry {
        /// Implementing class.
        class: String,
        /// Method name.
        method: String,
    },
    /// A Java call edge.
    Call {
        /// Caller.
        from: MethodId,
        /// Callee.
        to: MethodId,
        /// Whether the edge is a Handler post.
        via_handler: bool,
    },
    /// A binder argument is unmarshalled inside `method` — control
    /// pivots into the Parcel wrapper.
    BinderParamUnmarshal {
        /// Method whose parameter it is.
        method: MethodId,
        /// Parameter index.
        index: usize,
    },
    /// The JNI registration crossing from Java into native code.
    JniBridge {
        /// Registered Java class.
        java_class: String,
        /// Registered Java method.
        java_method: String,
        /// Bound native function.
        native: NativeFunctionId,
    },
    /// A native call edge.
    NativeCall {
        /// Caller.
        from: NativeFunctionId,
        /// Callee.
        to: NativeFunctionId,
    },
    /// The sink: `art::IndirectReferenceTable::Add`.
    IrtAdd {
        /// The sink function.
        native: NativeFunctionId,
    },
}

/// A checkable path from an IPC entry to the JGR table insertion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// Steps, entry first, sink last.
    pub steps: Vec<WitnessStep>,
}

impl Witness {
    /// Builds a witness for `site`, reached from IPC root `root`.
    ///
    /// Returns `None` when no path exists in the model — a finding
    /// without a witness is a detector bug, and callers treat it as one.
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_analysis::leakcheck::LeakChecker;
    /// use jgre_analysis::witness::Witness;
    /// use jgre_corpus::{spec::AospSpec, CodeModel};
    ///
    /// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    /// let root = model
    ///     .find_method("com.android.server.DisplayService", "registerCallback")
    ///     .unwrap();
    /// let analysis = LeakChecker::new(&model).analyze();
    /// let site = &analysis.summary(root).sites[0];
    /// let witness = Witness::build(&model, root, site).unwrap();
    /// assert!(witness.validate(&model).is_ok());
    /// ```
    pub fn build(model: &CodeModel, root: MethodId, site: &SiteSummary) -> Option<Witness> {
        let root_def = model.method(root);
        let mut steps = vec![WitnessStep::IpcEntry {
            class: root_def.class.clone(),
            method: root_def.name.clone(),
        }];
        steps.extend(java_path(model, root, site.method)?);

        let bridge = match site.site {
            AllocSite::BinderParam(index) => {
                steps.push(WitnessStep::BinderParamUnmarshal {
                    method: site.method,
                    index,
                });
                model
                    .jni_registrations
                    .iter()
                    .find(|r| r.java_class == UNMARSHAL.0 && r.java_method == UNMARSHAL.1)?
            }
            _ => {
                let def = model.method(site.method);
                model
                    .jni_registrations
                    .iter()
                    .find(|r| r.java_class == def.class && r.java_method == def.name)?
            }
        };
        steps.push(WitnessStep::JniBridge {
            java_class: bridge.java_class.clone(),
            java_method: bridge.java_method.clone(),
            native: bridge.native,
        });

        let (calls, sink) = native_path(model, bridge.native)?;
        steps.extend(calls);
        steps.push(WitnessStep::IrtAdd { native: sink });
        Some(Witness { steps })
    }

    /// Re-checks every step against the model. `Err` carries the first
    /// broken step's description.
    pub fn validate(&self, model: &CodeModel) -> Result<(), String> {
        let mut cur_java: Option<MethodId> = None;
        let mut cur_native: Option<NativeFunctionId> = None;
        let mut unmarshalled = false;
        let mut sunk = false;
        for (i, step) in self.steps.iter().enumerate() {
            let fail = |what: &str| Err(format!("step {i}: {what}"));
            match step {
                WitnessStep::IpcEntry { class, method } => {
                    if i != 0 {
                        return fail("IpcEntry not at the start");
                    }
                    match model.find_method(class, method) {
                        Some(id) => cur_java = Some(id),
                        None => return fail("entry method not in model"),
                    }
                }
                WitnessStep::Call {
                    from,
                    to,
                    via_handler,
                } => {
                    if cur_java != Some(*from) {
                        return fail("call does not start at the current method");
                    }
                    let def = model.method(*from);
                    let edges = if *via_handler {
                        &def.handler_posts
                    } else {
                        &def.calls
                    };
                    if !edges.contains(to) {
                        return fail("call edge not in model");
                    }
                    cur_java = Some(*to);
                }
                WitnessStep::BinderParamUnmarshal { method, index } => {
                    if cur_java != Some(*method) {
                        return fail("unmarshal outside the current method");
                    }
                    if *index >= model.method(*method).binder_params.len() {
                        return fail("binder parameter index out of range");
                    }
                    unmarshalled = true;
                }
                WitnessStep::JniBridge {
                    java_class,
                    java_method,
                    native,
                } => {
                    let reg = model.jni_registrations.iter().find(|r| {
                        r.java_class == *java_class
                            && r.java_method == *java_method
                            && r.native == *native
                    });
                    if reg.is_none() {
                        return fail("JNI registration not in model");
                    }
                    if !unmarshalled {
                        // A direct bridge must belong to the Java method
                        // we are currently in.
                        let Some(cur) = cur_java else {
                            return fail("bridge before any Java step");
                        };
                        let def = model.method(cur);
                        if def.class != *java_class || def.name != *java_method {
                            return fail("bridge does not match the current method");
                        }
                    }
                    cur_native = Some(*native);
                }
                WitnessStep::NativeCall { from, to } => {
                    if cur_native != Some(*from) {
                        return fail("native call does not start at the current function");
                    }
                    if !model.native(*from).calls.contains(to) {
                        return fail("native call edge not in model");
                    }
                    cur_native = Some(*to);
                }
                WitnessStep::IrtAdd { native } => {
                    if cur_native != Some(*native) {
                        return fail("sink is not the current native function");
                    }
                    if !model.native(*native).is_irt_add {
                        return fail("sink is not IndirectReferenceTable::Add");
                    }
                    sunk = true;
                }
            }
        }
        if !sunk {
            return Err("witness never reaches IndirectReferenceTable::Add".into());
        }
        Ok(())
    }

    /// Human-readable rendering, one line per step — the SARIF
    /// thread-flow text.
    pub fn render(&self, model: &CodeModel) -> Vec<String> {
        self.steps
            .iter()
            .map(|step| match step {
                WitnessStep::IpcEntry { class, method } => {
                    format!("IPC entry {class}.{method}")
                }
                WitnessStep::Call {
                    from,
                    to,
                    via_handler,
                } => {
                    let f = model.method(*from);
                    let t = model.method(*to);
                    let how = if *via_handler { "posts to" } else { "calls" };
                    format!("{}.{} {} {}.{}", f.class, f.name, how, t.class, t.name)
                }
                WitnessStep::BinderParamUnmarshal { method, index } => {
                    let m = model.method(*method);
                    format!("{}.{} unmarshals binder argument #{index}", m.class, m.name)
                }
                WitnessStep::JniBridge {
                    java_class,
                    java_method,
                    native,
                } => format!(
                    "JNI bridge {java_class}.{java_method} -> {}",
                    model.native(*native).name
                ),
                WitnessStep::NativeCall { from, to } => format!(
                    "{} calls {}",
                    model.native(*from).name,
                    model.native(*to).name
                ),
                WitnessStep::IrtAdd { native } => {
                    format!("{} inserts the JGR", model.native(*native).name)
                }
            })
            .collect()
    }
}

/// Witnesses of one finding with their longest common step prefix
/// factored out — the minimised form SARIF `codeFlows` are emitted
/// from. Multi-site findings share the IPC entry and often most of the
/// Java call chain; repeating those steps per flow bloats reports
/// without adding information. [`MinimisedFlows::expand`] restores the
/// originals exactly, so minimisation is lossless by construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinimisedFlows {
    /// Steps shared by every witness, in order (empty when there is no
    /// common prefix or fewer than two witnesses).
    pub prefix: Vec<WitnessStep>,
    /// Each witness's remaining steps after the shared prefix.
    pub suffixes: Vec<Vec<WitnessStep>>,
}

impl MinimisedFlows {
    /// Factors the longest common prefix out of `witnesses`.
    ///
    /// A single witness minimises to an empty prefix — there is nothing
    /// to share — and zero witnesses to an empty value.
    pub fn minimise(witnesses: &[Witness]) -> MinimisedFlows {
        if witnesses.len() < 2 {
            return MinimisedFlows {
                prefix: Vec::new(),
                suffixes: witnesses.iter().map(|w| w.steps.clone()).collect(),
            };
        }
        let first = &witnesses[0].steps;
        let mut common = first.len();
        for w in &witnesses[1..] {
            common = common.min(w.steps.len()).min(
                first
                    .iter()
                    .zip(&w.steps)
                    .take_while(|(a, b)| a == b)
                    .count(),
            );
        }
        // Never swallow a whole witness into the prefix: every flow must
        // keep at least its sink step so each suffix stands on its own.
        let shortest = witnesses.iter().map(|w| w.steps.len()).min().unwrap_or(0);
        if common == shortest && shortest > 0 {
            common = shortest - 1;
        }
        MinimisedFlows {
            prefix: first[..common].to_vec(),
            suffixes: witnesses
                .iter()
                .map(|w| w.steps[common..].to_vec())
                .collect(),
        }
    }

    /// Reconstructs the original witnesses (prefix + each suffix).
    pub fn expand(&self) -> Vec<Witness> {
        self.suffixes
            .iter()
            .map(|suffix| {
                let mut steps = self.prefix.clone();
                steps.extend(suffix.iter().cloned());
                Witness { steps }
            })
            .collect()
    }

    /// Total steps stored, prefix counted once — what the SARIF payload
    /// actually carries.
    pub fn stored_steps(&self) -> usize {
        self.prefix.len() + self.suffixes.iter().map(Vec::len).sum::<usize>()
    }
}

/// Shortest Java call path `root -> target` as witness steps (BFS over
/// direct calls and Handler posts; deterministic: edges in declaration
/// order).
fn java_path(model: &CodeModel, root: MethodId, target: MethodId) -> Option<Vec<WitnessStep>> {
    if root == target {
        return Some(Vec::new());
    }
    let mut parent: std::collections::BTreeMap<MethodId, (MethodId, bool)> =
        std::collections::BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(m) = queue.pop_front() {
        let def = model.method(m);
        let edges = def
            .calls
            .iter()
            .map(|c| (*c, false))
            .chain(def.handler_posts.iter().map(|c| (*c, true)));
        for (next, via_handler) in edges {
            if next == root || parent.contains_key(&next) {
                continue;
            }
            parent.insert(next, (m, via_handler));
            if next == target {
                let mut steps = Vec::new();
                let mut cur = target;
                while cur != root {
                    let (prev, via) = parent[&cur];
                    steps.push(WitnessStep::Call {
                        from: prev,
                        to: cur,
                        via_handler: via,
                    });
                    cur = prev;
                }
                steps.reverse();
                return Some(steps);
            }
            queue.push_back(next);
        }
    }
    None
}

/// Shortest native path from `from` to an `is_irt_add` sink.
fn native_path(
    model: &CodeModel,
    from: NativeFunctionId,
) -> Option<(Vec<WitnessStep>, NativeFunctionId)> {
    if model.native(from).is_irt_add {
        return Some((Vec::new(), from));
    }
    let mut parent: std::collections::BTreeMap<NativeFunctionId, NativeFunctionId> =
        std::collections::BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(f) = queue.pop_front() {
        for next in &model.native(f).calls {
            if *next == from || parent.contains_key(next) {
                continue;
            }
            parent.insert(*next, f);
            if model.native(*next).is_irt_add {
                let mut steps = Vec::new();
                let mut cur = *next;
                while cur != from {
                    let prev = parent[&cur];
                    steps.push(WitnessStep::NativeCall {
                        from: prev,
                        to: cur,
                    });
                    cur = prev;
                }
                steps.reverse();
                return Some((steps, *next));
            }
            queue.push_back(*next);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakcheck::LeakChecker;
    use jgre_corpus::spec::AospSpec;

    #[test]
    fn every_risky_site_has_a_valid_witness() {
        use crate::{DataflowDetector, IpcMethodExtractor, JgrEntryExtractor};
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        let out = DataflowDetector::new(&model, &entries).detect(&ipc);
        let mut checked = 0usize;
        for row in &out.verdicts {
            if !row.verdict.is_risky() {
                continue;
            }
            let root = row.ipc.java.expect("risky rows have Java bodies");
            for site in &row.sites {
                let witness = Witness::build(&model, root, site).unwrap_or_else(|| {
                    panic!(
                        "{}.{}: no witness for site {:?}",
                        row.ipc.service, row.ipc.method, site.site
                    )
                });
                witness
                    .validate(&model)
                    .unwrap_or_else(|e| panic!("{}.{}: {e}", row.ipc.service, row.ipc.method));
                checked += 1;
            }
        }
        assert!(checked >= 63, "at least one site per risky interface");
    }

    #[test]
    fn validation_rejects_a_forged_edge() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let root = model
            .find_method("com.android.server.DisplayService", "registerCallback")
            .unwrap();
        let analysis = LeakChecker::new(&model).analyze();
        let site = &analysis.summary(root).sites[0];
        let mut witness = Witness::build(&model, root, site).unwrap();
        // Corrupt the entry: claim a different class.
        if let WitnessStep::IpcEntry { class, .. } = &mut witness.steps[0] {
            *class = "com.example.Forged".into();
        }
        assert!(witness.validate(&model).is_err());
    }

    #[test]
    fn minimisation_roundtrips_and_shares_the_prefix() {
        use crate::{DataflowDetector, IpcMethodExtractor, JgrEntryExtractor};
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let ipc = IpcMethodExtractor::new(&model).extract();
        let entries = JgrEntryExtractor::new(&model).extract();
        let out = DataflowDetector::new(&model, &entries).detect(&ipc);
        let mut multi_checked = 0usize;
        for row in &out.verdicts {
            if !row.verdict.is_risky() {
                continue;
            }
            let root = row.ipc.java.expect("risky rows have Java bodies");
            let witnesses: Vec<Witness> = row
                .sites
                .iter()
                .filter_map(|s| Witness::build(&model, root, s))
                .collect();
            let min = MinimisedFlows::minimise(&witnesses);
            // Lossless: expansion restores the originals exactly.
            assert_eq!(min.expand(), witnesses);
            let full: usize = witnesses.iter().map(|w| w.steps.len()).sum();
            assert!(min.stored_steps() <= full);
            if witnesses.len() >= 2 {
                // Every multi-witness finding shares at least the IPC
                // entry step.
                assert!(
                    !min.prefix.is_empty(),
                    "{}.{}: no shared prefix",
                    row.ipc.service,
                    row.ipc.method
                );
                assert!(min.stored_steps() < full, "no sharing achieved");
                multi_checked += 1;
            }
        }
        assert!(multi_checked > 0, "no multi-witness finding exercised");
    }

    #[test]
    fn minimisation_keeps_identical_witnesses_apart() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let root = model
            .find_method("com.android.server.DisplayService", "registerCallback")
            .unwrap();
        let analysis = LeakChecker::new(&model).analyze();
        let site = &analysis.summary(root).sites[0];
        let w = Witness::build(&model, root, site).unwrap();
        // Two identical witnesses: the prefix must stop short of the
        // whole path so each suffix still carries its sink.
        let min = MinimisedFlows::minimise(&[w.clone(), w.clone()]);
        assert_eq!(min.expand(), vec![w.clone(), w]);
        assert!(min.suffixes.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn witness_renders_one_line_per_step() {
        let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
        let root = model
            .find_method("com.android.server.DisplayService", "registerCallback")
            .unwrap();
        let analysis = LeakChecker::new(&model).analyze();
        let site = &analysis.summary(root).sites[0];
        let witness = Witness::build(&model, root, site).unwrap();
        let lines = witness.render(&model);
        assert_eq!(lines.len(), witness.steps.len());
        assert!(lines[0].contains("IPC entry"));
        assert!(lines.last().unwrap().contains("inserts the JGR"));
    }
}
