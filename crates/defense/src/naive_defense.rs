//! The strawman the paper argues against (§V-A): *"Note we cannot
//! identify malicious apps by simply finding the highest number of IPC
//! calls since IPC calls may not trigger the creation of new JGR
//! entries."*
//!
//! [`CallCountDefense`] is that strawman, implemented faithfully: same
//! monitor, same alarm thresholds, same kill mechanism — but it ranks
//! apps by raw IPC call volume toward the victim instead of by
//! Algorithm 1's correlation score. The ablation bench and the
//! comparison test show where it goes wrong: a chatty-but-innocent app
//! out-calls a patient attacker and gets killed in its place.

use std::rc::Rc;

use jgre_framework::System;
use jgre_sim::{Pid, SimDuration, SimTime, Uid};
use serde::{Deserialize, Serialize};

use crate::{DefenseError, JgrMonitor};

/// Outcome of one call-count detection pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallCountDetection {
    /// The alarmed process.
    pub victim: Pid,
    /// Per-app raw call counts toward the victim, highest first.
    pub call_counts: Vec<(Uid, u64)>,
    /// Apps killed, in order.
    pub killed: Vec<Uid>,
}

/// The naive volume-based defense.
#[derive(Debug)]
pub struct CallCountDefense {
    monitor: Rc<JgrMonitor>,
    normal_level: usize,
    max_kills: usize,
}

impl CallCountDefense {
    /// Installs the strawman: same thresholds and monitor wiring as the
    /// real defender.
    ///
    /// # Errors
    ///
    /// [`DefenseError::InvalidThresholds`] unless
    /// `record_threshold < trigger_threshold`.
    pub fn install(
        system: &mut System,
        record_threshold: usize,
        trigger_threshold: usize,
        normal_level: usize,
    ) -> Result<Self, DefenseError> {
        let monitor = Rc::new(JgrMonitor::new(record_threshold, trigger_threshold)?);
        monitor.set_fault_layer(system.faults().clone());
        system.register_jgr_observer(monitor.clone());
        system.driver_mut().set_defense_recording(true);
        Ok(Self {
            monitor,
            normal_level,
            max_kills: 8,
        })
    }

    /// The shared monitor.
    pub fn monitor(&self) -> &Rc<JgrMonitor> {
        &self.monitor
    }

    /// Polls for alarms; on one, kills apps by descending raw call count
    /// until the victim's table is back to normal.
    pub fn poll(&self, system: &mut System) -> Option<CallCountDetection> {
        let victim = self.monitor.alarmed_pids().into_iter().next()?;
        let Some(since) = self.monitor.recording_since(victim) else {
            self.monitor.reset(victim);
            return None;
        };
        let horizon = SimTime::from_micros(since.as_micros().saturating_sub(50_000));
        let mut counts: std::collections::BTreeMap<Uid, u64> = Default::default();
        for record in system.driver().log_since(horizon) {
            if record.to_pid == victim && record.from_uid.is_app() {
                *counts.entry(record.from_uid).or_insert(0) += 1;
            }
        }
        let mut call_counts: Vec<(Uid, u64)> = counts.into_iter().collect();
        call_counts.sort_by_key(|(uid, calls)| (std::cmp::Reverse(*calls), *uid));
        let mut killed = Vec::new();
        for &(uid, calls) in &call_counts {
            if killed.len() >= self.max_kills || calls == 0 {
                break;
            }
            match system.jgr_count(victim) {
                Some(count) if count >= self.normal_level => {
                    // The strawman has no retry logic: a failed or absent
                    // kill is simply skipped (one more way it is naive).
                    if system.kill_app(uid).released_entries() {
                        system.clock().advance(SimDuration::from_millis(30));
                        killed.push(uid);
                    }
                }
                _ => break,
            }
        }
        self.monitor.reset(victim);
        system.driver_mut().prune_log(since);
        Some(CallCountDetection {
            victim,
            call_counts,
            killed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_framework::{CallOptions, SystemConfig};

    /// The paper's §V-A counter-example, executed: a benign app makes
    /// *more* IPC calls than the attacker, all of them innocent; the
    /// call-count strawman kills the benign app first, while the leak
    /// (and the alarm) came from the quieter attacker.
    #[test]
    fn call_count_defense_kills_the_wrong_app() {
        let mut system = System::boot_with(SystemConfig {
            seed: 13,
            jgr_capacity: Some(3_200),
            ..SystemConfig::default()
        });
        let defense = CallCountDefense::install(&mut system, 250, 750, 150)
            .expect("strawman thresholds are valid");
        let evil = system.install_app("com.quiet.leaker", []);
        let busy = system.install_app("com.busy.innocent", []);
        let mut detection = None;
        for _ in 0..5_000 {
            // Three innocent calls for every leaking call.
            for _ in 0..3 {
                system
                    .call_service(busy, "clipboard", "getState", CallOptions::default())
                    .expect("innocent method exists");
            }
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .expect("clipboard registered");
            if let Some(d) = defense.poll(&mut system) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("the leak must trip the alarm");
        assert_eq!(
            d.call_counts.first().map(|(uid, _)| *uid),
            Some(busy),
            "the chatty innocent app tops the raw call ranking"
        );
        assert_eq!(
            d.killed.first(),
            Some(&busy),
            "…and the strawman kills it first: {:?}",
            d.killed
        );
    }
}
