//! Versioned checkpoints of the defender's in-memory state.
//!
//! A checkpoint is a serialized snapshot of the [`JgrMonitor`] watches
//! plus the defender's cooldown stamps, tagged with the journal sequence
//! number it covers. Recovery restores the latest valid checkpoint and
//! replays only the journal records after it, which bounds replay work
//! by the checkpoint interval.
//!
//! Layout (integers little-endian):
//!
//! ```text
//! magic "JGRECKP1" | schema version u32 | payload length u32
//! | serde_json payload | FNV-1a-64 checksum of the payload
//! ```
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`CheckpointReject`], and the caller falls back to journal-only
//! recovery. Losing a checkpoint is survivable by design — the monitor's
//! table-size tracking self-heals because every journaled event carries
//! the absolute table size.
//!
//! [`JgrMonitor`]: crate::JgrMonitor

use std::fmt;

use jgre_sim::{Pid, SimTime};
use serde::{Deserialize, Serialize};

use crate::journal::checksum;
use crate::DefenderConfig;

/// Magic prefix of a checkpoint blob.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"JGRECKP1";
/// Checkpoint schema version; bump on any layout change.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;
/// Magic + version + payload length.
const PREFIX_LEN: usize = 8 + 4 + 4;

/// Serialized form of one watch entry.
///
/// Timestamp maps are flattened to `Vec`s of tuples: the vendored
/// `serde_json` only supports string map keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchSnapshot {
    /// The watched process.
    pub pid: Pid,
    /// Current JGR table size.
    pub current: usize,
    /// When recording started, if recording.
    pub recording_since: Option<SimTime>,
    /// Recorded add timestamps.
    pub add_times: Vec<SimTime>,
    /// Recorded remove timestamps.
    pub remove_times: Vec<SimTime>,
    /// Whether the trigger threshold was crossed.
    pub alarmed: bool,
}

/// Serialized form of the whole monitor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// Every watch, in pid order.
    pub watches: Vec<WatchSnapshot>,
}

/// One versioned checkpoint of defender + monitor state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenderCheckpoint {
    /// Journal records with sequence `>= journal_seq` are NOT covered by
    /// this checkpoint and must be replayed on top of it.
    pub journal_seq: u64,
    /// Virtual time the checkpoint was taken.
    pub taken_at: SimTime,
    /// Fingerprint of the [`DefenderConfig`] the state was built under; a
    /// mismatch (config changed across the restart) rejects the
    /// checkpoint rather than resuming with incompatible thresholds.
    pub config_fingerprint: u64,
    /// The monitor's watches.
    pub monitor: MonitorSnapshot,
    /// The defender's per-victim cooldown stamps.
    pub last_pass: Vec<(Pid, SimTime)>,
}

/// Why a checkpoint blob was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointReject {
    /// Shorter than the fixed prefix or the declared payload.
    Truncated,
    /// Magic mismatch.
    BadMagic,
    /// Schema version this build does not understand.
    BadVersion(u32),
    /// Payload checksum mismatch (bit rot, torn write).
    BadChecksum,
    /// Checksum passed but the payload did not deserialize (schema
    /// drift inside one version — should not happen, still must not
    /// panic).
    BadPayload,
}

impl fmt::Display for CheckpointReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointReject::Truncated => write!(f, "checkpoint truncated"),
            CheckpointReject::BadMagic => write!(f, "checkpoint magic mismatch"),
            CheckpointReject::BadVersion(v) => write!(f, "unknown checkpoint schema version {v}"),
            CheckpointReject::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointReject::BadPayload => write!(f, "checkpoint payload undecodable"),
        }
    }
}

/// Fingerprint of a configuration (FNV over its canonical JSON), stored
/// in the checkpoint so recovery can detect a config change.
pub fn config_fingerprint(config: &DefenderConfig) -> u64 {
    let json = serde_json::to_vec(config).expect("DefenderConfig always serializes");
    checksum(&json)
}

/// Encodes a checkpoint into its framed, checksummed byte form.
pub fn encode_checkpoint(cp: &DefenderCheckpoint) -> Vec<u8> {
    let payload = serde_json::to_vec(cp).expect("checkpoints always serialize");
    let mut out = Vec::with_capacity(PREFIX_LEN + payload.len() + 8);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out
}

/// Decodes a checkpoint blob, rejecting (never panicking on) malformed
/// input.
///
/// # Errors
///
/// A [`CheckpointReject`] naming the first problem found.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<DefenderCheckpoint, CheckpointReject> {
    if bytes.len() < PREFIX_LEN {
        return Err(CheckpointReject::Truncated);
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointReject::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CHECKPOINT_SCHEMA_VERSION {
        return Err(CheckpointReject::BadVersion(version));
    }
    let len = u32::from_le_bytes(bytes[12..PREFIX_LEN].try_into().expect("4 bytes")) as usize;
    let body_end = PREFIX_LEN
        .checked_add(len)
        .ok_or(CheckpointReject::Truncated)?;
    let frame_end = body_end + 8;
    if frame_end > bytes.len() {
        return Err(CheckpointReject::Truncated);
    }
    let payload = &bytes[PREFIX_LEN..body_end];
    let stored = u64::from_le_bytes(bytes[body_end..frame_end].try_into().expect("8 bytes"));
    if checksum(payload) != stored {
        return Err(CheckpointReject::BadChecksum);
    }
    serde_json::from_slice(payload).map_err(|_| CheckpointReject::BadPayload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DefenderCheckpoint {
        DefenderCheckpoint {
            journal_seq: 91,
            taken_at: SimTime::from_micros(5_000),
            config_fingerprint: config_fingerprint(&DefenderConfig::default()),
            monitor: MonitorSnapshot {
                watches: vec![WatchSnapshot {
                    pid: Pid::new(612),
                    current: 4_321,
                    recording_since: Some(SimTime::from_micros(1_000)),
                    add_times: vec![SimTime::from_micros(1_000), SimTime::from_micros(1_010)],
                    remove_times: vec![],
                    alarmed: false,
                }],
            },
            last_pass: vec![(Pid::new(612), SimTime::from_micros(4_000))],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let cp = sample();
        assert_eq!(decode_checkpoint(&encode_checkpoint(&cp)), Ok(cp));
    }

    #[test]
    fn every_corruption_is_a_typed_rejection() {
        let good = encode_checkpoint(&sample());
        assert_eq!(decode_checkpoint(&[]), Err(CheckpointReject::Truncated));
        assert_eq!(
            decode_checkpoint(&good[..good.len() - 3]),
            Err(CheckpointReject::Truncated)
        );
        let mut bad = good.clone();
        bad[0] = b'Z';
        assert_eq!(decode_checkpoint(&bad), Err(CheckpointReject::BadMagic));
        let mut bad = good.clone();
        bad[8] = 99;
        assert_eq!(
            decode_checkpoint(&bad),
            Err(CheckpointReject::BadVersion(99))
        );
        let mut bad = good.clone();
        bad[PREFIX_LEN + 5] ^= 0x08;
        assert_eq!(decode_checkpoint(&bad), Err(CheckpointReject::BadChecksum));
    }

    #[test]
    fn config_change_changes_the_fingerprint() {
        let a = config_fingerprint(&DefenderConfig::default());
        let b = config_fingerprint(&DefenderConfig {
            normal_level: 2_999,
            ..DefenderConfig::default()
        });
        assert_ne!(a, b);
    }
}
