//! Bounded ingestion ring with deterministic, virtual-time backpressure.
//!
//! The scoring thread drains events at a fixed per-event service cost;
//! the producer offers them at their arrival times. [`BoundedRing`] is
//! the M/D/1/K queue this induces, computed *in virtual time*: an offer
//! either yields the instant the scorer will finish that event, or a
//! drop when all `capacity` slots are still busy — the fault layer's
//! lost-record channel turned into a measured overload mode. Because the
//! model is a pure function of arrival times, drop counts and latencies
//! are byte-reproducible for a fixed seed no matter how many OS threads
//! carry the bytes.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use super::frame::FrameReject;

/// Deterministic bounded queue between producer and scorer.
///
/// # Example
///
/// ```
/// use jgre_defense::stream::BoundedRing;
///
/// let mut ring = BoundedRing::new(2, 10);
/// assert_eq!(ring.offer(0), Some(10));  // idle: service starts at once
/// assert_eq!(ring.offer(0), Some(20));  // queued behind the first
/// assert_eq!(ring.offer(5), None);      // both slots busy at t=5: drop
/// assert_eq!(ring.offer(11), Some(30)); // t=11: the first completed
/// ```
#[derive(Debug, Clone)]
pub struct BoundedRing {
    capacity: usize,
    service_us: u64,
    /// Completion times of events still in the ring, oldest first.
    completions: VecDeque<u64>,
    /// When the scorer frees up after everything currently queued.
    tail_us: u64,
}

impl BoundedRing {
    /// Creates a ring with `capacity` slots and a fixed `service_us`
    /// scoring cost per event.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` or `service_us` is zero.
    pub fn new(capacity: usize, service_us: u64) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(service_us > 0, "service time must be positive");
        Self {
            capacity,
            service_us,
            completions: VecDeque::with_capacity(capacity),
            tail_us: 0,
        }
    }

    /// Slots configured.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events still queued at the last offer time.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// Whether the ring holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// Offers an event arriving at `at_us`. Returns the virtual time the
    /// scorer finishes it, or `None` when every slot is busy and the
    /// event is dropped. Arrival times must be non-decreasing.
    pub fn offer(&mut self, at_us: u64) -> Option<u64> {
        while self.completions.front().is_some_and(|&c| c <= at_us) {
            self.completions.pop_front();
        }
        if self.completions.len() >= self.capacity {
            return None;
        }
        let completion = self.tail_us.max(at_us) + self.service_us;
        self.tail_us = completion;
        self.completions.push_back(completion);
        Some(completion)
    }
}

/// Per-reason ingestion accounting: what arrived, what the ring dropped,
/// what the protocol refused. Merges by addition, like
/// [`DetectionStats`](crate::DetectionStats) (which mirrors these totals
/// at fleet level via `absorb_ingest`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Frames offered by the producer.
    pub offered: u64,
    /// Events accepted into the ring and scored.
    pub accepted: u64,
    /// Events dropped because every ring slot was busy.
    pub dropped_backpressure: u64,
    /// Frames refused for a checksum mismatch.
    pub rejected_checksum: u64,
    /// Streams refused for a stale schema version or bad magic.
    pub rejected_version: u64,
    /// Frames refused for malformed payloads (bad tag, bad layout,
    /// oversized length field).
    pub rejected_malformed: u64,
}

impl IngestStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total frames refused by the protocol layer for any reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_checksum + self.rejected_version + self.rejected_malformed
    }

    /// Counts one typed rejection.
    pub fn record_reject(&mut self, reject: &FrameReject) {
        match reject {
            FrameReject::ChecksumMismatch { .. } => self.rejected_checksum += 1,
            FrameReject::BadMagic | FrameReject::StaleVersion { .. } => self.rejected_version += 1,
            FrameReject::OversizedFrame { .. }
            | FrameReject::BadTag { .. }
            | FrameReject::BadPayload => self.rejected_malformed += 1,
        }
    }

    /// Adds `other`'s counters into `self` (commutative and associative).
    pub fn merge(&mut self, other: &Self) {
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.dropped_backpressure += other.dropped_backpressure;
        self.rejected_checksum += other.rejected_checksum;
        self.rejected_version += other.rejected_version;
        self.rejected_malformed += other.rejected_malformed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_ring_services_at_arrival() {
        let mut ring = BoundedRing::new(8, 5);
        assert_eq!(ring.offer(100), Some(105));
        assert_eq!(ring.offer(1_000), Some(1_005));
    }

    #[test]
    fn burst_beyond_capacity_drops_deterministically() {
        let mut ring = BoundedRing::new(3, 10);
        let outcomes: Vec<Option<u64>> = (0..6).map(|_| ring.offer(0)).collect();
        assert_eq!(
            outcomes,
            vec![Some(10), Some(20), Some(30), None, None, None]
        );
        // Same arrivals, fresh ring: identical outcomes.
        let mut replay = BoundedRing::new(3, 10);
        let again: Vec<Option<u64>> = (0..6).map(|_| replay.offer(0)).collect();
        assert_eq!(outcomes, again);
    }

    #[test]
    fn draining_frees_slots() {
        let mut ring = BoundedRing::new(2, 10);
        assert_eq!(ring.offer(0), Some(10));
        assert_eq!(ring.offer(0), Some(20));
        assert_eq!(ring.offer(5), None);
        assert_eq!(ring.len(), 2);
        // At t=25 both completed; queue restarts from the tail.
        assert_eq!(ring.offer(25), Some(35));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn sustained_overload_drop_rate_matches_service_deficit() {
        // Arrivals every 4 µs, service 10 µs: the ring can keep up with
        // only 2 in 5; the rest must drop once the buffer fills.
        let mut ring = BoundedRing::new(16, 10);
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for k in 0..10_000u64 {
            match ring.offer(k * 4) {
                Some(_) => accepted += 1,
                None => dropped += 1,
            }
        }
        let rate = accepted as f64 / (accepted + dropped) as f64;
        assert!(
            (rate - 0.4).abs() < 0.01,
            "accept rate {rate} (accepted {accepted}, dropped {dropped})"
        );
    }

    #[test]
    fn ingest_stats_merge_is_additive() {
        let mut a = IngestStats {
            offered: 10,
            accepted: 8,
            dropped_backpressure: 2,
            ..IngestStats::new()
        };
        let mut b = IngestStats::new();
        b.record_reject(&FrameReject::BadPayload);
        b.record_reject(&FrameReject::StaleVersion { found: 9 });
        b.record_reject(&FrameReject::ChecksumMismatch {
            computed: 1,
            stored: 2,
        });
        a.merge(&b);
        assert_eq!(a.rejected(), 3);
        assert_eq!(a.rejected_malformed, 1);
        assert_eq!(a.rejected_version, 1);
        assert_eq!(a.rejected_checksum, 1);
        assert_eq!(a.offered, 10);
    }
}
