//! The streaming defender: framed event protocol, bounded ingestion,
//! and the incremental sliding-window correlation service.
//!
//! Batch detection rebuilds Algorithm 1's histogram from the whole IPC
//! log on every poll; this module runs the same algorithm *online*. The
//! pipeline is three layers, each independently testable:
//!
//! 1. **Protocol** — length-prefixed, FNV-checksummed, versioned frames
//!    carrying Binder-log and JGR-add events, with an incremental
//!    decoder that treats torn tails as pending and corruption as typed
//!    [`FrameReject`]s.
//! 2. **Ingestion** — a bounded ring between producer and scorer whose
//!    backpressure is computed in virtual time, making overload drops a
//!    deterministic, per-reason-accounted measurement.
//! 3. **Service** — [`StreamDefender`] feeds accepted events into the
//!    [`IncrementalScorer`](crate::IncrementalScorer), emits
//!    [`StreamVerdict`]s at trigger boundaries, journals the window
//!    through a [`StateStore`](crate::StateStore), and renders a
//!    byte-reproducible [`ServeReport`].
//!
//! The differential guarantee — streaming verdicts equal batch
//! [`segment_tree_scores`](crate::segment_tree_scores) verdicts on the
//! same event sequence — holds by construction: both paths execute the
//! identical incremental correlator.

mod frame;
mod ring;
mod service;

pub use frame::{
    decode_stream, encode_event, encode_stream, stream_header, FrameDecoder, FrameReject,
    StreamEvent, MAX_FRAME_LEN, STREAM_MAGIC, STREAM_SCHEMA_VERSION,
};
pub use ring::{BoundedRing, IngestStats};
pub use service::{
    recover_events, run_serve, run_serve_with_store, LatencySummary, RecoveredStream, ServeConfig,
    ServeReport, StreamDefender, StreamVerdict,
};
