//! The framed binary event protocol.
//!
//! A stream is a 12-byte header (magic + schema version, mirroring the
//! WAL's header discipline) followed by frames:
//!
//! ```text
//! | len: u32 LE | payload: len bytes | checksum: u64 LE |
//! ```
//!
//! where the checksum is the same FNV-1a-64 the journal uses, taken over
//! the payload. Payloads are tagged: `1` is a Binder-log record
//! (`at: u64 | uid: u32 | type_len: u16 | type bytes`), `2` a JGR add
//! (`at: u64`). All integers little-endian.
//!
//! Decoding is *incremental*: [`FrameDecoder::feed`] accepts arbitrary
//! byte slices (short reads, chunk boundaries inside a frame) and
//! [`FrameDecoder::next_event`] yields an event only once its frame is
//! complete and its checksum verifies. Corruption is a typed
//! [`FrameReject`], never a panic: a torn tail simply stays pending,
//! which is what lets crash recovery replay a journal truncated
//! mid-frame.

use std::fmt;

use jgre_sim::{SimTime, Uid};

use crate::checksum;

/// Stream header magic (version baked into the trailing digit's schema
/// constant, like `JGREWAL1`).
pub const STREAM_MAGIC: [u8; 8] = *b"JGRESTR1";

/// Schema version of the frame payloads.
pub const STREAM_SCHEMA_VERSION: u32 = 1;

/// Upper bound on a frame payload; anything larger is corruption (the
/// length field itself may be garbage, so this caps the allocation).
pub const MAX_FRAME_LEN: u32 = 4_096;

/// One event of the telemetry stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A Binder-log record: `uid` invoked `ipc_type` at `at`.
    Ipc {
        /// Virtual arrival time.
        at: SimTime,
        /// The calling app.
        uid: Uid,
        /// Interface.method label, the scorer's IPC-type key.
        ipc_type: String,
    },
    /// A JGR add observed on the victim at `at`.
    JgrAdd {
        /// Virtual arrival time.
        at: SimTime,
    },
}

impl StreamEvent {
    /// The event's virtual time.
    pub fn at(&self) -> SimTime {
        match self {
            StreamEvent::Ipc { at, .. } | StreamEvent::JgrAdd { at } => *at,
        }
    }
}

/// Why a stream (or one frame of it) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameReject {
    /// The header's magic is not `JGRESTR1` — not our stream at all.
    BadMagic,
    /// The header's schema version is not the one this build speaks.
    StaleVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A frame length exceeding [`MAX_FRAME_LEN`] — a corrupt length
    /// field, refused before allocating.
    OversizedFrame {
        /// The length the corrupt field claimed.
        len: u32,
    },
    /// The payload's checksum does not match the trailer.
    ChecksumMismatch {
        /// Checksum computed over the received payload.
        computed: u64,
        /// Checksum the frame trailer carried.
        stored: u64,
    },
    /// An unknown payload tag (checksum valid, content nonsense).
    BadTag {
        /// The tag byte found.
        found: u8,
    },
    /// A payload whose layout does not match its tag.
    BadPayload,
}

impl fmt::Display for FrameReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReject::BadMagic => write!(f, "stream header magic mismatch"),
            FrameReject::StaleVersion { found } => write!(
                f,
                "stream schema version {found} (this build speaks {STREAM_SCHEMA_VERSION})"
            ),
            FrameReject::OversizedFrame { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            FrameReject::ChecksumMismatch { computed, stored } => write!(
                f,
                "frame checksum mismatch (computed {computed:#018x}, stored {stored:#018x})"
            ),
            FrameReject::BadTag { found } => write!(f, "unknown frame tag {found}"),
            FrameReject::BadPayload => write!(f, "frame payload does not match its tag"),
        }
    }
}

impl std::error::Error for FrameReject {}

const TAG_IPC: u8 = 1;
const TAG_ADD: u8 = 2;
const HEADER_LEN: usize = STREAM_MAGIC.len() + 4;

/// The 12-byte stream header.
pub fn stream_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&STREAM_MAGIC);
    out.extend_from_slice(&STREAM_SCHEMA_VERSION.to_le_bytes());
    out
}

/// Appends one framed event to `out`.
pub fn encode_event(event: &StreamEvent, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(24);
    match event {
        StreamEvent::Ipc { at, uid, ipc_type } => {
            payload.push(TAG_IPC);
            payload.extend_from_slice(&at.as_micros().to_le_bytes());
            payload.extend_from_slice(&uid.raw().to_le_bytes());
            let bytes = ipc_type.as_bytes();
            assert!(
                bytes.len() <= u16::MAX as usize,
                "ipc type label too long to frame"
            );
            payload.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            payload.extend_from_slice(bytes);
        }
        StreamEvent::JgrAdd { at } => {
            payload.push(TAG_ADD);
            payload.extend_from_slice(&at.as_micros().to_le_bytes());
        }
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let sum = checksum(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Encodes a whole stream: header plus one frame per event.
pub fn encode_stream<'a>(events: impl IntoIterator<Item = &'a StreamEvent>) -> Vec<u8> {
    let mut out = stream_header();
    for event in events {
        encode_event(event, &mut out);
    }
    out
}

/// Incremental decoder tolerating arbitrary chunking and short reads.
///
/// # Example
///
/// ```
/// use jgre_defense::stream::{encode_stream, FrameDecoder, StreamEvent};
/// use jgre_sim::SimTime;
///
/// let events = vec![StreamEvent::JgrAdd { at: SimTime::from_micros(7) }];
/// let bytes = encode_stream(&events);
/// let mut decoder = FrameDecoder::new();
/// // Feed one byte at a time — frames assemble across feeds.
/// let mut seen = Vec::new();
/// for &b in &bytes {
///     decoder.feed(&[b]);
///     while let Some(e) = decoder.next_event().unwrap() {
///         seen.push(e);
///     }
/// }
/// assert_eq!(seen, events);
/// assert_eq!(decoder.pending_bytes(), 0);
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    header_seen: bool,
}

impl FrameDecoder {
    /// Creates a decoder expecting a stream header first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes received from the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, keeping the buffer
        // bounded by (pending + chunk) rather than the whole stream.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > MAX_FRAME_LEN as usize * 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet decoded — a torn tail if the stream
    /// has ended.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, `Ok(None)` when more bytes are
    /// needed, a typed [`FrameReject`] on corruption (the decoder stays
    /// at the rejected frame; a rejected stream is fail-stop).
    pub fn next_event(&mut self) -> Result<Option<StreamEvent>, FrameReject> {
        if !self.header_seen {
            if self.pending_bytes() < HEADER_LEN {
                return Ok(None);
            }
            let start = self.pos;
            if self.buf[start..start + STREAM_MAGIC.len()] != STREAM_MAGIC {
                return Err(FrameReject::BadMagic);
            }
            let found = u32::from_le_bytes(
                self.buf[start + STREAM_MAGIC.len()..start + HEADER_LEN]
                    .try_into()
                    .expect("4 header bytes"),
            );
            if found != STREAM_SCHEMA_VERSION {
                return Err(FrameReject::StaleVersion { found });
            }
            self.pos += HEADER_LEN;
            self.header_seen = true;
        }
        if self.pending_bytes() < 4 {
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 length bytes");
        let len = u32::from_le_bytes(len_bytes);
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(FrameReject::OversizedFrame { len });
        }
        let frame_len = 4 + len as usize + 8;
        if self.pending_bytes() < frame_len {
            return Ok(None);
        }
        let payload_start = self.pos + 4;
        let payload_end = payload_start + len as usize;
        let payload = &self.buf[payload_start..payload_end];
        let stored = u64::from_le_bytes(
            self.buf[payload_end..payload_end + 8]
                .try_into()
                .expect("8 checksum bytes"),
        );
        let computed = checksum(payload);
        if computed != stored {
            return Err(FrameReject::ChecksumMismatch { computed, stored });
        }
        let event = decode_payload(payload)?;
        self.pos += frame_len;
        Ok(Some(event))
    }
}

fn decode_payload(payload: &[u8]) -> Result<StreamEvent, FrameReject> {
    if payload.len() < 9 {
        return Err(FrameReject::BadPayload);
    }
    let tag = payload[0];
    let at = SimTime::from_micros(u64::from_le_bytes(
        payload[1..9].try_into().expect("8 time bytes"),
    ));
    match tag {
        TAG_ADD => {
            if payload.len() != 9 {
                return Err(FrameReject::BadPayload);
            }
            Ok(StreamEvent::JgrAdd { at })
        }
        TAG_IPC => {
            if payload.len() < 15 {
                return Err(FrameReject::BadPayload);
            }
            let uid = Uid::new(u32::from_le_bytes(
                payload[9..13].try_into().expect("4 uid bytes"),
            ));
            let type_len = u16::from_le_bytes(payload[13..15].try_into().expect("2 length bytes"));
            if payload.len() != 15 + type_len as usize {
                return Err(FrameReject::BadPayload);
            }
            let ipc_type = std::str::from_utf8(&payload[15..])
                .map_err(|_| FrameReject::BadPayload)?
                .to_owned();
            Ok(StreamEvent::Ipc { at, uid, ipc_type })
        }
        found => Err(FrameReject::BadTag { found }),
    }
}

/// Decodes a complete byte buffer, returning the events plus the number
/// of trailing bytes that did not form a whole frame (the torn tail a
/// crash mid-append leaves behind).
pub fn decode_stream(bytes: &[u8]) -> Result<(Vec<StreamEvent>, usize), FrameReject> {
    let mut decoder = FrameDecoder::new();
    decoder.feed(bytes);
    let mut events = Vec::new();
    while let Some(event) = decoder.next_event()? {
        events.push(event);
    }
    Ok((events, decoder.pending_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<StreamEvent> {
        vec![
            StreamEvent::Ipc {
                at: SimTime::from_micros(100),
                uid: Uid::new(10_061),
                ipc_type: "IClipboard.addPrimaryClipChangedListener".into(),
            },
            StreamEvent::JgrAdd {
                at: SimTime::from_micros(600),
            },
            StreamEvent::Ipc {
                at: SimTime::from_micros(700),
                uid: Uid::new(10_065),
                ipc_type: "IAudioService.getState".into(),
            },
        ]
    }

    #[test]
    fn round_trip() {
        let events = sample_events();
        let bytes = encode_stream(&events);
        let (decoded, torn) = decode_stream(&bytes).unwrap();
        assert_eq!(decoded, events);
        assert_eq!(torn, 0);
    }

    #[test]
    fn bit_flip_anywhere_is_rejected_or_torn_never_panics() {
        let events = sample_events();
        let clean = encode_stream(&events);
        for i in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x40;
            // A flip in a length field can shift framing; whatever
            // happens must be a typed outcome, not a panic, and must not
            // silently yield *different* events than some prefix of the
            // originals.
            if let Ok((decoded, _)) = decode_stream(&corrupt) {
                assert!(
                    decoded.iter().zip(&events).all(|(d, e)| d == e),
                    "byte {i}: decoded events diverged silently"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_torn_not_error() {
        let events = sample_events();
        let clean = encode_stream(&events);
        for cut in HEADER_LEN..clean.len() {
            let (decoded, torn) =
                decode_stream(&clean[..cut]).expect("truncation is not corruption");
            assert_eq!(torn, cut - HEADER_LEN - consumed_len(&events, &decoded));
            assert!(decoded.len() <= events.len());
            assert_eq!(decoded[..], events[..decoded.len()]);
        }
    }

    fn consumed_len(all: &[StreamEvent], decoded: &[StreamEvent]) -> usize {
        let mut buf = Vec::new();
        for event in &all[..decoded.len()] {
            encode_event(event, &mut buf);
        }
        buf.len()
    }

    #[test]
    fn stale_version_is_typed() {
        let mut bytes = encode_stream(&sample_events());
        bytes[STREAM_MAGIC.len()] = 9; // version 9 in LE
        assert_eq!(
            decode_stream(&bytes).unwrap_err(),
            FrameReject::StaleVersion { found: 9 }
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_stream(&sample_events());
        bytes[0] = b'X';
        assert_eq!(decode_stream(&bytes).unwrap_err(), FrameReject::BadMagic);
    }

    #[test]
    fn short_header_is_pending() {
        let bytes = stream_header();
        let (events, torn) = decode_stream(&bytes[..HEADER_LEN - 3]).unwrap();
        assert!(events.is_empty());
        assert_eq!(torn, HEADER_LEN - 3);
    }

    #[test]
    fn oversized_length_field_is_refused() {
        let mut bytes = stream_header();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&[0; 64]);
        assert_eq!(
            decode_stream(&bytes).unwrap_err(),
            FrameReject::OversizedFrame {
                len: MAX_FRAME_LEN + 1
            }
        );
    }

    #[test]
    fn unknown_tag_with_valid_checksum_is_typed() {
        let mut payload = vec![7u8]; // no such tag
        payload.extend_from_slice(&42u64.to_le_bytes());
        let mut bytes = stream_header();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let sum = checksum(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_stream(&bytes).unwrap_err(),
            FrameReject::BadTag { found: 7 }
        );
    }

    #[test]
    fn garbage_never_panics() {
        let mut state = 0xdead_beefu64;
        for round in 0..200 {
            let mut bytes = Vec::with_capacity(round * 3);
            for _ in 0..round * 3 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bytes.push((state >> 56) as u8);
            }
            let _ = decode_stream(&bytes);
        }
    }
}
