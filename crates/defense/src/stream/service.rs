//! The long-running streaming defender service behind `jgre serve`.
//!
//! Events flow producer → framed protocol → [`BoundedRing`] →
//! [`IncrementalScorer`]. All detection decisions happen in *virtual
//! time*: the ring's queueing model turns sustained overload into
//! deterministic drops and latencies, so a run's [`ServeReport`] is a
//! pure function of its [`ServeConfig`] — byte-identical across
//! invocations and across OS thread counts (with `threads ≥ 2` a real
//! producer thread ships encoded frames over a bounded channel, but the
//! channel is lossless; loss is modeled only by the ring).
//!
//! Durability mirrors the PR-5 WAL story: accepted frames append to a
//! [`StateStore`] journal in the stream's own wire format, the log
//! compacts at each verdict (a verdict is a window reset — older events
//! can never influence a future score), and recovery replays the journal
//! through the torn-tail-tolerant decoder.

use std::io;
use std::sync::mpsc;
use std::thread;

use jgre_sim::source::{EventSource, SourceConfig, SourceEventKind};
use jgre_sim::{Histogram, SimDuration, SimTime, Uid};
use serde::{Deserialize, Serialize};

use super::frame::{encode_event, stream_header, FrameDecoder, FrameReject, StreamEvent};
use super::ring::{BoundedRing, IngestStats};
use crate::{DetectionStats, IncrementalScorer, PersistError, ScoreParams, StateStore};

/// Tuning of one `jgre serve` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// The synthetic telemetry stream.
    pub source: SourceConfig,
    /// Algorithm 1 parameters.
    pub params: ScoreParams,
    /// Sliding-window horizon: votes from adds older than this are
    /// retracted, so a long quiet run forgets stale traffic. `None`
    /// accumulates forever (batch semantics).
    pub horizon: Option<SimDuration>,
    /// JGR adds between scoring passes — the streaming stand-in for the
    /// monitor's trigger threshold.
    pub trigger_adds: u64,
    /// Ring slots between producer and scorer.
    pub ring_capacity: usize,
    /// Modeled scoring cost per event, µs (sets the overload point:
    /// the ring keeps up below `1e6 / service_us` events/sec).
    pub service_us: u64,
    /// OS threads: `1` runs producer and scorer inline; `≥ 2` ships
    /// frames through a real bounded channel from a producer thread.
    /// Never affects the report.
    pub threads: u32,
    /// Frames per encoded chunk handed to the decoder (short-read
    /// boundaries land inside frames on purpose).
    pub chunk_frames: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            source: SourceConfig::default(),
            params: ScoreParams::default(),
            horizon: Some(SimDuration::from_millis(50)),
            trigger_adds: 32,
            ring_capacity: 4_096,
            service_us: 8,
            threads: 1,
            chunk_frames: 256,
        }
    }
}

/// One streaming detection verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamVerdict {
    /// Virtual time of the triggering add.
    pub at_us: u64,
    /// The top-scoring app.
    pub suspect: Uid,
    /// Its `jgre_score` at the verdict.
    pub score: u64,
    /// Total adds accepted when the verdict fired.
    pub adds_seen: u64,
    /// Arrival→scored lag of the triggering add, µs.
    pub latency_us: u64,
}

/// Detection-latency quantiles over every accepted add.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Adds measured.
    pub samples: u64,
    /// Median lag, µs (log₂-bin upper bound).
    pub p50_us: Option<u64>,
    /// 99th-percentile lag, µs (log₂-bin upper bound).
    pub p99_us: Option<u64>,
    /// Worst lag, µs.
    pub max_us: Option<u64>,
}

impl LatencySummary {
    fn from_histogram(histogram: &Histogram) -> Self {
        Self {
            samples: histogram.count(),
            p50_us: histogram.p50(),
            p99_us: histogram.p99(),
            max_us: histogram.max(),
        }
    }
}

/// Everything one serve run produced. A pure function of the
/// [`ServeConfig`] (excluding `threads` and `chunk_frames`, which only
/// choose the transport).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// The stream that was synthesized.
    pub source: SourceConfig,
    /// Scoring parameters used.
    pub params: ScoreParams,
    /// Sliding-window horizon, µs (`null` = unbounded).
    pub horizon_us: Option<u64>,
    /// Adds per scoring pass.
    pub trigger_adds: u64,
    /// Ring slots.
    pub ring_capacity: usize,
    /// Modeled per-event scoring cost, µs.
    pub service_us: u64,
    /// Binder-log records accepted.
    pub calls: u64,
    /// JGR adds accepted.
    pub adds: u64,
    /// Verdicts, in order.
    pub verdicts: Vec<StreamVerdict>,
    /// Ingestion accounting (offers, drops, rejections by reason).
    pub ingest: IngestStats,
    /// Fleet-mergeable detection counters (includes the ingest totals).
    pub stats: DetectionStats,
    /// Detection-latency quantiles.
    pub latency: LatencySummary,
}

impl ServeReport {
    /// Stable JSON rendering (field order fixed by the struct).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serializable report")
    }

    /// Deterministic text summary; the `drops:` footer is the line the
    /// CI smoke job greps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "jgre serve: seed={} rate={}/s duration={:.3}s horizon={}\n",
            self.source.seed,
            self.source.events_per_sec,
            self.source.duration.as_micros() as f64 / 1e6,
            match self.horizon_us {
                Some(us) => format!("{us}µs"),
                None => "unbounded".to_owned(),
            },
        ));
        out.push_str(&format!(
            "events: offered={} accepted={} calls={} adds={}\n",
            self.ingest.offered, self.ingest.accepted, self.calls, self.adds
        ));
        match self.verdicts.last() {
            Some(last) => out.push_str(&format!(
                "verdicts: {} (last at {}µs: uid {} score {})\n",
                self.verdicts.len(),
                last.at_us,
                last.suspect.raw(),
                last.score
            )),
            None => out.push_str("verdicts: 0\n"),
        }
        out.push_str(&format!(
            "latency: p50={} p99={} max={} samples={}\n",
            fmt_us(self.latency.p50_us),
            fmt_us(self.latency.p99_us),
            fmt_us(self.latency.max_us),
            self.latency.samples
        ));
        out.push_str(&format!(
            "drops: backpressure={} rejected: checksum={} version={} malformed={}\n",
            self.ingest.dropped_backpressure,
            self.ingest.rejected_checksum,
            self.ingest.rejected_version,
            self.ingest.rejected_malformed
        ));
        out
    }
}

fn fmt_us(value: Option<u64>) -> String {
    match value {
        Some(us) => format!("{us}µs"),
        None => "-".to_owned(),
    }
}

/// The streaming defender: feed it events (framed bytes or decoded
/// [`StreamEvent`]s) and collect the [`ServeReport`].
///
/// # Example
///
/// ```
/// use jgre_defense::stream::{ServeConfig, StreamDefender, StreamEvent};
/// use jgre_sim::{SimTime, Uid};
///
/// let mut defender = StreamDefender::new(ServeConfig {
///     trigger_adds: 4,
///     ..ServeConfig::default()
/// });
/// for k in 0..4u64 {
///     defender.ingest(StreamEvent::Ipc {
///         at: SimTime::from_micros(1_000 + k * 2_000),
///         uid: Uid::new(10_061),
///         ipc_type: "IClipboard.listen".into(),
///     });
///     defender.ingest(StreamEvent::JgrAdd { at: SimTime::from_micros(1_500 + k * 2_000) });
/// }
/// let report = defender.finish().unwrap();
/// assert_eq!(report.verdicts.len(), 1);
/// assert_eq!(report.verdicts[0].suspect, Uid::new(10_061));
/// ```
#[derive(Debug)]
pub struct StreamDefender<'s> {
    config: ServeConfig,
    scorer: IncrementalScorer,
    ring: BoundedRing,
    decoder: FrameDecoder,
    ingest: IngestStats,
    latency: Histogram,
    verdicts: Vec<StreamVerdict>,
    adds_since_pass: u64,
    calls: u64,
    adds: u64,
    stats: DetectionStats,
    /// Scorer counter values already attributed to a pass.
    pairs_attributed: u64,
    records_attributed: u64,
    store: Option<&'s dyn StateStore>,
    pending_log: Vec<u8>,
    compact_requested: bool,
    io_error: Option<io::Error>,
    poisoned: bool,
}

impl<'s> StreamDefender<'s> {
    /// Creates a defender with no durable event log.
    pub fn new(config: ServeConfig) -> Self {
        let scorer = match config.horizon {
            Some(h) => IncrementalScorer::with_horizon(config.params, h),
            None => IncrementalScorer::new(config.params),
        };
        Self {
            scorer,
            ring: BoundedRing::new(config.ring_capacity, config.service_us),
            decoder: FrameDecoder::new(),
            ingest: IngestStats::new(),
            latency: Histogram::new(),
            verdicts: Vec::new(),
            adds_since_pass: 0,
            calls: 0,
            adds: 0,
            stats: DetectionStats::new(),
            pairs_attributed: 0,
            records_attributed: 0,
            store: None,
            pending_log: Vec::new(),
            compact_requested: false,
            io_error: None,
            poisoned: false,
            config,
        }
    }

    /// Creates a defender journaling accepted events into `store` (the
    /// stream wire format is the on-disk format; recovery goes through
    /// [`recover_events`]).
    pub fn with_store(config: ServeConfig, store: &'s dyn StateStore) -> Self {
        let mut defender = Self::new(config);
        defender.store = Some(store);
        defender.compact_requested = true; // first flush writes the header
        defender
    }

    /// Ingestion accounting so far.
    pub fn ingest_stats(&self) -> &IngestStats {
        &self.ingest
    }

    /// Whether a protocol rejection has fail-stopped this stream.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Feeds raw wire bytes (any chunking). After a typed rejection the
    /// stream is fail-stopped: the rejection is counted and every later
    /// byte ignored — corruption never panics and never desynchronizes
    /// scoring.
    pub fn ingest_bytes(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        self.decoder.feed(bytes);
        loop {
            match self.decoder.next_event() {
                Ok(Some(event)) => self.ingest(event),
                Ok(None) => break,
                Err(reject) => {
                    self.ingest.offered += 1;
                    self.ingest.record_reject(&reject);
                    self.poisoned = true;
                    break;
                }
            }
        }
        self.flush_log();
    }

    /// Feeds one already-decoded event.
    pub fn ingest(&mut self, event: StreamEvent) {
        self.ingest.offered += 1;
        let at = event.at();
        let Some(completion_us) = self.ring.offer(at.as_micros()) else {
            self.ingest.dropped_backpressure += 1;
            return;
        };
        self.ingest.accepted += 1;
        if self.store.is_some() {
            encode_event(&event, &mut self.pending_log);
        }
        match event {
            StreamEvent::Ipc { at, uid, ipc_type } => {
                self.calls += 1;
                self.scorer.push_ipc(uid, &ipc_type, at);
            }
            StreamEvent::JgrAdd { at } => {
                self.adds += 1;
                self.scorer.push_add(at);
                let lag_us = completion_us.saturating_sub(at.as_micros());
                self.latency.record(lag_us);
                self.adds_since_pass += 1;
                if self.adds_since_pass >= self.config.trigger_adds {
                    self.scoring_pass(at, lag_us);
                }
            }
        }
    }

    /// One scoring pass: snapshot the incremental report, emit a verdict
    /// when an app stands out, and reset the window on a verdict (the
    /// defender's post-kill reset — also the log's compaction point).
    fn scoring_pass(&mut self, at: SimTime, lag_us: u64) {
        self.adds_since_pass = 0;
        let report = self.scorer.report();
        self.stats.outcomes += 1;
        self.stats.full += 1;
        self.stats.segment_tree_scored += 1;
        self.stats.rounds += 1;
        self.stats.pairs_processed += report.pairs_processed - self.pairs_attributed;
        self.stats.records_scanned += report.records_scanned - self.records_attributed;
        self.pairs_attributed = report.pairs_processed;
        self.records_attributed = report.records_scanned;
        self.stats.response_delay_us = self.stats.response_delay_us.saturating_add(lag_us);
        let Some(top) = report.top().filter(|t| t.score > 0) else {
            return;
        };
        self.verdicts.push(StreamVerdict {
            at_us: at.as_micros(),
            suspect: top.uid,
            score: top.score,
            adds_seen: self.adds,
            latency_us: lag_us,
        });
        self.scorer.reset();
        self.pairs_attributed = 0;
        self.records_attributed = 0;
        // A verdict resets the window, so nothing before it can matter
        // to recovery: compact the event log down to its header.
        if self.store.is_some() {
            self.pending_log.clear();
            self.compact_requested = true;
        }
    }

    fn flush_log(&mut self) {
        let Some(store) = self.store else {
            return;
        };
        if self.io_error.is_some() {
            return;
        }
        let result = if self.compact_requested {
            store.replace_journal(&stream_header()).and_then(|()| {
                if self.pending_log.is_empty() {
                    Ok(())
                } else {
                    store.append_journal(&self.pending_log)
                }
            })
        } else if self.pending_log.is_empty() {
            Ok(())
        } else {
            store.append_journal(&self.pending_log)
        };
        match result {
            Ok(()) => {
                self.compact_requested = false;
                self.pending_log.clear();
            }
            Err(e) => self.io_error = Some(e),
        }
    }

    /// Finishes the run: flushes the log and folds the ingest totals
    /// into the detection counters.
    pub fn finish(mut self) -> Result<ServeReport, PersistError> {
        self.flush_log();
        if let Some(e) = self.io_error {
            return Err(PersistError::Io(e));
        }
        let mut stats = self.stats;
        stats.absorb_ingest(&self.ingest);
        Ok(ServeReport {
            source: self.config.source,
            params: self.config.params,
            horizon_us: self.config.horizon.map(|h| h.as_micros()),
            trigger_adds: self.config.trigger_adds,
            ring_capacity: self.config.ring_capacity,
            service_us: self.config.service_us,
            calls: self.calls,
            adds: self.adds,
            verdicts: self.verdicts,
            ingest: self.ingest,
            stats,
            latency: LatencySummary::from_histogram(&self.latency),
        })
    }
}

/// Maps one synthesized source event to its wire form.
fn to_stream_event(source: &EventSource, at: SimTime, kind: SourceEventKind) -> StreamEvent {
    match kind {
        SourceEventKind::Call { uid, interface } => StreamEvent::Ipc {
            at,
            uid,
            ipc_type: source.interface_label(interface),
        },
        SourceEventKind::Add => StreamEvent::JgrAdd { at },
    }
}

/// Runs a full serve session against an in-memory store.
pub fn run_serve(config: &ServeConfig) -> Result<ServeReport, PersistError> {
    let store = crate::MemoryStore::new();
    run_serve_with_store(config, &store)
}

/// Runs a full serve session, journaling accepted events into `store`.
///
/// With `threads ≥ 2` the producer (source + encoder) runs on its own OS
/// thread and ships chunks over a bounded channel — real backpressure,
/// but lossless, so the report is identical to the inline path.
pub fn run_serve_with_store(
    config: &ServeConfig,
    store: &dyn StateStore,
) -> Result<ServeReport, PersistError> {
    let mut defender = StreamDefender::with_store(*config, store);
    let chunk_frames = config.chunk_frames.max(1);
    if config.threads >= 2 {
        // The channel bounds producer run-ahead; MemoryStore is !Send, so
        // journaling stays on the consumer side.
        let source_config = config.source;
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(4);
        let producer = thread::spawn(move || {
            let mut source = EventSource::new(source_config);
            let mut chunk = stream_header();
            let mut frames = 0usize;
            while let Some(event) = source.next() {
                let event = to_stream_event(&source, event.at, event.kind);
                encode_event(&event, &mut chunk);
                frames += 1;
                if frames >= chunk_frames {
                    if tx.send(std::mem::take(&mut chunk)).is_err() {
                        return;
                    }
                    frames = 0;
                }
            }
            if !chunk.is_empty() {
                let _ = tx.send(chunk);
            }
        });
        for chunk in rx {
            defender.ingest_bytes(&chunk);
        }
        producer.join().expect("producer thread panicked");
    } else {
        let mut source = EventSource::new(config.source);
        let mut chunk = stream_header();
        let mut frames = 0usize;
        while let Some(event) = source.next() {
            let event = to_stream_event(&source, event.at, event.kind);
            encode_event(&event, &mut chunk);
            frames += 1;
            if frames >= chunk_frames {
                defender.ingest_bytes(&std::mem::take(&mut chunk));
                frames = 0;
            }
        }
        defender.ingest_bytes(&chunk);
    }
    defender.finish()
}

/// What recovery salvaged from a stream journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredStream {
    /// Events decoded before the end (or the first corruption).
    pub events: Vec<StreamEvent>,
    /// Trailing bytes that did not form a whole frame — the torn tail a
    /// crash mid-append leaves.
    pub torn_bytes: usize,
    /// The typed rejection that stopped replay, if any (a torn tail is
    /// *not* a rejection).
    pub reject: Option<FrameReject>,
}

/// Replays a stream journal, salvaging every whole, checksummed frame
/// before the first corruption and tolerating a torn tail. An empty
/// journal (never written) recovers to no events.
pub fn recover_events(store: &dyn StateStore) -> Result<RecoveredStream, PersistError> {
    let bytes = store.load_journal().map_err(PersistError::Io)?;
    if bytes.is_empty() {
        return Ok(RecoveredStream {
            events: Vec::new(),
            torn_bytes: 0,
            reject: None,
        });
    }
    let mut decoder = FrameDecoder::new();
    decoder.feed(&bytes);
    let mut events = Vec::new();
    let mut reject = None;
    loop {
        match decoder.next_event() {
            Ok(Some(event)) => events.push(event),
            Ok(None) => break,
            Err(r) => {
                reject = Some(r);
                break;
            }
        }
    }
    Ok(RecoveredStream {
        events,
        torn_bytes: decoder.pending_bytes(),
        reject,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    fn quick_config() -> ServeConfig {
        ServeConfig {
            source: SourceConfig {
                events_per_sec: 4_000,
                duration: SimDuration::from_millis(250),
                ..SourceConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serve_is_deterministic() {
        let config = quick_config();
        let a = run_serve(&config).unwrap();
        let b = run_serve(&config).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.ingest.accepted > 0);
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let base = quick_config();
        let inline = run_serve(&base).unwrap();
        for threads in [2u32, 4] {
            let threaded = run_serve(&ServeConfig { threads, ..base }).unwrap();
            assert_eq!(inline, threaded, "threads={threads}");
        }
        // Chunk boundaries are transport, not semantics.
        let odd_chunks = run_serve(&ServeConfig {
            chunk_frames: 7,
            ..base
        })
        .unwrap();
        assert_eq!(inline, odd_chunks);
    }

    #[test]
    fn attacker_is_the_suspect() {
        let report = run_serve(&quick_config()).unwrap();
        assert!(!report.verdicts.is_empty(), "attack must trigger verdicts");
        let attacker = quick_config().source.attacker_uid();
        for verdict in &report.verdicts {
            assert_eq!(verdict.suspect, attacker);
            assert!(verdict.score > 0);
        }
        assert_eq!(report.latency.samples, report.adds);
        assert!(report.latency.p50_us.is_some());
    }

    #[test]
    fn overload_drops_are_counted_and_deterministic() {
        // Service cost far above the arrival gap with a tiny ring: the
        // stream must overrun and the drops must be accounted, not lost.
        let config = ServeConfig {
            ring_capacity: 16,
            service_us: 900,
            ..quick_config()
        };
        let a = run_serve(&config).unwrap();
        assert!(
            a.ingest.dropped_backpressure > 0,
            "expected overload drops, got {:?}",
            a.ingest
        );
        assert_eq!(
            a.ingest.offered,
            a.ingest.accepted + a.ingest.dropped_backpressure
        );
        assert_eq!(a.stats.ingest_dropped, a.ingest.dropped_backpressure);
        let b = run_serve(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn journal_compacts_at_verdicts_and_recovers() {
        let store = MemoryStore::new();
        let config = quick_config();
        let report = run_serve_with_store(&config, &store).unwrap();
        assert!(!report.verdicts.is_empty());
        let recovered = recover_events(&store).unwrap();
        assert_eq!(recovered.reject, None);
        assert_eq!(recovered.torn_bytes, 0);
        // Compaction at the last verdict: the journal holds only events
        // accepted after it.
        let last_verdict_at = report.verdicts.last().unwrap().at_us;
        assert!(
            (recovered.events.len() as u64) < report.ingest.accepted,
            "journal must have compacted"
        );
        for event in &recovered.events {
            assert!(event.at().as_micros() >= last_verdict_at);
        }
    }

    #[test]
    fn torn_journal_tail_recovers_cleanly() {
        let store = MemoryStore::new();
        let config = quick_config();
        run_serve_with_store(&config, &store).unwrap();
        let mut bytes = store.journal_bytes();
        let whole = recover_events(&store).unwrap();
        assert!(whole.events.len() > 1, "need frames to tear");
        // Tear mid-way through the final frame.
        bytes.truncate(bytes.len() - 5);
        store.set_journal_bytes(bytes);
        let torn = recover_events(&store).unwrap();
        assert_eq!(torn.reject, None);
        assert!(torn.torn_bytes > 0);
        assert_eq!(torn.events.len(), whole.events.len() - 1);
        assert_eq!(torn.events[..], whole.events[..whole.events.len() - 1]);
    }

    #[test]
    fn corrupt_journal_byte_is_a_typed_stop_not_a_panic() {
        let store = MemoryStore::new();
        run_serve_with_store(&quick_config(), &store).unwrap();
        let mut bytes = store.journal_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        store.set_journal_bytes(bytes);
        let recovered = recover_events(&store).unwrap();
        // Either the flipped byte lands in a length field (framing shifts,
        // later frames look torn) or a checksum catches it.
        assert!(recovered.reject.is_some() || recovered.torn_bytes > 0);
    }

    #[test]
    fn poisoned_stream_counts_one_rejection_and_ignores_the_rest() {
        let mut defender = StreamDefender::new(ServeConfig::default());
        let mut bytes = stream_header();
        bytes[8] = 99; // stale version
        defender.ingest_bytes(&bytes);
        assert!(defender.is_poisoned());
        assert_eq!(defender.ingest_stats().rejected_version, 1);
        defender.ingest_bytes(&stream_header());
        assert_eq!(defender.ingest_stats().rejected_version, 1);
        let report = defender.finish().unwrap();
        assert_eq!(report.ingest.accepted, 0);
        assert_eq!(report.stats.ingest_rejected, 1);
    }
}
