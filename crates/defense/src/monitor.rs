//! Phase 1: the runtime-side JGR monitor.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use jgre_art::{JgrEvent, JgrEventKind, JgrObserver};
use jgre_sim::{apply_skew, FaultLayer, JgrLogAction, Pid, SimTime};

use crate::checkpoint::{MonitorSnapshot, WatchSnapshot};
use crate::journal::{Journal, JournalRecord};
use crate::DefenseError;

#[derive(Debug, Default)]
struct WatchState {
    current: usize,
    recording_since: Option<SimTime>,
    add_times: Vec<SimTime>,
    remove_times: Vec<SimTime>,
    alarmed: bool,
}

#[derive(Debug)]
struct Inner {
    record_threshold: usize,
    trigger_threshold: usize,
    watches: BTreeMap<Pid, WatchState>,
    faults: Option<FaultLayer>,
    journal: Option<Rc<RefCell<Journal>>>,
}

/// Observes JGR traffic on every runtime it is registered with.
///
/// Mirrors the paper's extended Android Runtime: below the record
/// threshold it only tracks the current table size (no per-event cost);
/// once a process crosses it, event timestamps are recorded; crossing the
/// trigger threshold raises the alarm the defender polls for.
///
/// Under fault injection the *timestamp log* can be truncated or
/// corrupted, but the table-size tracking (and therefore the alarm) stays
/// accurate — the runtime always knows how many entries it holds, it is
/// only the event journal that is lossy.
///
/// # Example
///
/// ```
/// use std::rc::Rc;
/// use jgre_defense::JgrMonitor;
/// use jgre_framework::{System, SystemConfig};
///
/// let mut system = System::boot(0);
/// let monitor = Rc::new(JgrMonitor::new(4_000, 12_000).unwrap());
/// system.register_jgr_observer(monitor.clone());
/// assert!(monitor.alarmed_pids().is_empty());
/// ```
#[derive(Debug)]
pub struct JgrMonitor {
    inner: RefCell<Inner>,
}

impl JgrMonitor {
    /// Creates a monitor with the given thresholds.
    ///
    /// # Errors
    ///
    /// [`DefenseError::InvalidThresholds`] unless
    /// `record_threshold < trigger_threshold`.
    pub fn new(record_threshold: usize, trigger_threshold: usize) -> Result<Self, DefenseError> {
        if record_threshold >= trigger_threshold {
            return Err(DefenseError::InvalidThresholds {
                record: record_threshold,
                trigger: trigger_threshold,
            });
        }
        Ok(Self {
            inner: RefCell::new(Inner {
                record_threshold,
                trigger_threshold,
                watches: BTreeMap::new(),
                faults: None,
                journal: None,
            }),
        })
    }

    /// Convenience: a monitor with the paper's 4000/12000 thresholds.
    pub fn with_paper_thresholds() -> Self {
        Self::new(crate::RECORD_THRESHOLD, crate::TRIGGER_THRESHOLD)
            .expect("the paper's 4000 < 12000 thresholds are statically valid")
    }

    /// Routes this monitor's event journal through a fault layer (the
    /// truncate/corrupt channels). Installed by the defender so the
    /// monitor shares the device's fault stream.
    pub fn set_fault_layer(&self, faults: FaultLayer) {
        self.inner.borrow_mut().faults = Some(faults);
    }

    /// Routes every observed event through a write-ahead journal before
    /// applying it. Installed by the crash-consistent defender *after*
    /// replay, so recovery does not re-journal what it replays.
    pub fn attach_journal(&self, journal: Rc<RefCell<Journal>>) {
        self.inner.borrow_mut().journal = Some(journal);
    }

    /// Pids whose alarm is raised.
    pub fn alarmed_pids(&self) -> Vec<Pid> {
        self.inner
            .borrow()
            .watches
            .iter()
            .filter(|(_, w)| w.alarmed)
            .map(|(pid, _)| *pid)
            .collect()
    }

    /// Current JGR table size as observed for `pid`.
    pub fn current_count(&self, pid: Pid) -> usize {
        self.inner
            .borrow()
            .watches
            .get(&pid)
            .map(|w| w.current)
            .unwrap_or(0)
    }

    /// Recorded add timestamps for `pid` (empty below the record
    /// threshold). Under corruption faults these are not guaranteed to be
    /// sorted; consumers that need order must sort (and should report the
    /// degradation).
    pub fn add_times(&self, pid: Pid) -> Vec<SimTime> {
        self.inner
            .borrow()
            .watches
            .get(&pid)
            .map(|w| w.add_times.clone())
            .unwrap_or_default()
    }

    /// Recorded remove timestamps for `pid`.
    pub fn remove_times(&self, pid: Pid) -> Vec<SimTime> {
        self.inner
            .borrow()
            .watches
            .get(&pid)
            .map(|w| w.remove_times.clone())
            .unwrap_or_default()
    }

    /// When recording started for `pid`, if it is recording.
    pub fn recording_since(&self, pid: Pid) -> Option<SimTime> {
        self.inner
            .borrow()
            .watches
            .get(&pid)
            .and_then(|w| w.recording_since)
    }

    /// Clears the alarm and the recorded events for `pid` (after a
    /// recovery pass). Recording restarts automatically if the table is
    /// still above the record threshold at the next event.
    pub fn reset(&self, pid: Pid) {
        let mut inner = self.inner.borrow_mut();
        if let Some(w) = inner.watches.get_mut(&pid) {
            w.alarmed = false;
            w.recording_since = None;
            w.add_times.clear();
            w.remove_times.clear();
        }
    }

    /// Serializable snapshot of every watch (checkpointing).
    pub fn snapshot(&self) -> MonitorSnapshot {
        let inner = self.inner.borrow();
        MonitorSnapshot {
            watches: inner
                .watches
                .iter()
                .map(|(&pid, w)| WatchSnapshot {
                    pid,
                    current: w.current,
                    recording_since: w.recording_since,
                    add_times: w.add_times.clone(),
                    remove_times: w.remove_times.clone(),
                    alarmed: w.alarmed,
                })
                .collect(),
        }
    }

    /// Replaces every watch with the snapshot's state (recovery from a
    /// checkpoint). Thresholds and the fault layer are untouched.
    pub fn restore(&self, snapshot: &MonitorSnapshot) {
        let mut inner = self.inner.borrow_mut();
        inner.watches = snapshot
            .watches
            .iter()
            .map(|w| {
                (
                    w.pid,
                    WatchState {
                        current: w.current,
                        recording_since: w.recording_since,
                        add_times: w.add_times.clone(),
                        remove_times: w.remove_times.clone(),
                        alarmed: w.alarmed,
                    },
                )
            })
            .collect();
    }

    /// Re-applies a journaled event during recovery. The journal already
    /// recorded the fault layer's verdict (`logged_at`), so replay draws
    /// nothing from the fault RNG and never re-journals.
    pub(crate) fn replay_event(
        &self,
        pid: Pid,
        kind: JgrEventKind,
        at: SimTime,
        logged_at: Option<SimTime>,
        table_size: usize,
    ) {
        let mut inner = self.inner.borrow_mut();
        Self::apply(&mut inner, pid, kind, at, logged_at, table_size);
    }

    /// The shared state transition for one event: live observation and
    /// journal replay both land here, keeping them bit-identical.
    fn apply(
        inner: &mut Inner,
        pid: Pid,
        kind: JgrEventKind,
        at: SimTime,
        logged_at: Option<SimTime>,
        table_size: usize,
    ) {
        let record_threshold = inner.record_threshold;
        let trigger_threshold = inner.trigger_threshold;
        let watch = inner.watches.entry(pid).or_default();
        watch.current = table_size;
        if watch.current >= record_threshold {
            if watch.recording_since.is_none() {
                watch.recording_since = Some(at);
            }
            if let Some(at) = logged_at {
                match kind {
                    JgrEventKind::Add => watch.add_times.push(at),
                    JgrEventKind::Remove => watch.remove_times.push(at),
                }
            }
        } else if watch.recording_since.is_some() && !watch.alarmed {
            // The table drained on its own (benign churn): stop recording
            // and drop the buffers.
            watch.recording_since = None;
            watch.add_times.clear();
            watch.remove_times.clear();
        }
        if watch.current >= trigger_threshold {
            watch.alarmed = true;
        }
    }
}

impl JgrObserver for JgrMonitor {
    fn on_jgr_event(&self, event: JgrEvent) {
        let mut inner = self.inner.borrow_mut();
        // Decide the journal fate up front (one immutable borrow of the
        // shared layer); table-size tracking below never consults it.
        let action = match inner.faults.as_ref().filter(|f| f.is_active()) {
            Some(f) => f.jgr_log_action(),
            None => JgrLogAction::Record,
        };
        let logged_at = match action {
            JgrLogAction::Record => Some(event.at),
            JgrLogAction::Lose => None,
            JgrLogAction::CorruptBy(skew) => Some(apply_skew(event.at, skew)),
        };
        // Write-ahead: the durable record (with the fault verdict baked
        // in) lands before the in-memory transition it describes.
        if let Some(journal) = inner.journal.clone() {
            journal.borrow_mut().append(&JournalRecord::Event {
                pid: event.pid,
                kind: event.kind,
                at: event.at,
                logged_at,
                table_size: event.table_size_after,
            });
        }
        Self::apply(
            &mut inner,
            event.pid,
            event.kind,
            event.at,
            logged_at,
            event.table_size_after,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_sim::{FaultIntensity, FaultKind, FaultPlan, SimTime};

    fn event(pid: u32, at: u64, kind: JgrEventKind, size: usize) -> JgrEvent {
        JgrEvent {
            at: SimTime::from_micros(at),
            pid: Pid::new(pid),
            kind,
            table_size_after: size,
        }
    }

    fn monitor(record: usize, trigger: usize) -> JgrMonitor {
        JgrMonitor::new(record, trigger).expect("test thresholds are valid")
    }

    #[test]
    fn records_only_above_threshold() {
        let m = monitor(10, 20);
        for i in 1..=9 {
            m.on_jgr_event(event(1, i, JgrEventKind::Add, i as usize));
        }
        assert!(m.add_times(Pid::new(1)).is_empty());
        m.on_jgr_event(event(1, 10, JgrEventKind::Add, 10));
        m.on_jgr_event(event(1, 11, JgrEventKind::Add, 11));
        assert_eq!(m.add_times(Pid::new(1)).len(), 2);
        assert!(m.alarmed_pids().is_empty());
    }

    #[test]
    fn alarm_raises_at_trigger() {
        let m = monitor(5, 8);
        for i in 1..=8 {
            m.on_jgr_event(event(2, i, JgrEventKind::Add, i as usize));
        }
        assert_eq!(m.alarmed_pids(), vec![Pid::new(2)]);
        assert_eq!(m.current_count(Pid::new(2)), 8);
    }

    #[test]
    fn benign_drain_stops_recording() {
        let m = monitor(5, 100);
        for i in 1..=6 {
            m.on_jgr_event(event(1, i, JgrEventKind::Add, i as usize));
        }
        assert!(!m.add_times(Pid::new(1)).is_empty());
        // Table shrinks below the record threshold.
        m.on_jgr_event(event(1, 7, JgrEventKind::Remove, 4));
        assert!(m.add_times(Pid::new(1)).is_empty());
        assert!(m.recording_since(Pid::new(1)).is_none());
    }

    #[test]
    fn reset_clears_alarm_and_buffers() {
        let m = monitor(2, 4);
        for i in 1..=4 {
            m.on_jgr_event(event(3, i, JgrEventKind::Add, i as usize));
        }
        assert!(!m.alarmed_pids().is_empty());
        m.reset(Pid::new(3));
        assert!(m.alarmed_pids().is_empty());
        assert!(m.add_times(Pid::new(3)).is_empty());
        // Still above threshold: next event restarts recording.
        m.on_jgr_event(event(3, 5, JgrEventKind::Add, 5));
        assert_eq!(m.add_times(Pid::new(3)).len(), 1);
    }

    #[test]
    fn thresholds_validated_as_typed_error() {
        assert_eq!(
            JgrMonitor::new(10, 10).err(),
            Some(DefenseError::InvalidThresholds {
                record: 10,
                trigger: 10
            })
        );
    }

    #[test]
    fn truncation_loses_timestamps_but_never_the_alarm() {
        let m = monitor(2, 50);
        m.set_fault_layer(FaultLayer::new(
            FaultPlan::single(FaultKind::JgrTruncate, FaultIntensity::Severe),
            11,
        ));
        for i in 1..=60 {
            m.on_jgr_event(event(4, i, JgrEventKind::Add, i as usize));
        }
        let recorded = m.add_times(Pid::new(4)).len();
        assert!(recorded < 59, "severe truncation must lose timestamps");
        assert!(recorded > 0, "severe truncation is not total loss");
        // The alarm rides on table_size_after, which faults cannot touch.
        assert_eq!(m.alarmed_pids(), vec![Pid::new(4)]);
        assert_eq!(m.current_count(Pid::new(4)), 60);
    }

    #[test]
    fn corruption_can_unsort_the_journal() {
        let m = monitor(2, 1_000);
        m.set_fault_layer(FaultLayer::new(
            FaultPlan::single(FaultKind::JgrCorrupt, FaultIntensity::Severe),
            13,
        ));
        for i in 0..200u64 {
            m.on_jgr_event(event(5, 10_000 + i * 10, JgrEventKind::Add, 2 + i as usize));
        }
        let times = m.add_times(Pid::new(5));
        assert_eq!(times.len(), 200, "corruption keeps every event");
        assert!(
            times.windows(2).any(|w| w[0] > w[1]),
            "±5 ms skew on 10 µs spacing must unsort somewhere"
        );
    }
}
