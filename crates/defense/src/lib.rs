//! The paper's JGRE defense (§V): runtime monitoring, IPC↔JGR
//! correlation scoring, and LMK-style recovery.
//!
//! Three phases, exactly as Figure 7 lays them out:
//!
//! 1. **Capture** — [`JgrMonitor`] extends every runtime (through the
//!    [`jgre_art::JgrObserver`] hook) and starts recording JGR event
//!    timestamps once a process crosses the *record* threshold (4000
//!    entries); crossing the *trigger* threshold (12000) raises an alarm.
//! 2. **Rank** — [`segment_tree_scores`] implements Algorithm 1: for every app and
//!    every IPC type it invoked, slide each `(IPC call, JGR add)` pair's
//!    possible `Delay ∈ [JGRTime−IPCTime, JGRTime−IPCTime+Δ]` interval
//!    into a histogram and take the best-supported delay; the app's
//!    `jgre_score` is the sum over its IPC types. The histogram is backed
//!    by a lazy [`SegmentTree`] (range add / global max), the paper's
//!    §V-D.2 memory optimisation; a naive array implementation is kept
//!    for the ablation bench.
//! 3. **Recover** — [`JgreDefender::poll`] kills the top-ranked apps
//!    (`am force-stop`) until the victim's JGR table returns to a normal
//!    level, mirroring the LMK contract that any app may be killed to
//!    reclaim exhausted resources.
//!
//! Under fault injection ([`jgre_sim::FaultLayer`]) the pipeline degrades
//! instead of failing: low IPC-log coverage switches scoring to the coarse
//! call-count ranking, failed kills are retried with backoff, and every
//! reduction in confidence is reported as a typed
//! [`DegradationCause`] inside [`DetectionOutcome::Degraded`].
//!
//! # Example
//!
//! ```
//! use jgre_defense::{DefenderConfig, JgreDefender};
//! use jgre_framework::{System, SystemConfig};
//!
//! let mut system = System::boot_with(SystemConfig {
//!     jgr_capacity: Some(2_000),
//!     ..SystemConfig::default()
//! });
//! // Thresholds scaled to the reduced capacity for the example.
//! let config = DefenderConfig {
//!     record_threshold: 200,
//!     trigger_threshold: 600,
//!     normal_level: 300,
//!     ..DefenderConfig::default()
//! };
//! let defender = JgreDefender::install(&mut system, config).unwrap();
//! assert!(defender.poll(&mut system).is_none(), "quiet system, no alarm");
//! ```

#![deny(missing_docs)]

mod checkpoint;
mod crashsafe;
mod defender;
mod error;
mod journal;
mod monitor;
mod naive_defense;
mod scorer;
mod segment_tree;
pub mod stream;
mod streaming;

pub use checkpoint::{
    config_fingerprint, decode_checkpoint, encode_checkpoint, CheckpointReject, DefenderCheckpoint,
    MonitorSnapshot, WatchSnapshot, CHECKPOINT_MAGIC, CHECKPOINT_SCHEMA_VERSION,
};
pub use crashsafe::{CrashConsistentConfig, CrashConsistentDefender, RecoveryStats};
pub use defender::{
    DefenderConfig, DegradationCause, DetectionOutcome, DetectionReport, JgreDefender, ScoringKind,
};
pub use error::DefenseError;
pub use journal::{
    checksum, DirStore, Journal, JournalRecord, MemoryStore, PersistError, ReopenReport,
    StateStore, JOURNAL_MAGIC, JOURNAL_SCHEMA_VERSION,
};
pub use monitor::JgrMonitor;
pub use naive_defense::{CallCountDefense, CallCountDetection};
pub use scorer::{
    naive_scores, segment_tree_scores, IncrementalScorer, ScoreParams, ScoreReport, UidScore,
};
pub use segment_tree::SegmentTree;
pub use streaming::DetectionStats;

/// Record threshold: the runtime starts logging JGR event times once a
/// process holds this many entries (§V-B).
pub const RECORD_THRESHOLD: usize = 4_000;

/// Trigger threshold: the runtime alerts the defender once this many
/// entries exist (§V-B).
pub const TRIGGER_THRESHOLD: usize = 12_000;
