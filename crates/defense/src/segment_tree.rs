//! A lazily-propagated segment tree over delay bins: range add, global /
//! range max. This is the data structure §V-D.2 adopts to keep Algorithm
//! 1's interval bookkeeping cheap.

/// Range-add / range-max segment tree over `n` fixed bins.
///
/// # Example
///
/// ```
/// use jgre_defense::SegmentTree;
///
/// let mut tree = SegmentTree::new(10);
/// tree.range_add(2, 5, 1);
/// tree.range_add(4, 8, 2);
/// assert_eq!(tree.global_max(), 3); // bins 4..=5 hold 1+2
/// assert_eq!(tree.range_max(6, 9), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentTree {
    n: usize,
    max: Vec<i64>,
    lazy: Vec<i64>,
}

impl SegmentTree {
    /// Creates a tree over `n` bins, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "segment tree needs at least one bin");
        Self {
            n,
            max: vec![0; 4 * n],
            lazy: vec![0; 4 * n],
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree has no bins (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `value` to every bin in `lo..=hi` (clamped to the bin range).
    ///
    /// `value` may be negative: the incremental correlator retracts an
    /// earlier vote by replaying the identical range with the sign
    /// flipped. As long as every negative add mirrors a previous positive
    /// one, no bin ever dips below zero.
    pub fn range_add(&mut self, lo: usize, hi: usize, value: i64) {
        if lo > hi || lo >= self.n {
            return;
        }
        let hi = hi.min(self.n - 1);
        self.add_rec(1, 0, self.n - 1, lo, hi, value);
    }

    fn add_rec(&mut self, node: usize, nl: usize, nr: usize, lo: usize, hi: usize, value: i64) {
        if lo <= nl && nr <= hi {
            self.max[node] += value;
            self.lazy[node] += value;
            return;
        }
        let mid = (nl + nr) / 2;
        if lo <= mid {
            self.add_rec(node * 2, nl, mid, lo, hi.min(mid), value);
        }
        if hi > mid {
            self.add_rec(node * 2 + 1, mid + 1, nr, lo.max(mid + 1), hi, value);
        }
        self.max[node] = self.lazy[node] + self.max[node * 2].max(self.max[node * 2 + 1]);
    }

    /// Maximum over all bins (clamped at zero).
    pub fn global_max(&self) -> u64 {
        self.max[1].max(0) as u64
    }

    /// Maximum over `lo..=hi` (clamped to the bin range and at zero).
    pub fn range_max(&self, lo: usize, hi: usize) -> u64 {
        if lo > hi || lo >= self.n {
            return 0;
        }
        let hi = hi.min(self.n - 1);
        self.max_rec(1, 0, self.n - 1, lo, hi).max(0) as u64
    }

    fn max_rec(&self, node: usize, nl: usize, nr: usize, lo: usize, hi: usize) -> i64 {
        if lo <= nl && nr <= hi {
            return self.max[node];
        }
        let mid = (nl + nr) / 2;
        let mut best = i64::MIN;
        if lo <= mid {
            best = best.max(self.max_rec(node * 2, nl, mid, lo, hi.min(mid)));
        }
        if hi > mid {
            best = best.max(self.max_rec(node * 2 + 1, mid + 1, nr, lo.max(mid + 1), hi));
        }
        best + self.lazy[node]
    }

    /// Resets every bin to zero (cheaper than reallocating between IPC
    /// types).
    pub fn clear(&mut self) {
        self.max.fill(0);
        self.lazy.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bin() {
        let mut t = SegmentTree::new(1);
        t.range_add(0, 0, 5);
        assert_eq!(t.global_max(), 5);
        assert_eq!(t.range_max(0, 0), 5);
    }

    #[test]
    fn overlapping_ranges_accumulate() {
        let mut t = SegmentTree::new(100);
        t.range_add(0, 99, 1);
        t.range_add(50, 60, 2);
        t.range_add(55, 55, 4);
        assert_eq!(t.global_max(), 7);
        assert_eq!(t.range_max(0, 49), 1);
        assert_eq!(t.range_max(50, 54), 3);
        assert_eq!(t.range_max(55, 55), 7);
    }

    #[test]
    fn out_of_range_requests_clamp() {
        let mut t = SegmentTree::new(8);
        t.range_add(6, 100, 3);
        assert_eq!(t.range_max(7, 7), 3);
        t.range_add(100, 200, 9); // entirely out of range: ignored
        assert_eq!(t.global_max(), 3);
        assert_eq!(t.range_max(9, 12), 0);
    }

    #[test]
    fn negative_adds_retract_prior_votes() {
        let mut t = SegmentTree::new(32);
        t.range_add(4, 10, 1);
        t.range_add(8, 14, 1);
        assert_eq!(t.global_max(), 2);
        t.range_add(4, 10, -1);
        assert_eq!(t.global_max(), 1);
        assert_eq!(t.range_max(4, 7), 0);
        assert_eq!(t.range_max(8, 14), 1);
        t.range_add(8, 14, -1);
        assert_eq!(t.global_max(), 0);
    }

    #[test]
    fn interleaved_retractions_match_naive() {
        // Adds and their exact inverses, interleaved with fresh adds, must
        // track a plain array at every step.
        let n = 64;
        let mut tree = SegmentTree::new(n);
        let mut naive = vec![0i64; n];
        let mut pending: Vec<(usize, usize)> = Vec::new();
        let mut state = 0x9e37_79b9_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for step in 0..400 {
            let a = next() % n;
            let b = next() % n;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            tree.range_add(lo, hi, 1);
            for slot in &mut naive[lo..=hi] {
                *slot += 1;
            }
            pending.push((lo, hi));
            if step % 3 == 2 {
                let (lo, hi) = pending.remove(next() % pending.len());
                tree.range_add(lo, hi, -1);
                for slot in &mut naive[lo..=hi] {
                    *slot -= 1;
                }
            }
            assert_eq!(tree.global_max() as i64, *naive.iter().max().unwrap());
        }
    }

    #[test]
    fn clear_resets() {
        let mut t = SegmentTree::new(16);
        t.range_add(0, 15, 7);
        t.clear();
        assert_eq!(t.global_max(), 0);
    }

    #[test]
    fn matches_naive_model() {
        // Deterministic pseudo-random workload cross-checked against a
        // plain array.
        let n = 257;
        let mut tree = SegmentTree::new(n);
        let mut naive = vec![0u64; n];
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..500 {
            let a = next() % n;
            let b = next() % n;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let v = (next() % 5 + 1) as i64;
            tree.range_add(lo, hi, v);
            for slot in &mut naive[lo..=hi] {
                *slot += v as u64;
            }
            assert_eq!(tree.global_max(), *naive.iter().max().unwrap());
            let qa = next() % n;
            let qb = next() % n;
            let (ql, qh) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            assert_eq!(
                tree.range_max(ql, qh),
                *naive[ql..=qh].iter().max().unwrap()
            );
        }
    }
}
