//! Typed errors for the defense stack.
//!
//! The chaos experiments drive the defender with deliberately broken
//! inputs; every formerly-panicking validation on that path now surfaces
//! as a [`DefenseError`] so an injected fault degrades the run instead of
//! aborting it.

use std::fmt;

/// Why a defense component refused its configuration or input.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DefenseError {
    /// `record_threshold` must be strictly below `trigger_threshold` —
    /// recording has to begin before the alarm fires or there is nothing
    /// to correlate.
    InvalidThresholds {
        /// The offered record threshold.
        record: usize,
        /// The offered trigger threshold.
        trigger: usize,
    },
    /// The escalating-window list is empty: no correlation round could
    /// ever run.
    NoWindows,
    /// The histogram bin width is zero.
    ZeroBin,
    /// The confidence fraction is not in `[0, 1]`.
    InvalidConfidence(f64),
    /// The IPC-log coverage floor is not in `[0, 1]`.
    InvalidCoverageFloor(f64),
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::InvalidThresholds { record, trigger } => write!(
                f,
                "record threshold {record} must be below trigger threshold {trigger}: \
                 recording must begin before the alarm"
            ),
            DefenseError::NoWindows => write!(f, "at least one correlation window is required"),
            DefenseError::ZeroBin => write!(f, "histogram bin width must be positive"),
            DefenseError::InvalidConfidence(c) => {
                write!(f, "confidence {c} is not a fraction in [0, 1]")
            }
            DefenseError::InvalidCoverageFloor(c) => {
                write!(f, "coverage floor {c} is not a fraction in [0, 1]")
            }
        }
    }
}

impl std::error::Error for DefenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = DefenseError::InvalidThresholds {
            record: 10,
            trigger: 10,
        };
        assert!(e.to_string().contains("before the alarm"));
        assert!(DefenseError::NoWindows.to_string().contains("window"));
        assert!(DefenseError::InvalidConfidence(1.5)
            .to_string()
            .contains("1.5"));
    }
}
