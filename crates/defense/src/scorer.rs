//! Phase 2: Algorithm 1 — the JGR scoring algorithm.
//!
//! For each app and each IPC type it invoked, every `(IPCTime, JGRTime)`
//! pair with `0 ≤ JGRTime − IPCTime ≤ window` votes for all delays in
//! `[JGRTime − IPCTime, JGRTime − IPCTime + Δ]`. The best-supported delay
//! bin is the type's count of suspicious calls (`ThisTypeMax`); an app's
//! `jgre_score` sums its types. A real attack stream concentrates its
//! votes at the interface's true `Delay`, while benign traffic spreads
//! thinly — which is why the score separates attackers from even very
//! chatty benign apps (Figures 8/9).

use std::collections::{BTreeMap, VecDeque};

use jgre_sim::{SimDuration, SimTime, Uid};
use serde::{Deserialize, Serialize};

use crate::SegmentTree;

/// Tuning of one scoring pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoreParams {
    /// The Δ uncertainty band (the paper's system-wide average is 1.8 ms;
    /// Figure 9 sweeps 79 µs / 1900 µs / 3583 µs).
    pub delta: SimDuration,
    /// Maximum believable IPC→JGR delay (the algorithm's `TimeLen`).
    pub window: SimDuration,
    /// Histogram bin width.
    pub bin: SimDuration,
}

impl Default for ScoreParams {
    fn default() -> Self {
        Self {
            delta: SimDuration::from_micros(1_800),
            window: SimDuration::from_millis(8),
            bin: SimDuration::from_micros(50),
        }
    }
}

/// One app's score.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UidScore {
    /// The app.
    pub uid: Uid,
    /// Its `jgre_score`: the summed per-type maxima — "the number of max
    /// suspicious IPC calls".
    pub score: u64,
    /// Per-IPC-type maxima, for diagnostics and the figures.
    pub per_type: Vec<(String, u64)>,
}

/// Result of one scoring pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoreReport {
    /// Scores, highest first.
    pub scores: Vec<UidScore>,
    /// `(IPCTime, JGRTime)` pairs examined — the work measure used by the
    /// response-delay model and the ablation bench.
    pub pairs_processed: u64,
    /// IPC records scanned.
    pub records_scanned: u64,
}

impl ScoreReport {
    /// The highest-scoring app, if any app had IPC traffic.
    pub fn top(&self) -> Option<&UidScore> {
        self.scores.first()
    }
}

/// Computes Algorithm 1 with the segment-tree histogram (the deployed
/// configuration).
///
/// Since the streaming defender landed, this is a thin wrapper over
/// [`IncrementalScorer`]: the batch call seeds every IPC call into the
/// correlator, streams the JGR adds through it, and snapshots the report.
/// Batch and streaming verdicts are therefore equal *by construction* —
/// they execute the same vote arithmetic — while [`naive_scores`] stays an
/// independent flat-array implementation for real differential power.
pub fn segment_tree_scores(
    ipc_by_uid: &BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>,
    jgr_adds: &[SimTime],
    params: ScoreParams,
) -> ScoreReport {
    let mut scorer = IncrementalScorer::new(params);
    for (&uid, types) in ipc_by_uid {
        scorer.track_app(uid);
        for (ipc_type, calls) in types {
            for &call in calls {
                scorer.push_ipc(uid, ipc_type, call);
            }
        }
    }
    for &add in jgr_adds {
        scorer.push_add(add);
    }
    scorer.report()
}

/// Computes Algorithm 1 with a flat array histogram (the ablation
/// baseline §V-D.2 compares against).
pub fn naive_scores(
    ipc_by_uid: &BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>,
    jgr_adds: &[SimTime],
    params: ScoreParams,
) -> ScoreReport {
    assert!(params.bin.as_micros() > 0, "bin width must be positive");
    let bins = (params.window.as_micros() / params.bin.as_micros()) as usize + 2;
    let delta_bins = (params.delta.as_micros() / params.bin.as_micros()) as usize;
    let mut naive = vec![0u64; bins];
    let mut pairs_processed = 0u64;
    let mut records_scanned = 0u64;
    let mut scores: Vec<UidScore> = Vec::new();

    for (&uid, types) in ipc_by_uid {
        let mut per_type = Vec::new();
        let mut total = 0u64;
        for (ipc_type, calls) in types {
            records_scanned += calls.len() as u64;
            naive.fill(0);
            let mut any = false;
            // Both series are time-ordered; a moving lower bound keeps the
            // pairing linear in (calls + adds + pairs).
            let mut start = 0usize;
            for &add in jgr_adds {
                let window_floor =
                    SimTime::from_micros(add.as_micros().saturating_sub(params.window.as_micros()));
                while start < calls.len() && calls[start] < window_floor {
                    start += 1;
                }
                let mut i = start;
                while i < calls.len() && calls[i] <= add {
                    let min_delay = (add - calls[i]).as_micros();
                    let lo = (min_delay / params.bin.as_micros()) as usize;
                    let hi = lo + delta_bins;
                    for slot in naive[lo.min(bins - 1)..=hi.min(bins - 1)].iter_mut() {
                        *slot += 1;
                    }
                    pairs_processed += 1;
                    any = true;
                    i += 1;
                }
            }
            let this_type_max = if !any {
                0
            } else {
                *naive.iter().max().expect("bins > 0")
            };
            if this_type_max > 0 {
                per_type.push((ipc_type.clone(), this_type_max));
            }
            total += this_type_max;
        }
        scores.push(UidScore {
            uid,
            score: total,
            per_type,
        });
    }
    scores.sort_by(|a, b| b.score.cmp(&a.score).then(a.uid.cmp(&b.uid)));
    ScoreReport {
        scores,
        pairs_processed,
        records_scanned,
    }
}

/// Live per-IPC-type correlation state: the delay histogram, the calls
/// still inside the pairing window, and the votes awaiting retraction.
#[derive(Debug, Clone)]
struct TypeState {
    tree: SegmentTree,
    /// Calls not yet aged out of the window, oldest first. The front is
    /// popped the instant an add's window floor passes it — the moving
    /// lower bound of the batch pairing, made persistent.
    calls: VecDeque<SimTime>,
    /// Ring of pending vote retractions `(expires_at, lo, hi)`, expiry-
    /// ordered because votes are appended in add order. Only populated
    /// when a horizon is set.
    retractions: VecDeque<(SimTime, usize, usize)>,
}

impl TypeState {
    fn new(bins: usize) -> Self {
        Self {
            tree: SegmentTree::new(bins),
            calls: VecDeque::new(),
            retractions: VecDeque::new(),
        }
    }
}

/// Algorithm 1 as an *incremental* sliding-window correlator.
///
/// The batch scorer clears and rebuilds the whole delay histogram on every
/// poll, so each poll costs O(pairs in window) even when only a handful of
/// events arrived since the last one. This form keeps the histogram alive
/// between events: an IPC call enters the per-type deque in O(1), a JGR
/// add votes with one `range_add(+1)` per paired call (O(log bins) each),
/// and — when a [`horizon`](Self::with_horizon) is set — a vote leaving
/// the sliding window is undone with the mirrored `range_add(−1)` from the
/// retraction ring. Scoring cost tracks the *event rate*, not the window
/// size.
///
/// Feeding events out of time order is allowed but mirrors the batch
/// semantics: calls older than an already-processed add's window floor
/// have been evicted and will not vote retroactively.
///
/// # Example
///
/// ```
/// use jgre_defense::{IncrementalScorer, ScoreParams};
/// use jgre_sim::{SimTime, Uid};
///
/// let mut scorer = IncrementalScorer::new(ScoreParams::default());
/// let attacker = Uid::new(10_061);
/// for k in 0..10u64 {
///     scorer.push_ipc(attacker, "IClipboard.listen", SimTime::from_micros(1_000 + k * 2_000));
///     scorer.push_add(SimTime::from_micros(1_500 + k * 2_000));
/// }
/// let report = scorer.report();
/// assert_eq!(report.top().unwrap().uid, attacker);
/// assert_eq!(report.top().unwrap().score, 10);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalScorer {
    params: ScoreParams,
    bins: usize,
    delta_bins: usize,
    horizon: Option<SimDuration>,
    states: BTreeMap<Uid, BTreeMap<String, TypeState>>,
    pairs_processed: u64,
    records_scanned: u64,
}

impl IncrementalScorer {
    /// Creates a correlator with no retraction horizon: votes accumulate
    /// forever, which is exactly the batch semantics (and what the batch
    /// wrapper uses).
    ///
    /// # Panics
    ///
    /// Panics when `params.bin` is zero.
    pub fn new(params: ScoreParams) -> Self {
        assert!(params.bin.as_micros() > 0, "bin width must be positive");
        let bins = (params.window.as_micros() / params.bin.as_micros()) as usize + 2;
        let delta_bins = (params.delta.as_micros() / params.bin.as_micros()) as usize;
        Self {
            params,
            bins,
            delta_bins,
            horizon: None,
            states: BTreeMap::new(),
            pairs_processed: 0,
            records_scanned: 0,
        }
    }

    /// Creates a correlator whose votes expire `horizon` after the add
    /// that cast them: the histogram continuously reflects only the last
    /// `horizon` of adds, so a long-running service never has to reset to
    /// forget stale traffic.
    pub fn with_horizon(params: ScoreParams, horizon: SimDuration) -> Self {
        let mut scorer = Self::new(params);
        scorer.horizon = Some(horizon);
        scorer
    }

    /// The scoring parameters.
    pub fn params(&self) -> ScoreParams {
        self.params
    }

    /// Registers an app so it appears in reports (with a zero score)
    /// even before any of its calls are recorded. `push_ipc` does this
    /// implicitly; the batch wrapper uses it for apps whose log slice
    /// happens to hold no records.
    pub fn track_app(&mut self, uid: Uid) {
        self.states.entry(uid).or_default();
    }

    /// Records one Binder-log record: `uid` invoked `ipc_type` at `at`.
    pub fn push_ipc(&mut self, uid: Uid, ipc_type: &str, at: SimTime) {
        self.records_scanned += 1;
        let bins = self.bins;
        let types = self.states.entry(uid).or_default();
        if !types.contains_key(ipc_type) {
            types.insert(ipc_type.to_owned(), TypeState::new(bins));
        }
        let state = types.get_mut(ipc_type).expect("state just ensured");
        state.calls.push_back(at);
    }

    /// Records one JGR add at `add`: every live call within the window
    /// votes for its delay band, and (with a horizon) expired votes are
    /// retracted first.
    pub fn push_add(&mut self, add: SimTime) {
        self.retract_until(add);
        let bin_us = self.params.bin.as_micros();
        let floor = add
            .as_micros()
            .saturating_sub(self.params.window.as_micros());
        let mut pairs = 0u64;
        for types in self.states.values_mut() {
            for state in types.values_mut() {
                while state.calls.front().is_some_and(|c| c.as_micros() < floor) {
                    state.calls.pop_front();
                }
                for &call in &state.calls {
                    if call > add {
                        break;
                    }
                    let lo = ((add - call).as_micros() / bin_us) as usize;
                    let hi = lo + self.delta_bins;
                    state.tree.range_add(lo, hi, 1);
                    if let Some(horizon) = self.horizon {
                        state.retractions.push_back((add + horizon, lo, hi));
                    }
                    pairs += 1;
                }
            }
        }
        self.pairs_processed += pairs;
    }

    /// Advances the sliding window to `now`, retracting every vote whose
    /// add is older than the horizon. A no-op without a horizon.
    pub fn advance(&mut self, now: SimTime) {
        self.retract_until(now);
    }

    fn retract_until(&mut self, now: SimTime) {
        if self.horizon.is_none() {
            return;
        }
        for types in self.states.values_mut() {
            for state in types.values_mut() {
                while let Some(&(expires, lo, hi)) = state.retractions.front() {
                    if expires > now {
                        break;
                    }
                    state.tree.range_add(lo, hi, -1);
                    state.retractions.pop_front();
                }
            }
        }
    }

    /// Votes currently live in the histograms (cast and not yet
    /// retracted). Without a horizon this only ever grows.
    pub fn live_votes(&self) -> u64 {
        match self.horizon {
            // With a horizon every live vote has a pending retraction.
            Some(_) => self
                .states
                .values()
                .flat_map(|t| t.values())
                .map(|s| s.retractions.len() as u64)
                .sum(),
            None => self.pairs_processed,
        }
    }

    /// Snapshots the current scores without disturbing the live state.
    pub fn report(&self) -> ScoreReport {
        let mut scores = Vec::with_capacity(self.states.len());
        for (&uid, types) in &self.states {
            let mut per_type = Vec::new();
            let mut total = 0u64;
            for (ipc_type, state) in types {
                let this_type_max = state.tree.global_max();
                if this_type_max > 0 {
                    per_type.push((ipc_type.clone(), this_type_max));
                }
                total += this_type_max;
            }
            scores.push(UidScore {
                uid,
                score: total,
                per_type,
            });
        }
        scores.sort_by(|a, b| b.score.cmp(&a.score).then(a.uid.cmp(&b.uid)));
        ScoreReport {
            scores,
            pairs_processed: self.pairs_processed,
            records_scanned: self.records_scanned,
        }
    }

    /// Forgets every call, vote, and counter — the post-verdict window
    /// reset, equivalent to constructing afresh (allocations aside).
    pub fn reset(&mut self) {
        self.states.clear();
        self.pairs_processed = 0;
        self.records_scanned = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    type Workload = (BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>, Vec<SimTime>);

    /// An attacker calling every 2 ms with a constant 500 µs delay to the
    /// JGR add, against a benign app calling at unrelated times.
    fn workload() -> Workload {
        let attacker = Uid::new(10_061);
        let benign = Uid::new(10_065);
        let mut ipc: BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>> = BTreeMap::new();
        let mut adds = Vec::new();
        for k in 0..200u64 {
            let call = 10_000 + k * 2_000;
            ipc.entry(attacker)
                .or_default()
                .entry("IClipboard.addPrimaryClipChangedListener".into())
                .or_default()
                .push(t(call));
            adds.push(t(call + 500));
        }
        for k in 0..300u64 {
            // Deterministic pseudo-random benign call times, a few
            // milliseconds apart (real apps think between calls; the
            // paper's chatty benign app pauses 0–100 ms).
            let call = 10_137 + k * 6_997 + (k * k * 31) % 977;
            ipc.entry(benign)
                .or_default()
                .entry("IAudioService.getState".into())
                .or_default()
                .push(t(call));
        }
        for times in ipc.values_mut().flat_map(|m| m.values_mut()) {
            times.sort_unstable();
        }
        (ipc, adds)
    }

    #[test]
    fn attacker_outscores_benign() {
        let (ipc, adds) = workload();
        let report = segment_tree_scores(&ipc, &adds, ScoreParams::default());
        assert_eq!(report.scores.len(), 2);
        let top = report.top().unwrap();
        assert_eq!(top.uid, Uid::new(10_061));
        // Every one of the 200 attack pairs votes for the 500 µs bin.
        assert_eq!(top.score, 200);
        let benign = &report.scores[1];
        assert!(
            benign.score < top.score / 2,
            "benign {} vs attacker {}",
            benign.score,
            top.score
        );
    }

    #[test]
    fn naive_and_segment_tree_agree() {
        let (ipc, adds) = workload();
        for delta_us in [79u64, 1_900, 3_583] {
            let params = ScoreParams {
                delta: SimDuration::from_micros(delta_us),
                ..ScoreParams::default()
            };
            let a = segment_tree_scores(&ipc, &adds, params);
            let b = naive_scores(&ipc, &adds, params);
            assert_eq!(a.scores, b.scores, "delta={delta_us}");
            assert_eq!(a.pairs_processed, b.pairs_processed);
        }
    }

    #[test]
    fn empty_inputs_are_quiet() {
        let report = segment_tree_scores(&BTreeMap::new(), &[], ScoreParams::default());
        assert!(report.scores.is_empty());
        assert_eq!(report.pairs_processed, 0);
    }

    #[test]
    fn wider_delta_never_lowers_a_score() {
        let (ipc, adds) = workload();
        let narrow = segment_tree_scores(
            &ipc,
            &adds,
            ScoreParams {
                delta: SimDuration::from_micros(79),
                ..ScoreParams::default()
            },
        );
        let wide = segment_tree_scores(
            &ipc,
            &adds,
            ScoreParams {
                delta: SimDuration::from_micros(3_583),
                ..ScoreParams::default()
            },
        );
        for (n, w) in narrow.scores.iter().zip(&wide.scores) {
            // Same uid ordering is not guaranteed; compare by uid.
            let w_score = wide
                .scores
                .iter()
                .find(|s| s.uid == n.uid)
                .map(|s| s.score)
                .unwrap_or(0);
            assert!(
                w_score >= n.score,
                "uid {} narrowed {} -> {}",
                n.uid,
                n.score,
                w.score
            );
        }
    }

    /// One stream event: its time, and `Some((uid, type))` for a call or
    /// `None` for an add.
    type StreamItem = (SimTime, Option<(Uid, String)>);

    /// The workload's calls and adds merged into stream order: time
    /// ascending, call before add on ties (the device's Binder-then-IRT
    /// ordering).
    fn stream_order(workload: &Workload) -> Vec<StreamItem> {
        let (ipc, adds) = workload;
        // Middle field is the tie-break tag: calls sort before adds.
        let mut events = Vec::new();
        for (&uid, types) in ipc {
            for (ty, calls) in types {
                for &c in calls {
                    events.push((c, 0, Some((uid, ty.clone()))));
                }
            }
        }
        for &a in adds {
            events.push((a, 1, None));
        }
        events.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));
        events.into_iter().map(|(t, _, k)| (t, k)).collect()
    }

    #[test]
    fn incremental_matches_batch_on_interleaved_stream() {
        let workload = workload();
        for delta_us in [79u64, 1_900, 3_583] {
            let params = ScoreParams {
                delta: SimDuration::from_micros(delta_us),
                ..ScoreParams::default()
            };
            let mut scorer = IncrementalScorer::new(params);
            for (at, kind) in stream_order(&workload) {
                match kind {
                    Some((uid, ty)) => scorer.push_ipc(uid, &ty, at),
                    None => scorer.push_add(at),
                }
            }
            let streamed = scorer.report();
            let batch = segment_tree_scores(&workload.0, &workload.1, params);
            assert_eq!(streamed.scores, batch.scores, "delta={delta_us}");
            assert_eq!(streamed.pairs_processed, batch.pairs_processed);
            assert_eq!(streamed.records_scanned, batch.records_scanned);
        }
    }

    #[test]
    fn horizon_retraction_matches_batch_over_recent_adds() {
        let workload = workload();
        let params = ScoreParams::default();
        let horizon = SimDuration::from_millis(100);
        let mut scorer = IncrementalScorer::with_horizon(params, horizon);
        for (at, kind) in stream_order(&workload) {
            match kind {
                Some((uid, ty)) => scorer.push_ipc(uid, &ty, at),
                None => scorer.push_add(at),
            }
        }
        // Advance the window to the final add (benign calls trail far
        // behind it and must not expire the attack's votes).
        let last_add = *workload.1.iter().max().expect("workload has adds");
        scorer.advance(last_add);
        let streamed = scorer.report();
        // Only adds younger than the horizon still hold votes; the batch
        // over exactly those adds must agree on every score.
        let floor = last_add.as_micros().saturating_sub(horizon.as_micros());
        let recent: Vec<SimTime> = workload
            .1
            .iter()
            .copied()
            .filter(|a| a.as_micros() > floor)
            .collect();
        assert!(
            !recent.is_empty() && recent.len() < workload.1.len(),
            "horizon must split the adds for the test to bite"
        );
        let batch = segment_tree_scores(&workload.0, &recent, params);
        assert_eq!(streamed.scores, batch.scores);
        assert_eq!(
            scorer.live_votes(),
            batch.pairs_processed,
            "live votes equal the batch pair count over surviving adds"
        );
    }

    #[test]
    fn advance_far_past_everything_retracts_all_votes() {
        let (ipc, adds) = workload();
        let mut scorer =
            IncrementalScorer::with_horizon(ScoreParams::default(), SimDuration::from_millis(50));
        for (&uid, types) in &ipc {
            for (ty, calls) in types {
                for &c in calls {
                    scorer.push_ipc(uid, ty, c);
                }
            }
        }
        for &a in &adds {
            scorer.push_add(a);
        }
        scorer.advance(SimTime::from_micros(u64::MAX / 2));
        let report = scorer.report();
        assert_eq!(scorer.live_votes(), 0);
        assert!(
            report.scores.iter().all(|s| s.score == 0),
            "all votes retracted: {:?}",
            report.scores
        );
        assert!(report.pairs_processed > 0, "pairs counter is cumulative");
    }

    #[test]
    fn reset_forgets_everything() {
        let (ipc, adds) = workload();
        let mut scorer = IncrementalScorer::new(ScoreParams::default());
        for (&uid, types) in &ipc {
            for (ty, calls) in types {
                for &c in calls {
                    scorer.push_ipc(uid, ty, c);
                }
            }
        }
        for &a in &adds {
            scorer.push_add(a);
        }
        assert!(!scorer.report().scores.is_empty());
        scorer.reset();
        let report = scorer.report();
        assert!(report.scores.is_empty());
        assert_eq!(report.pairs_processed, 0);
        assert_eq!(report.records_scanned, 0);
    }

    #[test]
    fn pairs_limited_to_window() {
        let mut ipc: BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>> = BTreeMap::new();
        ipc.entry(Uid::new(10_000))
            .or_default()
            .entry("I.m".into())
            .or_default()
            .extend([t(1_000), t(100_000)]);
        let adds = vec![t(101_000)];
        let report = segment_tree_scores(&ipc, &adds, ScoreParams::default());
        // Only the 100 ms call is within the 8 ms window of the add.
        assert_eq!(report.pairs_processed, 1);
    }
}
