//! Phase 2: Algorithm 1 — the JGR scoring algorithm.
//!
//! For each app and each IPC type it invoked, every `(IPCTime, JGRTime)`
//! pair with `0 ≤ JGRTime − IPCTime ≤ window` votes for all delays in
//! `[JGRTime − IPCTime, JGRTime − IPCTime + Δ]`. The best-supported delay
//! bin is the type's count of suspicious calls (`ThisTypeMax`); an app's
//! `jgre_score` sums its types. A real attack stream concentrates its
//! votes at the interface's true `Delay`, while benign traffic spreads
//! thinly — which is why the score separates attackers from even very
//! chatty benign apps (Figures 8/9).

use std::collections::BTreeMap;

use jgre_sim::{SimDuration, SimTime, Uid};
use serde::{Deserialize, Serialize};

use crate::SegmentTree;

/// Tuning of one scoring pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoreParams {
    /// The Δ uncertainty band (the paper's system-wide average is 1.8 ms;
    /// Figure 9 sweeps 79 µs / 1900 µs / 3583 µs).
    pub delta: SimDuration,
    /// Maximum believable IPC→JGR delay (the algorithm's `TimeLen`).
    pub window: SimDuration,
    /// Histogram bin width.
    pub bin: SimDuration,
}

impl Default for ScoreParams {
    fn default() -> Self {
        Self {
            delta: SimDuration::from_micros(1_800),
            window: SimDuration::from_millis(8),
            bin: SimDuration::from_micros(50),
        }
    }
}

/// One app's score.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UidScore {
    /// The app.
    pub uid: Uid,
    /// Its `jgre_score`: the summed per-type maxima — "the number of max
    /// suspicious IPC calls".
    pub score: u64,
    /// Per-IPC-type maxima, for diagnostics and the figures.
    pub per_type: Vec<(String, u64)>,
}

/// Result of one scoring pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoreReport {
    /// Scores, highest first.
    pub scores: Vec<UidScore>,
    /// `(IPCTime, JGRTime)` pairs examined — the work measure used by the
    /// response-delay model and the ablation bench.
    pub pairs_processed: u64,
    /// IPC records scanned.
    pub records_scanned: u64,
}

impl ScoreReport {
    /// The highest-scoring app, if any app had IPC traffic.
    pub fn top(&self) -> Option<&UidScore> {
        self.scores.first()
    }
}

/// Computes Algorithm 1 with the segment-tree histogram (the deployed
/// configuration).
pub fn segment_tree_scores(
    ipc_by_uid: &BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>,
    jgr_adds: &[SimTime],
    params: ScoreParams,
) -> ScoreReport {
    score_impl(ipc_by_uid, jgr_adds, params, HistogramKind::SegmentTree)
}

/// Computes Algorithm 1 with a flat array histogram (the ablation
/// baseline §V-D.2 compares against).
pub fn naive_scores(
    ipc_by_uid: &BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>,
    jgr_adds: &[SimTime],
    params: ScoreParams,
) -> ScoreReport {
    score_impl(ipc_by_uid, jgr_adds, params, HistogramKind::Naive)
}

enum HistogramKind {
    SegmentTree,
    Naive,
}

fn score_impl(
    ipc_by_uid: &BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>,
    jgr_adds: &[SimTime],
    params: ScoreParams,
    kind: HistogramKind,
) -> ScoreReport {
    assert!(params.bin.as_micros() > 0, "bin width must be positive");
    let bins = (params.window.as_micros() / params.bin.as_micros()) as usize + 2;
    let delta_bins = (params.delta.as_micros() / params.bin.as_micros()) as usize;
    let mut tree = SegmentTree::new(bins);
    let mut naive = vec![0u64; bins];
    let mut pairs_processed = 0u64;
    let mut records_scanned = 0u64;
    let mut scores: Vec<UidScore> = Vec::new();

    for (&uid, types) in ipc_by_uid {
        let mut per_type = Vec::new();
        let mut total = 0u64;
        for (ipc_type, calls) in types {
            records_scanned += calls.len() as u64;
            match kind {
                HistogramKind::SegmentTree => tree.clear(),
                HistogramKind::Naive => naive.fill(0),
            }
            let mut any = false;
            // Both series are time-ordered; a moving lower bound keeps the
            // pairing linear in (calls + adds + pairs).
            let mut start = 0usize;
            for &add in jgr_adds {
                let window_floor =
                    SimTime::from_micros(add.as_micros().saturating_sub(params.window.as_micros()));
                while start < calls.len() && calls[start] < window_floor {
                    start += 1;
                }
                let mut i = start;
                while i < calls.len() && calls[i] <= add {
                    let min_delay = (add - calls[i]).as_micros();
                    let lo = (min_delay / params.bin.as_micros()) as usize;
                    let hi = lo + delta_bins;
                    match kind {
                        HistogramKind::SegmentTree => tree.range_add(lo, hi, 1),
                        HistogramKind::Naive => {
                            for slot in naive[lo.min(bins - 1)..=hi.min(bins - 1)].iter_mut() {
                                *slot += 1;
                            }
                        }
                    }
                    pairs_processed += 1;
                    any = true;
                    i += 1;
                }
            }
            let this_type_max = if !any {
                0
            } else {
                match kind {
                    HistogramKind::SegmentTree => tree.global_max(),
                    HistogramKind::Naive => *naive.iter().max().expect("bins > 0"),
                }
            };
            if this_type_max > 0 {
                per_type.push((ipc_type.clone(), this_type_max));
            }
            total += this_type_max;
        }
        scores.push(UidScore {
            uid,
            score: total,
            per_type,
        });
    }
    scores.sort_by(|a, b| b.score.cmp(&a.score).then(a.uid.cmp(&b.uid)));
    ScoreReport {
        scores,
        pairs_processed,
        records_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    type Workload = (BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>, Vec<SimTime>);

    /// An attacker calling every 2 ms with a constant 500 µs delay to the
    /// JGR add, against a benign app calling at unrelated times.
    fn workload() -> Workload {
        let attacker = Uid::new(10_061);
        let benign = Uid::new(10_065);
        let mut ipc: BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>> = BTreeMap::new();
        let mut adds = Vec::new();
        for k in 0..200u64 {
            let call = 10_000 + k * 2_000;
            ipc.entry(attacker)
                .or_default()
                .entry("IClipboard.addPrimaryClipChangedListener".into())
                .or_default()
                .push(t(call));
            adds.push(t(call + 500));
        }
        for k in 0..300u64 {
            // Deterministic pseudo-random benign call times, a few
            // milliseconds apart (real apps think between calls; the
            // paper's chatty benign app pauses 0–100 ms).
            let call = 10_137 + k * 6_997 + (k * k * 31) % 977;
            ipc.entry(benign)
                .or_default()
                .entry("IAudioService.getState".into())
                .or_default()
                .push(t(call));
        }
        for times in ipc.values_mut().flat_map(|m| m.values_mut()) {
            times.sort_unstable();
        }
        (ipc, adds)
    }

    #[test]
    fn attacker_outscores_benign() {
        let (ipc, adds) = workload();
        let report = segment_tree_scores(&ipc, &adds, ScoreParams::default());
        assert_eq!(report.scores.len(), 2);
        let top = report.top().unwrap();
        assert_eq!(top.uid, Uid::new(10_061));
        // Every one of the 200 attack pairs votes for the 500 µs bin.
        assert_eq!(top.score, 200);
        let benign = &report.scores[1];
        assert!(
            benign.score < top.score / 2,
            "benign {} vs attacker {}",
            benign.score,
            top.score
        );
    }

    #[test]
    fn naive_and_segment_tree_agree() {
        let (ipc, adds) = workload();
        for delta_us in [79u64, 1_900, 3_583] {
            let params = ScoreParams {
                delta: SimDuration::from_micros(delta_us),
                ..ScoreParams::default()
            };
            let a = segment_tree_scores(&ipc, &adds, params);
            let b = naive_scores(&ipc, &adds, params);
            assert_eq!(a.scores, b.scores, "delta={delta_us}");
            assert_eq!(a.pairs_processed, b.pairs_processed);
        }
    }

    #[test]
    fn empty_inputs_are_quiet() {
        let report = segment_tree_scores(&BTreeMap::new(), &[], ScoreParams::default());
        assert!(report.scores.is_empty());
        assert_eq!(report.pairs_processed, 0);
    }

    #[test]
    fn wider_delta_never_lowers_a_score() {
        let (ipc, adds) = workload();
        let narrow = segment_tree_scores(
            &ipc,
            &adds,
            ScoreParams {
                delta: SimDuration::from_micros(79),
                ..ScoreParams::default()
            },
        );
        let wide = segment_tree_scores(
            &ipc,
            &adds,
            ScoreParams {
                delta: SimDuration::from_micros(3_583),
                ..ScoreParams::default()
            },
        );
        for (n, w) in narrow.scores.iter().zip(&wide.scores) {
            // Same uid ordering is not guaranteed; compare by uid.
            let w_score = wide
                .scores
                .iter()
                .find(|s| s.uid == n.uid)
                .map(|s| s.score)
                .unwrap_or(0);
            assert!(
                w_score >= n.score,
                "uid {} narrowed {} -> {}",
                n.uid,
                n.score,
                w.score
            );
        }
    }

    #[test]
    fn pairs_limited_to_window() {
        let mut ipc: BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>> = BTreeMap::new();
        ipc.entry(Uid::new(10_000))
            .or_default()
            .entry("I.m".into())
            .or_default()
            .extend([t(1_000), t(100_000)]);
        let adds = vec![t(101_000)];
        let report = segment_tree_scores(&ipc, &adds, ScoreParams::default());
        // Only the 100 ms call is within the 8 ms window of the add.
        assert_eq!(report.pairs_processed, 1);
    }
}
